"""Property tests pinning the packed constraint data plane to the scalar
reference semantics.

The packed :class:`~repro.core.lptype.ConstraintPack` is the hot path of
every driver's violation tests; these tests guarantee it can never drift from
the per-constraint ``problem.violates`` reference across all four problem
families and random witnesses (including near-boundary witnesses produced by
real subset solves).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lptype import ConstraintPack, working_set_solve
from repro.core.sampling import gumbel_top_k
from repro.models.streaming import MultiPassStream
from repro.problems.linear_program import LinearProgram
from repro.problems.meb import Ball, MinimumEnclosingBall
from repro.problems.qp import ConvexQuadraticProgram
from repro.problems.svm import LinearSVM
from repro.workloads import (
    make_separable_classification,
    random_feasible_lp,
    svm_problem,
    uniform_ball_points,
)


def _lp_problem(seed: int) -> LinearProgram:
    return random_feasible_lp(60, 3, seed=seed).problem


def _meb_problem(seed: int) -> MinimumEnclosingBall:
    return MinimumEnclosingBall(uniform_ball_points(60, 3, seed=seed))


def _svm_problem(seed: int) -> LinearSVM:
    return svm_problem(make_separable_classification(60, 3, seed=seed))


def _qp_problem(seed: int) -> ConvexQuadraticProgram:
    rng = np.random.default_rng(seed)
    d = 3
    normals = rng.normal(size=(60, d))
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    anchor = rng.uniform(-1.0, 1.0, size=d)
    h = normals @ anchor - rng.uniform(0.1, 1.0, size=60)
    return ConvexQuadraticProgram(np.eye(d), rng.normal(size=d), normals, h)


FAMILIES = {
    "lp": _lp_problem,
    "meb": _meb_problem,
    "svm": _svm_problem,
    "qp": _qp_problem,
}


def _random_witnesses(problem, rng: np.random.Generator) -> list:
    """Random witnesses plus realistic ones from actual subset solves."""
    witnesses = []
    if isinstance(problem, MinimumEnclosingBall):
        for _ in range(4):
            witnesses.append(
                Ball(
                    center=rng.normal(scale=2.0, size=problem.dimension),
                    radius=float(rng.uniform(0.0, 2.0)),
                )
            )
    else:
        for scale in (0.3, 1.0, 5.0):
            witnesses.append(rng.normal(scale=scale, size=problem.dimension))
    # Near-boundary witnesses: solve random subsets and reuse their optima.
    for size in (4, 12):
        subset = rng.choice(problem.num_constraints, size=size, replace=False)
        basis = problem.solve_subset(np.sort(subset))
        if basis.witness is not None:
            witnesses.append(basis.witness)
    witnesses.append(None)
    return witnesses


def _scalar_mask(problem, witness, indices) -> np.ndarray:
    return np.array([problem.violates(witness, int(i)) for i in indices], dtype=bool)


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_pack_matches_scalar_violates(family, seed):
    """The packed oracle agrees with per-constraint ``violates`` everywhere."""
    problem = FAMILIES[family](seed % 1000)
    assert problem.constraint_pack() is not None
    rng = np.random.default_rng(seed)
    indices = problem.all_indices()
    witnesses = _random_witnesses(problem, rng)

    for witness in witnesses:
        expected = (
            _scalar_mask(problem, witness, indices)
            if witness is not None
            else np.zeros(indices.size, dtype=bool)
        )
        packed = problem.violation_mask(witness, indices)
        assert packed.dtype == bool
        np.testing.assert_array_equal(packed, expected)

    # The count matrix is the sum of the per-witness masks.
    expected_counts = np.zeros(indices.size, dtype=np.int64)
    for witness in witnesses:
        if witness is not None:
            expected_counts += _scalar_mask(problem, witness, indices)
    np.testing.assert_array_equal(
        problem.violation_count_matrix(witnesses, indices), expected_counts
    )


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_pack_subset_indexing(family):
    """Masks over arbitrary index subsets match the full-set mask slices."""
    problem = FAMILIES[family](5)
    rng = np.random.default_rng(5)
    witness = _random_witnesses(problem, rng)[0]
    full = problem.violation_mask(witness, problem.all_indices())
    subset = np.array([7, 3, 41, 3, 0])
    np.testing.assert_array_equal(problem.violation_mask(witness, subset), full[subset])


def test_meb_pack_far_from_origin_matches_scalar():
    """The centred MEB pack survives large coordinate magnitudes.

    The naive expansion ``||p||^2 - 2 p.c + ||c||^2`` cancels catastrophically
    when ``||p|| ~ 1e8`` dwarfs the tolerance; centring by the cloud centroid
    keeps the packed mask identical to the scalar reference.
    """
    rng = np.random.default_rng(0)
    far = np.full(3, 1.0e8)
    points = far + rng.normal(scale=2.0, size=(500, 3))
    problem = MinimumEnclosingBall(points)
    ball = Ball(center=far + rng.normal(scale=0.5, size=3), radius=2.5)
    idx = problem.all_indices()
    np.testing.assert_array_equal(
        problem.violation_mask(ball, idx), _scalar_mask(problem, ball, idx)
    )


class TestConstraintPackValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ConstraintPack(rows=np.zeros((3, 2)), rhs=np.zeros(4), limit=0.0)
        with pytest.raises(ValueError):
            ConstraintPack(rows=np.zeros(3), rhs=np.zeros(3), limit=0.0)
        with pytest.raises(ValueError):
            ConstraintPack(rows=np.zeros((3, 2)), rhs=np.zeros(3), limit=np.zeros(2))

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            ConstraintPack(rows=np.zeros((3, 2)), rhs=np.zeros(3), limit=0.0, sense=0)

    def test_pack_is_contiguous_float64(self):
        for family, make in FAMILIES.items():
            pack = make(1).constraint_pack()
            assert pack.rows.flags["C_CONTIGUOUS"], family
            assert pack.rows.dtype == np.float64
            assert pack.rhs.dtype == np.float64
            assert pack.limit.shape == (pack.num_constraints,)


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_working_set_solve_matches_direct(family):
    """The working-set fast path returns the same ``f`` as a direct solve."""
    problem = FAMILIES[family](17)
    idx = problem.all_indices()
    via_working_set = working_set_solve(
        problem, idx, problem._solve_subset_direct, direct_limit=8
    )
    direct = problem._solve_subset_direct(idx)
    assert via_working_set.value == direct.value
    assert via_working_set.subset_size == idx.size
    # The witness of the working set must be feasible for the whole subset.
    assert problem.violation_mask(via_working_set.witness, idx).sum() == 0


class TestGumbelTopK:
    def test_matches_support_and_size(self):
        idx = gumbel_top_k(np.log([1.0, 2.0, 3.0, 4.0]), 2, rng=0)
        assert idx.size == 2
        assert np.all((idx >= 0) & (idx < 4))
        assert np.all(np.diff(idx) > 0)

    def test_zero_weight_never_selected(self):
        log_w = np.array([0.0, -np.inf, 0.0, -np.inf])
        for seed in range(20):
            idx = gumbel_top_k(log_w, 3, rng=seed)
            assert set(idx.tolist()) <= {0, 2}

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            gumbel_top_k(np.full(3, -np.inf), 1, rng=0)

    def test_heavier_weight_wins_statistically(self):
        log_w = np.log(np.array([1.0, 1.0, 1.0, 30.0]))
        hits = sum(3 in gumbel_top_k(log_w, 1, rng=seed) for seed in range(300))
        assert hits > 200


def test_scan_chunks_matches_scan_order():
    stream = MultiPassStream(10, order=[3, 1, 4, 8, 9, 2, 6, 5, 0, 7])
    items = list(stream.scan())
    chunked = np.concatenate(list(stream.scan_chunks(3)))
    assert chunked.tolist() == items
    assert stream.passes == 2
    with pytest.raises(ValueError):
        list(stream.scan_chunks(0))
