"""Tests for the fabric topologies: star, tree, grid, and stream accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CoordinatorConfig, solve
from repro.core.accounting import BitCostModel
from repro.core.exceptions import CommunicationError
from repro.fabric.payload import Scalar, Vector
from repro.fabric.topology import GridTopology, StarTopology, StreamTopology, TreeTopology
from repro.workloads import random_feasible_lp

COST = BitCostModel()


class TestStarTopology:
    def test_exchange_is_one_round_with_split_directions(self):
        star = StarTopology(3)
        star.begin_round()
        star.broadcast_down(Scalar(1.0))
        star.gather_up([Scalar(float(i)) for i in range(3)], combinable=True)
        star.end_round()
        assert star.rounds == 1
        per_message = COST.coefficients(1)
        assert star.ledger.total("bits_down") == 3 * per_message
        assert star.ledger.total("bits_up") == 3 * per_message
        # The hub both sends and receives 3 messages: its load dominates.
        assert star.max_load_bits == 3 * per_message

    def test_messages_outside_round_rejected(self):
        star = StarTopology(2)
        with pytest.raises(CommunicationError):
            star.send_down(0, Scalar(1.0))

    def test_unknown_site_rejected(self):
        star = StarTopology(2)
        star.begin_round()
        with pytest.raises(CommunicationError):
            star.send_up(5, Scalar(1.0))


class TestTreeTopology:
    def test_rounds_scale_with_depth(self):
        k, fanout = 8, 2
        star, tree = StarTopology(k), TreeTopology(k, fanout=fanout)
        for topo in (star, tree):
            topo.begin_round()
            topo.broadcast_down(Scalar(1.0))
            topo.gather_up([Scalar(1.0)] * k, combinable=True)
            topo.end_round()
        assert star.rounds == 1
        assert tree.rounds > star.rounds  # one round per level, both directions

    def test_combinable_gather_shrinks_hub_load(self):
        k = 16
        payloads = [Vector(np.zeros(4)) for _ in range(k)]
        star, tree = StarTopology(k), TreeTopology(k, fanout=2)
        star.begin_round()
        star.gather_up(payloads, combinable=True)
        star.end_round()
        tree.begin_round()
        tree.gather_up([Vector(np.zeros(4)) for _ in range(k)], combinable=True)
        tree.end_round()
        per_payload = COST.coefficients(4)
        assert star.max_load_bits == k * per_payload
        # The hub receives one combined message; interior nodes at most
        # fanout of them.
        assert tree.max_load_bits <= 2 * per_payload
        assert tree.max_load_bits < star.max_load_bits

    def test_non_combinable_gather_forwards_subtrees(self):
        k = 4
        tree = TreeTopology(k, fanout=2)
        tree.begin_round()
        tree.gather_up([Scalar(1.0)] * k, combinable=False)
        tree.end_round()
        # Every site's payload crosses one edge per level on its path, so the
        # total exceeds the star's k messages.
        assert tree.total_bits > k * COST.coefficients(1)

    def test_broadcast_charges_each_edge_once(self):
        k = 7
        tree = TreeTopology(k, fanout=2)
        tree.begin_round()
        tree.broadcast_down(Scalar(1.0))
        tree.end_round()
        # k - 1 tree edges plus the hub -> root edge.
        assert tree.total_bits == k * COST.coefficients(1)

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            TreeTopology(4, fanout=1)


class TestGridTopology:
    def test_load_is_max_sent_or_received(self):
        grid = GridTopology(3)
        grid.begin_round()
        grid.send(0, 1, Vector(np.zeros(2)))
        grid.send(2, 1, Vector(np.zeros(3)))
        grid.end_round()
        assert grid.max_load_bits == COST.coefficients(5)  # machine 1 received
        assert grid.total_bits == COST.coefficients(5)

    def test_send_outside_round_rejected(self):
        grid = GridTopology(2)
        with pytest.raises(CommunicationError):
            grid.send(0, 1, Scalar(1.0))

    def test_broadcast_tree_round_count(self):
        grid = GridTopology(9)
        rounds = grid.broadcast_tree(0, Scalar(1.0), fanout=3)
        assert rounds == 2  # 1 -> 4 -> 9 informed machines
        assert grid.rounds == 2
        assert grid.total_bits == 8 * COST.coefficients(1)

    def test_aggregate_tree_combines(self):
        grid = GridTopology(5)
        rounds, total = grid.aggregate_tree(
            0, Scalar(1.0), fanout=2, values=[1, 2, 3, 4, 5], combine=lambda a, b: a + b
        )
        assert total == 15
        assert rounds >= 2


class TestStreamTopology:
    def test_pass_accounting(self):
        stream = StreamTopology(10)
        assert stream.passes == 0
        stream.record_pass()
        stream.record_pass()
        assert stream.passes == 2
        assert stream.total_bits == 0
        assert stream.ledger.total("items") == 20

    def test_order_validation(self):
        with pytest.raises(ValueError):
            StreamTopology(3, order=[0, 1])
        with pytest.raises(ValueError):
            StreamTopology(3, order=[0, 1, 1])

    def test_iter_chunks_preserves_order(self):
        order = np.array([4, 2, 0, 3, 1])
        chunks = list(StreamTopology.iter_chunks(order, 2))
        assert [len(c) for c in chunks] == [2, 2, 1]
        assert np.array_equal(np.concatenate(chunks), order)


class TestCoordinatorTopologyChoice:
    """The same coordinator driver runs on star and tree topologies."""

    @pytest.fixture(scope="class")
    def problem(self):
        return random_feasible_lp(900, 2, seed=21).problem

    def test_star_and_tree_agree_on_the_optimum(self, problem):
        exact = problem.solve()
        star = solve(
            problem,
            model="coordinator",
            config=CoordinatorConfig.practical(problem, num_sites=8, seed=5),
        )
        tree = solve(
            problem,
            model="coordinator",
            config=CoordinatorConfig.practical(
                problem, num_sites=8, seed=5, topology="tree", fanout=2
            ),
        )
        for result in (star, tree):
            assert result.value.objective == pytest.approx(
                exact.value.objective, rel=1e-6
            )
        assert star.metadata["topology"] == "star"
        assert tree.metadata["topology"] == "tree"

    def test_tree_trades_rounds_for_hub_load(self, problem):
        star = solve(
            problem,
            model="coordinator",
            config=CoordinatorConfig.practical(problem, num_sites=16, seed=5),
        )
        tree = solve(
            problem,
            model="coordinator",
            config=CoordinatorConfig.practical(
                problem, num_sites=16, seed=5, topology="tree", fanout=2
            ),
        )
        # The tree pays rounds (one per level) and forwarding bits ...
        assert tree.resources.rounds > star.resources.rounds
        assert (
            tree.resources.total_communication_bits
            > star.resources.total_communication_bits
        )
        # ... and wins on combinable gathers: the lightest upstream exchange
        # reaches the hub as one combined message instead of k replies.
        star_min_up = min(
            r["bits_up"] for r in star.resources.per_round if r["bits_up"]
        )
        tree_min_up = min(
            r["bits_up"] for r in tree.resources.per_round if r["bits_up"]
        )
        assert tree_min_up < star_min_up

    def test_per_round_trace_is_surfaced(self, problem):
        result = solve(problem, model="coordinator", num_sites=4, seed=3)
        comm = result.communication
        assert comm.rounds == result.resources.rounds == len(comm.per_round)
        assert comm.total_bits == sum(r["bits"] for r in comm.per_round)
        assert comm.max_load_bits == max(r["load"] for r in comm.per_round)

    def test_streaming_communication_reports_passes(self, problem):
        result = solve(problem, model="streaming", seed=3)
        comm = result.communication
        assert comm.rounds == result.resources.passes
        assert comm.total_bits == 0
        assert len(comm.per_round) == result.resources.passes
