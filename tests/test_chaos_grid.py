"""The pinned chaos grid: seeded fault injection never changes the answer.

Every cell crosses a problem family with a distributed model and a seeded
:class:`~repro.resilience.FaultPlan`, on both transports.  The contract
under test is the acceptance bar of the resilience layer: a solve running
under any seeded fault scenario either completes **bit-identical** to its
fault-free baseline (same value, witness bytes, iteration story, and
communication ledger) or raises a typed error — injected message drops,
corruptions, delays, slow nodes, and worker crashes are all absorbed by
detect-and-retransmit delivery and journal-replay worker recovery.

A failing cell is replayed exactly by its ``(solver seed, fault seed)``
pair; the plan's :meth:`~repro.resilience.FaultPlan.describe` output names
the scripted scenario.
"""

from __future__ import annotations

import pytest

from test_fabric_transports import (
    PROBLEMS,
    _build_problem,
    _solve,
    assert_bit_identical,
)

from repro import TransportConfig
from repro.resilience import FaultPlan, FaultSpec, fault_injection

MODELS = ("coordinator", "mpc")

#: Fault seeds of the pinned grid (one scripted scenario each).
FAULT_SEEDS = (0, 1)

#: Message/node perturbations: enacted by every transport's deliver hop and
#: the topology's per-node probe.
DELIVERY_KINDS = ("message_drop", "message_delay", "payload_corruption", "slow_node")

SUPERVISED = TransportConfig(kind="process", max_workers=2, supervised=True)


def _seeded_plan(seed: int, kinds, *, crash: bool = False) -> FaultPlan:
    specs = list(
        FaultPlan.seeded(seed, kinds=kinds, num_faults=3, delay_s=0.0005).specs
    )
    if crash:
        # Guarantee the recovery path is exercised, not just scripted: one
        # unconditional crash at the first dispatch of the scenario.
        specs.append(FaultSpec(kind="worker_crash", at=1))
    plan = FaultPlan(specs, seed=seed)
    return plan


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("family", PROBLEMS)
def test_inprocess_chaos_is_bit_identical(family, model):
    problem = _build_problem(family)
    baseline = _solve(problem, model, None)
    for seed in FAULT_SEEDS:
        plan = _seeded_plan(seed, DELIVERY_KINDS)
        with fault_injection(plan):
            faulted = _solve(problem, model, None)
        assert_bit_identical(faulted, baseline)
        # The probes really were consulted (the plan saw the solve).
        assert plan._global_counts, plan.describe()


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("family", PROBLEMS)
def test_supervised_process_chaos_is_bit_identical(family, model):
    problem = _build_problem(family)
    baseline = _solve(problem, model, None)
    plan = _seeded_plan(FAULT_SEEDS[0], DELIVERY_KINDS, crash=True)
    with fault_injection(plan):
        faulted = _solve(problem, model, SUPERVISED)
    assert_bit_identical(faulted, baseline)
    assert ("dispatch", 0, "worker_crash") in plan.fired, plan.describe()


def test_streaming_chaos_is_bit_identical():
    # The streaming model rides the same deliver/node probes; one pinned
    # cell keeps it honest without doubling the grid.
    problem = _build_problem("lp")
    baseline = _solve(problem, "streaming", None)
    for seed in FAULT_SEEDS:
        plan = _seeded_plan(seed, DELIVERY_KINDS)
        with fault_injection(plan):
            faulted = _solve(problem, "streaming", None)
        assert_bit_identical(faulted, baseline)
