"""Basis-solve cache: unit behaviour, engine integration, and the
no-cross-call-state-leakage regression.

The cache is per-engine (= per-run) state, so repeated ``solve()`` calls with
the same config and seed must stay bit-identical — including through the
``solve_many`` thread pool — and disabling the cache must not change results
(``solve_subset`` is pure, so a hit only skips recomputation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SolverConfig, solve, solve_many
from repro.core.engine import (
    BasisCache,
    ClarksonEngine,
    EngineConfig,
    SamplingStrategy,
    ViolationStats,
    WeightSubstrate,
)
from repro.core.lptype import BasisResult
from repro.problems.meb import MinimumEnclosingBall
from repro.workloads import random_polytope_lp, uniform_ball_points


class TestBasisCacheUnit:
    def test_hit_and_miss_counting(self):
        cache = BasisCache(capacity=4)
        basis = BasisResult(indices=(1, 2), value=1.0, witness=None, subset_size=3)
        assert cache.get((1, 2, 3)) is None
        cache.put((1, 2, 3), basis)
        assert cache.get((1, 2, 3)) is basis
        assert cache.hits == 1
        assert cache.misses == 1

    def test_record_seeds_the_basis_key(self):
        cache = BasisCache(capacity=4)
        basis = BasisResult(indices=(5, 2), value=2.0, witness=None, subset_size=4)
        cache.record((1, 2, 3, 5), basis)
        entry = cache.get((2, 5))
        assert entry is not None
        assert entry.value == basis.value
        assert entry.subset_size == 2

    def test_fifo_eviction_respects_capacity(self):
        cache = BasisCache(capacity=2)
        basis = BasisResult(indices=(), value=0.0, witness=None)
        for key in ((1,), (2,), (3,)):
            cache.put(key, basis)
        assert len(cache) == 2
        assert cache.get((1,)) is None  # evicted first-in
        assert cache.get((3,)) is not None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BasisCache(capacity=0)


class _RepeatingSampler(SamplingStrategy):
    """Always returns the same sample, so the second solve must cache-hit."""

    def __init__(self, sample):
        self.sample = np.asarray(sample, dtype=int)

    def draw(self, sample_size):
        return self.sample


class _ScriptedSubstrate(WeightSubstrate):
    def __init__(self, script):
        self.script = list(script)

    def measure(self, sample, basis):
        num_violators, fraction = self.script.pop(0)
        return ViolationStats(num_violators=num_violators, weight_fraction=fraction)

    def boost(self, stats):
        pass


class TestEngineIntegration:
    def test_repeated_sample_hits_cache(self, medium_lp):
        engine = ClarksonEngine(
            problem=medium_lp,
            sampler=_RepeatingSampler(np.arange(30)),
            substrate=_ScriptedSubstrate([(3, 0.5), (3, 0.5), (0, 0.0)]),
            config=EngineConfig(sample_size=30, epsilon=0.1, budget=10),
        )
        outcome = engine.run()
        assert outcome.cache_misses == 1
        assert outcome.cache_hits == 2

    def test_cache_disabled_reports_zero(self, medium_lp):
        engine = ClarksonEngine(
            problem=medium_lp,
            sampler=_RepeatingSampler(np.arange(30)),
            substrate=_ScriptedSubstrate([(0, 0.0)]),
            config=EngineConfig(sample_size=30, epsilon=0.1, budget=10, basis_cache=False),
        )
        outcome = engine.run()
        assert engine.basis_cache is None
        assert outcome.cache_hits == 0
        assert outcome.cache_misses == 0


def _problems():
    return {
        "lp": random_polytope_lp(3000, 2, seed=5).problem,
        "meb": MinimumEnclosingBall(uniform_ball_points(3000, 2, seed=6)),
    }


def _config(problem, **overrides):
    return SolverConfig.practical(problem, r=2, seed=123, **overrides)


def _assert_identical(first, second):
    assert first.value == second.value
    assert first.basis_indices == second.basis_indices
    assert first.iterations == second.iterations
    assert first.successful_iterations == second.successful_iterations
    first_w = getattr(first.witness, "center", first.witness)
    second_w = getattr(second.witness, "center", second.witness)
    np.testing.assert_array_equal(np.asarray(first_w), np.asarray(second_w))
    assert first.resources.basis_cache_hits == second.resources.basis_cache_hits
    assert first.resources.basis_cache_misses == second.resources.basis_cache_misses


@pytest.mark.parametrize("model", ["sequential", "streaming", "coordinator", "mpc"])
@pytest.mark.parametrize("family", ["lp", "meb"])
def test_repeated_solve_bit_identical_with_cache(model, family):
    """No cross-call state leakage: same config + seed => identical results."""
    problem = _problems()[family]
    config = _config(problem)
    first = solve(problem, model=model, config=config)
    second = solve(problem, model=model, config=config)
    assert first.resources.basis_cache_misses > 0  # the cache was live
    _assert_identical(first, second)


def test_cache_toggle_does_not_change_results():
    problem = _problems()["lp"]
    cached = solve(problem, model="sequential", config=_config(problem))
    uncached = solve(
        problem, model="sequential", config=_config(problem, basis_cache=False)
    )
    assert uncached.resources.basis_cache_misses == 0
    assert cached.value == uncached.value
    assert cached.iterations == uncached.iterations
    np.testing.assert_allclose(
        np.asarray(cached.witness), np.asarray(uncached.witness)
    )


@pytest.mark.parametrize("model", ["sequential", "streaming"])
def test_solve_many_workers_bit_identical(model):
    """The thread pool must not leak cache or RNG state across instances."""
    problems = [random_polytope_lp(2000, 2, seed=s).problem for s in (1, 2, 3, 4)]
    serial = solve_many(problems, model=model, seed=7, max_workers=1)
    threaded = solve_many(problems, model=model, seed=7, max_workers=4)
    for first, second in zip(serial, threaded):
        _assert_identical(first, second)
