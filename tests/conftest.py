"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clarkson import ClarksonParameters
from repro.workloads import random_feasible_lp, random_polytope_lp


@pytest.fixture(scope="session")
def small_lp():
    """A small feasible LP used by many unit tests (400 constraints, d=2)."""
    return random_feasible_lp(400, 2, seed=11).problem


@pytest.fixture(scope="session")
def medium_lp():
    """A medium LP whose sampling path is reachable with test parameters."""
    return random_polytope_lp(1600, 2, seed=7).problem


@pytest.fixture(scope="session")
def tiny_lp():
    """A tiny LP (30 constraints, d=2) for exhaustive / axiom checks."""
    return random_feasible_lp(30, 2, seed=3).problem


def fast_params(r: int = 2, sample_size: int = 400, threshold: float = 0.02):
    """Cheap meta-algorithm parameters used by the integration tests.

    The paper-exact Lemma 2.2 constants need millions of constraints before
    the sub-linear regime kicks in; the integration tests instead fix a small
    explicit sample size and success threshold so that the iterative path
    (weight boosts, multiple passes/rounds) is exercised quickly.  Solver
    correctness does not depend on these choices — termination requires the
    violator set to be empty.
    """
    return ClarksonParameters(
        r=r, sample_size=sample_size, success_threshold=threshold, max_iterations=500
    )


def assert_objective_close(value_a, value_b, tolerance: float = 1e-5) -> None:
    """Assert that two LP objective values agree up to a tolerance."""
    a = getattr(value_a, "objective", value_a)
    b = getattr(value_b, "objective", value_b)
    assert np.isfinite(a) and np.isfinite(b)
    assert abs(a - b) <= tolerance * max(1.0, abs(a), abs(b)), (a, b)
