"""Integration tests for the MPC implementation (Theorem 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import machines_for_load, mpc_clarkson_solve
from repro.problems import MinimumEnclosingBall
from repro.workloads import (
    make_separable_classification,
    random_feasible_lp,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

from tests.conftest import assert_objective_close, fast_params


class TestMachinesForLoad:
    def test_formula(self):
        assert machines_for_load(10_000, 0.5) == 100
        assert machines_for_load(1000, 0.5) == 32  # ceil(1000^0.5) = 32

    def test_invalid(self):
        with pytest.raises(ValueError):
            machines_for_load(100, 0.0)
        with pytest.raises(ValueError):
            machines_for_load(100, 1.0)
        with pytest.raises(ValueError):
            machines_for_load(0, 0.5)


class TestCorrectness:
    @pytest.mark.parametrize("delta", [0.5, 1.0 / 3.0])
    def test_matches_exact_optimum(self, delta):
        instance = random_polytope_lp(1500, 2, seed=1)
        exact = instance.problem.solve()
        result = mpc_clarkson_solve(
            instance.problem, delta=delta, num_machines=16, params=fast_params(), rng=1
        )
        assert_objective_close(result.value, exact.value)

    def test_default_machine_count(self):
        instance = random_polytope_lp(1600, 2, seed=2)
        result = mpc_clarkson_solve(
            instance.problem, delta=0.5, params=fast_params(), rng=2
        )
        assert result.resources.machine_count == machines_for_load(1600, 0.5)
        assert_objective_close(result.value, instance.problem.solve().value)

    def test_svm(self):
        data = make_separable_classification(1000, 2, seed=3, margin=0.4)
        problem = svm_problem(data)
        exact = problem.solve()
        result = mpc_clarkson_solve(
            problem, delta=0.5, num_machines=8, params=fast_params(sample_size=250), rng=3
        )
        assert result.value.squared_norm == pytest.approx(exact.value.squared_norm, rel=1e-3)

    def test_meb(self):
        points = uniform_ball_points(1200, 2, radius=2.0, seed=4)
        problem = MinimumEnclosingBall(points=points)
        exact = problem.solve()
        result = mpc_clarkson_solve(
            problem, delta=0.5, num_machines=8, params=fast_params(sample_size=250), rng=4
        )
        assert result.value.radius == pytest.approx(exact.value.radius, rel=1e-3)

    def test_invalid_delta(self):
        problem = random_feasible_lp(100, 2, seed=0).problem
        with pytest.raises(ValueError):
            mpc_clarkson_solve(problem, delta=0.0)
        with pytest.raises(ValueError):
            mpc_clarkson_solve(problem, delta=1.5)


class TestResourceAccounting:
    def test_load_is_sublinear_in_n(self):
        instance = random_polytope_lp(3000, 2, seed=5)
        result = mpc_clarkson_solve(
            instance.problem, delta=0.5, params=fast_params(sample_size=300), rng=5
        )
        total_input_bits = 3000 * instance.problem.bit_size()
        assert 0 < result.resources.max_machine_load_bits < total_input_bits

    def test_rounds_scale_with_one_over_delta(self):
        instance = random_polytope_lp(1600, 2, seed=6)
        shallow = mpc_clarkson_solve(
            instance.problem, delta=0.5, num_machines=16,
            params=fast_params(sample_size=500), rng=6,
        )
        deep = mpc_clarkson_solve(
            instance.problem, delta=0.25, num_machines=16,
            params=fast_params(r=4, sample_size=500), rng=6,
        )
        # Smaller delta => smaller broadcast fan-out => more rounds per iteration.
        assert deep.resources.rounds >= shallow.resources.rounds

    def test_single_machine_degenerates_to_direct(self):
        problem = random_feasible_lp(300, 2, seed=7).problem
        result = mpc_clarkson_solve(
            problem, delta=0.5, num_machines=1, params=fast_params(), rng=7
        )
        assert result.resources.machine_count == 1
        assert_objective_close(result.value, problem.solve().value)

    def test_metadata(self):
        instance = random_polytope_lp(1500, 2, seed=8)
        result = mpc_clarkson_solve(
            instance.problem, delta=0.5, num_machines=9, params=fast_params(), rng=8
        )
        assert result.metadata["algorithm"] == "mpc_clarkson"
        assert result.metadata["k"] == 9
        assert result.metadata["delta"] == 0.5
        assert result.metadata["fanout"] >= 2
