"""Tests for the geometric gadgets of Section 5.2 (LineSegment, StepCurve, operators)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lower_bounds.gadgets import (
    differences,
    line_segment,
    origin_shift,
    slope_shift,
    step_curve,
)


class TestLineSegment:
    def test_passes_through_endpoints(self):
        values = line_segment((1.0, 2.0), (5.0, 10.0), 1, 5)
        assert values[0] == pytest.approx(2.0)
        assert values[-1] == pytest.approx(10.0)

    def test_fact_5_5_constant_slope(self):
        p1, p2 = (2.0, 3.0), (7.0, 13.0)
        values = line_segment(p1, p2, 0, 10)
        slope = (p2[1] - p1[1]) / (p2[0] - p1[0])
        assert np.allclose(np.diff(values), slope)

    def test_fact_5_5_closed_form(self):
        p1, p2 = (2.0, 3.0), (7.0, 13.0)
        values = line_segment(p1, p2, 0, 10)
        slope = (p2[1] - p1[1]) / (p2[0] - p1[0])
        for offset, i in enumerate(range(0, 11)):
            assert values[offset] == pytest.approx(slope * (i - p1[0]) + p1[1])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            line_segment((1.0, 0.0), (1.0, 5.0), 0, 3)  # vertical line
        with pytest.raises(ValueError):
            line_segment((0.0, 0.0), (1.0, 1.0), 5, 3)  # a > b


class TestStepCurve:
    def test_definition(self):
        values = step_curve([1, 0, 1], alpha=2.0)
        # z_0 = 0; z_i = z_{i-1} + alpha + i + x_i.
        assert values[0] == 0.0
        assert values[1] == pytest.approx(0 + 2 + 1 + 1)
        assert values[2] == pytest.approx(values[1] + 2 + 2 + 0)
        assert values[3] == pytest.approx(values[2] + 2 + 3 + 1)

    def test_length(self):
        assert step_curve([0] * 7, alpha=0.0).size == 8

    def test_increasing_and_convex(self):
        values = step_curve([1, 1, 0, 0, 1, 0], alpha=0.0)
        diffs = np.diff(values)
        assert np.all(diffs > 0)
        assert np.all(np.diff(diffs) >= 0)

    def test_bits_recoverable_from_increments(self):
        bits = [1, 0, 0, 1, 1, 0, 1]
        values = step_curve(bits, alpha=3.0)
        recovered = [int(values[i + 1] - values[i] - 3.0 - (i + 1)) for i in range(len(bits))]
        assert recovered == bits

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            step_curve([0, 2], alpha=0.0)

    def test_empty_bits(self):
        assert step_curve([], alpha=1.0).tolist() == [0.0]


class TestOperators:
    def test_slope_shift_changes_increments_uniformly(self):
        values = np.array([0.0, 1.0, 3.0, 6.0])
        shifted = slope_shift(values, 2.0)
        assert np.allclose(np.diff(shifted), np.diff(values) + 2.0)
        assert shifted[0] == values[0]

    def test_slope_shift_preserves_pairwise_difference(self):
        """Applied to both curves, the operator preserves A - B (the crossing)."""
        alice = np.array([0.0, 2.0, 5.0, 9.0])
        bob = np.array([8.0, 6.0, 3.0, -1.0])
        shifted_alice = slope_shift(alice, 3.0)
        shifted_bob = slope_shift(bob, 3.0)
        assert np.allclose(shifted_alice - shifted_bob, alice - bob)

    def test_origin_shift_translates(self):
        values = np.array([1.0, 2.0, 3.0])
        assert np.allclose(origin_shift(values, 5.0), [6.0, 7.0, 8.0])

    def test_empty_sequences(self):
        assert slope_shift(np.zeros(0), 1.0).size == 0
        assert origin_shift(np.zeros(0), 1.0).size == 0


class TestDifferences:
    def test_basic(self):
        assert np.allclose(differences([1.0, 3.0, 6.0]), [2.0, 3.0])

    def test_short_sequences(self):
        assert differences([5.0]).size == 0
        assert differences([]).size == 0


@settings(max_examples=50, deadline=None)
@given(
    bits=st.lists(st.integers(0, 1), min_size=1, max_size=30),
    alpha=st.floats(min_value=0.0, max_value=100.0),
)
def test_step_curve_always_convex_increasing(bits, alpha):
    """Property: every step curve is increasing and convex for alpha >= 0."""
    values = step_curve(bits, alpha=alpha)
    diffs = np.diff(values)
    assert np.all(diffs >= 1.0 - 1e-9)
    assert np.all(np.diff(diffs) >= -1e-9)
