"""Integration tests for the streaming implementation of Algorithm 1 (Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import single_pass_full_memory_streaming, streaming_clarkson_solve
from repro.core.clarkson import ClarksonParameters
from repro.problems import MinimumEnclosingBall
from repro.workloads import (
    make_separable_classification,
    random_feasible_lp,
    random_polytope_lp,
    random_order,
    sorted_by_tightness_order,
    svm_problem,
    uniform_ball_points,
)

from tests.conftest import assert_objective_close, fast_params


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact_optimum_lp(self, seed):
        instance = random_polytope_lp(1500, 2, seed=seed)
        exact = instance.problem.solve()
        result = streaming_clarkson_solve(
            instance.problem, r=2, params=fast_params(), rng=seed
        )
        assert_objective_close(result.value, exact.value)

    def test_order_insensitive(self):
        instance = random_polytope_lp(1500, 2, seed=10)
        exact = instance.problem.solve()
        shuffled = random_order(1500, seed=1)
        adversarial = sorted_by_tightness_order(
            instance.problem.a, instance.problem.b, np.zeros(2)
        )
        for order in (shuffled, adversarial):
            result = streaming_clarkson_solve(
                instance.problem, r=2, order=order, params=fast_params(), rng=2
            )
            assert_objective_close(result.value, exact.value)

    def test_svm_streaming(self):
        data = make_separable_classification(1200, 2, seed=3, margin=0.4)
        problem = svm_problem(data)
        exact = problem.solve()
        result = streaming_clarkson_solve(
            problem, r=2, params=fast_params(sample_size=250), rng=3
        )
        assert result.value.squared_norm == pytest.approx(
            exact.value.squared_norm, rel=1e-3
        )

    def test_meb_streaming(self):
        points = uniform_ball_points(1500, 2, radius=2.0, seed=4)
        problem = MinimumEnclosingBall(points=points)
        exact = problem.solve()
        result = streaming_clarkson_solve(
            problem, r=2, params=fast_params(sample_size=250), rng=4
        )
        assert result.value.radius == pytest.approx(exact.value.radius, rel=1e-3)

    def test_matches_trivial_baseline(self):
        instance = random_feasible_lp(900, 3, seed=5)
        baseline = single_pass_full_memory_streaming(instance.problem)
        result = streaming_clarkson_solve(
            instance.problem, r=2, params=fast_params(sample_size=400), rng=5
        )
        assert_objective_close(result.value, baseline.value)


class TestResourceAccounting:
    def test_two_passes_per_iteration(self):
        instance = random_polytope_lp(1500, 2, seed=6)
        result = streaming_clarkson_solve(
            instance.problem, r=2, params=fast_params(), rng=6
        )
        assert result.resources.passes == 2 * result.iterations

    def test_pass_count_within_theorem_bound(self):
        instance = random_polytope_lp(2000, 2, seed=7)
        result = streaming_clarkson_solve(
            instance.problem, r=2, params=fast_params(sample_size=400), rng=7
        )
        nu, r = 3, 2
        # Theorem 1 allows O(nu * r) iterations; with the 2-passes-per-iteration
        # implementation and a generous constant this is 8 * nu * r passes.
        assert result.resources.passes <= 8 * nu * r

    def test_space_is_sublinear(self):
        instance = random_polytope_lp(4000, 2, seed=8)
        result = streaming_clarkson_solve(
            instance.problem, r=2, params=fast_params(sample_size=300), rng=8
        )
        assert 0 < result.resources.space_peak_items < 4000
        assert result.resources.space_peak_bits == result.resources.space_peak_items * instance.problem.bit_size()

    def test_space_grows_with_r_decrease(self):
        """Smaller r needs bigger samples (the pass/space trade-off)."""
        instance = random_polytope_lp(2500, 2, seed=9)
        small_sample = streaming_clarkson_solve(
            instance.problem, r=3, params=fast_params(r=3, sample_size=200), rng=9
        )
        large_sample = streaming_clarkson_solve(
            instance.problem, r=1, params=fast_params(r=1, sample_size=1200), rng=9
        )
        assert large_sample.resources.space_peak_items > small_sample.resources.space_peak_items

    def test_small_problem_single_pass(self):
        problem = random_feasible_lp(60, 2, seed=10).problem
        result = streaming_clarkson_solve(problem, r=2, rng=10)
        assert result.resources.passes == 1
        assert result.resources.space_peak_items == 60

    def test_metadata_records_parameters(self):
        instance = random_polytope_lp(1500, 2, seed=11)
        result = streaming_clarkson_solve(
            instance.problem, r=3, params=fast_params(r=3), rng=11
        )
        assert result.metadata["algorithm"] == "streaming_clarkson"
        assert result.metadata["r"] == 3
        assert result.metadata["sample_size"] > 0


class TestTraceConsistency:
    def test_trace_matches_iterations_and_final_state(self):
        instance = random_polytope_lp(1500, 2, seed=12)
        result = streaming_clarkson_solve(
            instance.problem, r=2, params=fast_params(), rng=12
        )
        assert len(result.trace) == result.iterations
        assert result.trace[-1].num_violators == 0
        successful = sum(1 for rec in result.trace if rec.successful and rec.num_violators > 0)
        assert successful == result.successful_iterations

    def test_keep_trace_disabled(self):
        instance = random_polytope_lp(1200, 2, seed=13)
        params = ClarksonParameters(
            r=2, sample_size=400, success_threshold=0.02, keep_trace=False, max_iterations=500
        )
        result = streaming_clarkson_solve(instance.problem, r=2, params=params, rng=13)
        assert result.trace == []
