"""The async service front end: tickets, concurrency, deadlines, budgets."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import repro
from repro import (
    BudgetExceededError,
    ResourceBudget,
    SessionError,
    SolveResult,
    SolverService,
    solve,
)
from repro.workloads import random_polytope_lp

FAST = dict(sample_size=300, success_threshold=0.02, max_iterations=500, seed=0)


@pytest.fixture(scope="module")
def problems():
    return [random_polytope_lp(800, 2, seed=50 + i).problem for i in range(4)]


def test_submit_returns_tickets_and_matches_direct_solve(problems):
    with SolverService(model="streaming", max_workers=2, r=2, **FAST) as svc:
        tickets = svc.submit_many(problems)
        results = [ticket.result(timeout=60) for ticket in tickets]
        assert all(ticket.status == "done" for ticket in tickets)
        assert all(ticket.error is None for ticket in tickets)
        stats = svc.stats()
    assert stats["submitted"] == len(problems)
    assert stats["done"] == len(problems)
    assert stats["failed"] == 0
    for problem, result in zip(problems, results):
        direct = solve(problem, model="streaming", r=2, **FAST)
        assert result.basis_indices == direct.basis_indices
        assert result.value == direct.value


def test_service_responses_serialize_for_the_wire(problems):
    with SolverService(model="coordinator", num_sites=3, **FAST) as svc:
        result = svc.submit(problems[0]).result(timeout=60)
    payload = json.loads(json.dumps(result.to_dict()))
    restored = SolveResult.from_dict(payload)
    assert restored.basis_indices == result.basis_indices
    assert restored.resources.total_communication_bits > 0


def test_iteration_budget_fails_ticket_with_partial_usage(problems):
    with SolverService(model="sequential", **FAST) as svc:
        ticket = svc.submit(problems[0], budget=ResourceBudget(iterations=1))
        with pytest.raises(BudgetExceededError) as excinfo:
            ticket.result(timeout=60)
        assert ticket.status == "failed"
        assert isinstance(ticket.error, BudgetExceededError)
    assert excinfo.value.reason == "iterations"
    assert excinfo.value.iterations == 1


def test_expired_deadline_fails_fast_including_queue_wait(problems):
    with SolverService(model="sequential", **FAST) as svc:
        ticket = svc.submit(problems[0], deadline_s=1e-9)
        with pytest.raises(BudgetExceededError, match="deadline"):
            ticket.result(timeout=60)
    assert ticket.status == "failed"


def test_communication_budget_fails_coordinator_request(problems):
    with SolverService(model="coordinator", num_sites=3, **FAST) as svc:
        ticket = svc.submit(
            problems[0], budget=ResourceBudget(communication_bits=64)
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            ticket.result(timeout=60)
    assert excinfo.value.reason == "communication_bits"
    assert excinfo.value.usage.total_communication_bits > 64


def test_per_request_overrides_do_not_leak(problems):
    with SolverService(model="streaming", r=2, **FAST) as svc:
        custom = svc.submit(problems[0], r=3).result(timeout=60)
        default = svc.submit(problems[0]).result(timeout=60)
    assert custom.metadata["r"] == 3
    assert default.metadata["r"] == 2


def test_shutdown_rejects_new_submissions(problems):
    svc = SolverService(model="sequential", **FAST)
    svc.shutdown()
    with pytest.raises(SessionError, match="shut down"):
        svc.submit(problems[0])
    svc.shutdown()  # idempotent


def test_external_session_is_not_closed_by_the_service(problems):
    with repro.session(model="streaming", **FAST) as sess:
        with SolverService(session=sess) as svc:
            svc.submit(problems[0]).result(timeout=60)
        # The service shut down, but the session it borrowed stays usable.
        result = sess.solve(problems[1])
    assert result.basis_indices


def test_concurrent_submissions_from_many_threads(problems):
    errors: list[BaseException] = []
    with SolverService(model="streaming", max_workers=2, r=2, **FAST) as svc:
        tickets: list = []
        lock = threading.Lock()

        def submit_batch():
            try:
                batch = svc.submit_many(problems[:2])
                with lock:
                    tickets.extend(batch)
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=submit_batch) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        values = [t.result(timeout=120).value for t in tickets]
    # Identical requests must produce identical results regardless of the
    # worker thread that served them.
    reference = solve(problems[0], model="streaming", r=2, **FAST).value
    assert values[0] == reference
    assert len(values) == 6


def test_stats_exposes_queue_depth_running_and_tenants(problems):
    with SolverService(model="streaming", max_workers=2, r=2, **FAST) as svc:
        stats = svc.stats()
        assert stats["queue_depth"] == 0
        assert stats["running"] == 0
        assert stats["max_workers"] == 2
        assert stats["tenants"] == {}

        tickets = [
            svc.submit(problem, tenant="acme") for problem in problems[:2]
        ] + [svc.submit(problems[2], tenant="tiny"), svc.submit(problems[3])]
        depth = svc.stats()
        # Everything submitted is queued, running, or already finished.
        assert (
            depth["queue_depth"] + depth["running"] + depth["done"]
            == len(tickets)
        )
        for ticket in tickets:
            ticket.result(timeout=120)
        final = svc.stats()
    assert final["queue_depth"] == 0
    assert final["running"] == 0
    assert final["done"] == len(tickets)
    # Per-tenant breakdown: named tenants plus the anonymous bucket.
    assert final["tenants"]["acme"]["submitted"] == 2
    assert final["tenants"]["acme"]["done"] == 2
    assert final["tenants"]["acme"]["failed"] == 0
    assert final["tenants"]["tiny"] == {
        "submitted": 1,
        "done": 1,
        "failed": 0,
        "cancelled": 0,
    }
    # Tickets submitted without a tenant count only in the totals.
    assert set(final["tenants"]) == {"acme", "tiny"}


def test_progress_callback_sees_iteration_and_round_events(problems):
    events: list[dict] = []
    with SolverService(model="streaming", max_workers=1, r=2, **FAST) as svc:
        result = svc.submit(problems[0], on_progress=events.append).result(
            timeout=120
        )
    iteration_events = [e for e in events if e["event"] == "iteration"]
    round_events = [e for e in events if e["event"] == "round"]
    assert len(iteration_events) == result.iterations
    assert len(round_events) >= result.iterations
    assert iteration_events[-1]["successful"] is True
