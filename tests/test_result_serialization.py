"""``SolveResult.to_dict`` / ``from_dict``: the JSON wire round-trip.

Service responses must survive ``json.dumps`` → ``json.loads`` →
``from_dict`` with the optimum, witness, basis, trace, resources (including
the per-round communication ledgers), metadata, and warm stats intact —
for every problem family's value/witness types (lexicographic LP values,
MEB balls, SVM/QP dataclasses, plain arrays).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro import SolveResult, solve
from repro.core.result import ResourceUsage, WarmStats
from repro.problems import ConvexQuadraticProgram, MinimumEnclosingBall
from repro.workloads import (
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

FAST = dict(sample_size=300, success_threshold=0.02, max_iterations=500, seed=0)


def _problems():
    rng = np.random.default_rng(60)
    g = rng.normal(size=(700, 2))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    h = g.sum(axis=1) * 5.0 - rng.uniform(0.5, 4.0, size=700)
    return {
        "lp": random_polytope_lp(800, 2, seed=61).problem,
        "meb": MinimumEnclosingBall(uniform_ball_points(800, 2, seed=62)),
        "svm": svm_problem(make_separable_classification(700, 2, seed=63, margin=0.4)),
        "qp": ConvexQuadraticProgram(
            q_matrix=np.eye(2) * 2.0, q_vector=np.ones(2), g_matrix=g, h_vector=h
        ),
    }


@pytest.mark.parametrize("family", sorted(_problems()))
@pytest.mark.parametrize("model", ("sequential", "coordinator"))
def test_round_trip_preserves_everything(family, model):
    problem = _problems()[family]
    kwargs = {"num_sites": 3} if model == "coordinator" else {}
    result = solve(problem, model=model, **FAST, **kwargs)

    wire = json.dumps(result.to_dict())
    restored = SolveResult.from_dict(json.loads(wire))

    assert restored.value == result.value
    assert restored.basis_indices == result.basis_indices
    assert restored.iterations == result.iterations
    assert restored.successful_iterations == result.successful_iterations
    assert restored.resources == result.resources
    assert restored.trace == result.trace
    assert restored.metadata == result.metadata
    # The derived communication summary is identical after the round-trip
    # because it is recomputed from the restored resources.
    assert restored.communication == result.communication
    # And a second encoding is a fixed point.
    assert restored.to_dict() == result.to_dict()


def test_round_trip_includes_warm_stats_from_a_session():
    problem = random_polytope_lp(900, 2, seed=64).problem
    with repro.session(model="streaming", r=2, **FAST) as sess:
        first = sess.solve(problem)
        witness = np.asarray(first.witness, dtype=float)
        direction = -(problem.c + 0.3 * np.array([-problem.c[1], problem.c[0]]))
        rhs = float(direction @ witness) - 0.05
        warm = sess.resolve_with(added=(direction.reshape(1, -1), np.array([rhs])))

    payload = json.loads(json.dumps(warm.to_dict()))
    assert payload["warm"]["warm_start"] == warm.warm.warm_start
    assert payload["warm"]["reused_bases"] == warm.warm.reused_bases
    restored = SolveResult.from_dict(payload)
    assert isinstance(restored.warm, WarmStats)
    assert restored.warm.to_dict() == warm.warm.to_dict()
    # The witness payloads are session plumbing and deliberately dropped.
    assert restored.warm.witnesses == []


def test_communication_block_carries_the_per_round_ledger():
    problem = random_polytope_lp(800, 2, seed=65).problem
    result = solve(problem, model="coordinator", num_sites=3, **FAST)
    payload = result.to_dict()
    assert payload["communication"]["total_bits"] > 0
    assert payload["communication"]["rounds"] == result.communication.rounds
    assert len(payload["communication"]["per_round"]) == len(
        result.resources.per_round
    )
    assert payload["resources"]["per_round"] == [
        {str(k): int(v) for k, v in entry.items()}
        for entry in result.resources.per_round
    ]


def test_from_dict_tolerates_unknown_resource_fields():
    result = SolveResult(
        value=1.5,
        witness=np.array([1.0, 2.0]),
        basis_indices=(3, 4),
        resources=ResourceUsage(passes=2),
    )
    payload = result.to_dict()
    payload["resources"]["a_future_currency"] = 7
    restored = SolveResult.from_dict(payload)
    assert restored.resources.passes == 2
    assert np.array_equal(restored.witness, result.witness)


def test_encoder_refuses_untrusted_dataclasses():
    from dataclasses import dataclass

    @dataclass
    class NotOurs:
        x: int = 1

    result = SolveResult(value=NotOurs(), witness=None, basis_indices=())
    with pytest.raises(TypeError, match="untrusted"):
        result.to_dict()


def test_decoder_refuses_untrusted_modules():
    from repro.core.result import _decode_value

    with pytest.raises(ValueError, match="untrusted"):
        _decode_value(
            {"__kind__": "dataclass", "cls": "os.path:join", "fields": {}}
        )
