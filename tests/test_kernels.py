"""Kernel-backend parity grid.

The kernel layer's contract (see ``repro/kernels/base.py``): every backend
returns bit-identical violation masks, counts, float64 scores, and sample
indices; weight *sums* are the one sanctioned exception (blocked accumulation
may differ in ulps), so they are compared to tolerance.  The grid pins the
``fused`` / ``fused64`` (and, where importable, ``numba``) backends against
the ``numpy`` reference across all four problem families, plus the batched
basis solves, the Gumbel sampler, and the resolution/fallback rules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SolverConfig, kernels, solve, solve_many
from repro.api.registry import describe_model
from repro.core.lptype import ConstraintPack, as_index_array, _as_selector
from repro.problems.meb import MinimumEnclosingBall
from repro.problems.qp import ConvexQuadraticProgram
from repro.workloads import (
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

BACKENDS = list(kernels.available_backends())
ALTERNATES = [b for b in BACKENDS if b != "numpy"]
FAMILIES = ("lp", "meb", "svm", "qp")

N = 3_000
D = 4


def _build(family: str, n: int = N, d: int = D, seed: int = 7):
    if family == "lp":
        return random_polytope_lp(n, d, seed=seed).problem
    if family == "meb":
        return MinimumEnclosingBall(uniform_ball_points(n, d, seed=seed))
    if family == "svm":
        return svm_problem(make_separable_classification(n, d, seed=seed))
    if family == "qp":
        rng = np.random.default_rng(seed)
        q_matrix = np.diag(np.linspace(1.0, 2.0, d))
        q_vector = rng.normal(size=d)
        normals = rng.normal(size=(n, d))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        anchor = rng.uniform(-1.0, 1.0, size=d)
        h_vector = normals @ anchor - rng.uniform(0.1, 1.0, size=n)
        return ConvexQuadraticProgram(q_matrix, q_vector, normals, h_vector)
    raise AssertionError(family)


def _witness(problem):
    """A representative witness: the optimum of a small head subset (it
    violates a healthy fraction of the remaining constraints)."""
    return problem.solve_subset(list(range(40))).witness


SELECTORS = {
    "all": lambda n: None,
    "contiguous": lambda n: np.arange(100, n - 137),
    "gather": lambda n: np.arange(0, n, 3),
    "unsorted": lambda n: np.array([5, 2, 900, 2_500, 41, 1_000]),
    "empty": lambda n: np.array([], dtype=int),
}


@pytest.mark.parametrize("selector", sorted(SELECTORS))
@pytest.mark.parametrize("family", FAMILIES)
def test_sweep_parity_grid(family, selector):
    problem = _build(family)
    witness = _witness(problem)
    indices = SELECTORS[selector](problem.num_constraints)
    m = problem.num_constraints if indices is None else len(indices)
    weights = np.random.default_rng(3).uniform(0.1, 5.0, size=m)

    with kernels.use_backend("numpy"):
        ref = problem.violation_sweep(witness, indices, weights=weights)
    assert ref.count == int(ref.mask.sum())
    for backend in ALTERNATES:
        with kernels.use_backend(backend):
            got = problem.violation_sweep(witness, indices, weights=weights)
        assert np.array_equal(got.mask, ref.mask), backend
        assert got.count == ref.count, backend
        # Weight sums: the sanctioned ulp exception.
        assert got.violated_weight == pytest.approx(ref.violated_weight, rel=1e-12)
        assert got.total_weight == pytest.approx(ref.total_weight, rel=1e-12)


@pytest.mark.parametrize("family", FAMILIES)
def test_scores_bit_identical(family):
    problem = _build(family)
    pack = problem.constraint_pack()
    if pack is None:
        pytest.skip(f"{family} has no constraint pack")
    encoded = problem.encode_witness(_witness(problem))
    for indices in (None, np.arange(50, 2_000), np.arange(0, N, 7)):
        with kernels.use_backend("numpy"):
            ref = pack.scores(encoded, indices)
        for backend in ALTERNATES:
            with kernels.use_backend(backend):
                got = pack.scores(encoded, indices)
            assert got.dtype == np.float64
            assert np.array_equal(got, ref), (backend, indices)


@pytest.mark.parametrize("family", FAMILIES)
def test_count_matrix_parity(family):
    problem = _build(family)
    witnesses = [
        problem.solve_subset(list(range(start, start + 25))).witness
        for start in (0, 200, 900)
    ]
    for indices in (None, np.arange(10, 2_500), np.arange(0, N, 11)):
        with kernels.use_backend("numpy"):
            ref = problem.violation_count_matrix(witnesses, indices)
        for backend in ALTERNATES:
            with kernels.use_backend(backend):
                got = problem.violation_count_matrix(witnesses, indices)
            assert np.array_equal(got, ref), backend


def _same_witness(a, b) -> bool:
    if hasattr(a, "center"):
        return np.array_equal(a.center, b.center) and a.radius == b.radius
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b)
    return a == b


@pytest.mark.parametrize("family", FAMILIES)
def test_full_solve_identical_across_backends(family):
    problem = _build(family, n=2_000)
    results = {}
    for backend in BACKENDS:
        config = SolverConfig.practical(
            problem, r=2, seed=11, kernel_backend=backend
        )
        results[backend] = solve(problem, model="sequential", config=config)
        assert results[backend].metadata["kernel_backend"] == backend
    ref = results["numpy"]
    for backend in ALTERNATES:
        got = results[backend]
        assert got.basis_indices == ref.basis_indices, backend
        assert got.iterations == ref.iterations, backend
        assert got.successful_iterations == ref.successful_iterations, backend
        assert got.value == ref.value, backend
        assert _same_witness(got.witness, ref.witness), backend


# --------------------------------------------------------------------- #
# Primitive-level parity
# --------------------------------------------------------------------- #


def _legacy_gumbel_top_k(arr, size, gen):
    """The pre-kernel-layer sampler, reproduced verbatim as the pin."""
    tiny = float(np.nextafter(0.0, 1.0))
    positive = np.flatnonzero(arr > -np.inf)
    if positive.size == 0:
        raise ValueError("total weight must be positive")
    size = min(size, positive.size)
    if size == 0:
        return np.empty(0, dtype=int)
    sub = arr[positive]
    u = np.maximum(gen.random(sub.size), tiny)
    keys = sub - np.log(-np.log(u))
    if size < positive.size:
        top = np.argpartition(keys, positive.size - size)[positive.size - size:]
    else:
        top = np.arange(positive.size)
    return np.sort(positive[top])


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("zeros", [False, True])
def test_gumbel_top_k_matches_legacy(backend, zeros):
    rng = np.random.default_rng(5)
    arr = rng.normal(size=10_000)
    if zeros:
        arr[rng.integers(0, arr.size, size=500)] = -np.inf
    for size in (1, 17, 512, arr.size):
        expected = _legacy_gumbel_top_k(arr.copy(), size, np.random.default_rng(99))
        got = kernels.get_backend(backend).gumbel_top_k(
            arr.copy(), size, np.random.default_rng(99)
        )
        assert np.array_equal(got, expected), (backend, size)


@pytest.mark.parametrize("backend", BACKENDS)
def test_gumbel_top_k_all_zero_weights_raises(backend):
    arr = np.full(64, -np.inf)
    with pytest.raises(ValueError, match="total weight must be positive"):
        kernels.get_backend(backend).gumbel_top_k(arr, 4, np.random.default_rng(0))


@pytest.mark.parametrize("backend", ALTERNATES)
def test_solve_many_batched_matches_looped(backend):
    rng = np.random.default_rng(17)
    for batch, m in ((1, 1), (7, 3), (40, 6), (0, 4)):
        base = rng.normal(size=(batch, m, m))
        mats = base @ np.transpose(base, (0, 2, 1)) + 0.5 * np.eye(m)
        rhs = rng.normal(size=(batch, m))
        ref = kernels.get_backend("numpy").solve_many(mats, rhs)
        got = kernels.get_backend(backend).solve_many(mats, rhs)
        assert got.shape == (batch, m)
        assert np.array_equal(got, ref), (backend, batch, m)


@pytest.mark.parametrize("backend", ALTERNATES)
def test_first_violator_parity(backend):
    rng = np.random.default_rng(23)
    a = rng.normal(size=(50_000, 5))
    x = rng.normal(size=5)
    ref_backend = kernels.get_backend("numpy")
    alt = kernels.get_backend(backend)
    # No violator / early violator / violator deep in the tail / suffix view.
    for b in (
        a @ x + 1.0,                       # none violated
        a @ x - 1e-6,                      # (almost) all violated
        np.concatenate([a[:49_999] @ x[None].T.ravel() + 1.0, [-np.inf]])
        if False else np.r_[a[:-1] @ x + 1.0, a[-1] @ x - 1.0],  # only the last
    ):
        assert alt.first_violator(a, b, x, 1e-9) == ref_backend.first_violator(
            a, b, x, 1e-9
        )
    suffix = slice(12_345, None)
    b = a @ x + 1.0
    b[30_000] = a[30_000] @ x - 1.0
    assert alt.first_violator(
        a[suffix], b[suffix], x, 1e-9
    ) == ref_backend.first_violator(a[suffix], b[suffix], x, 1e-9)


def test_fused_float32_recertifies_adversarial_scales():
    """Catastrophic-cancellation margins land inside the f32 band and must be
    re-certified in float64: masks stay bit-identical to the reference."""
    rng = np.random.default_rng(31)
    n, d = 20_000, 6
    rows = rng.normal(size=(n, d))
    # Mixed row scales spanning ~40 orders of magnitude.
    rows *= 10.0 ** rng.integers(-20, 20, size=(n, 1)).astype(float)
    vec = rng.normal(size=d)
    offset = 0.3
    # rhs chosen so the true scores sit within +-1e-9 of the threshold —
    # far below float32 resolution at these scales.
    jitter = rng.uniform(-1e-9, 1e-9, size=n)
    rhs = rows @ vec + offset - jitter
    pack = ConstraintPack(rows=rows, rhs=rhs, limit=0.0, sense=1)
    encoded = (vec, offset)
    with kernels.use_backend("numpy"):
        ref = pack.sweep(encoded)
    for backend in ALTERNATES:
        with kernels.use_backend(backend):
            got = pack.sweep(encoded)
        assert np.array_equal(got.mask, ref.mask), backend
        assert got.count == ref.count


def test_meb_exact_small_solver_matches_qp():
    rng = np.random.default_rng(41)
    for d in (2, 3, 5):
        for k in (2, 3, 5, 8, 10):
            pts = rng.normal(size=(max(k, 12), d))
            problem = MinimumEnclosingBall(pts)
            idx = np.arange(k)
            exact = problem._solve_small_exact(idx)
            qp = problem._solve_qp(idx)
            assert exact is not None
            # The batched-circumcentre solve is exact; SLSQP agrees to its
            # own tolerance and can only be (weakly) worse.
            assert exact.radius == pytest.approx(qp.radius, rel=1e-5, abs=1e-7)
            assert exact.radius <= qp.radius + 1e-7
            distances = np.linalg.norm(pts[idx] - exact.center, axis=1)
            assert float(distances.max()) <= exact.radius + 1e-9


def test_meb_exact_handles_degenerate_clouds():
    # All points coincident: zero-radius ball, no linear system at all.
    problem = MinimumEnclosingBall(np.ones((5, 3)))
    ball = problem._solve_small_exact(np.arange(5))
    assert ball is not None and ball.radius == 0.0
    # Collinear duplicates: the singular subsets are filtered, the
    # remaining pair still determines the optimum.
    pts = np.array([[0.0, 0.0], [0.0, 0.0], [2.0, 0.0]])
    problem = MinimumEnclosingBall(pts)
    ball = problem._solve_small_exact(np.arange(3))
    assert ball is not None
    assert ball.radius == pytest.approx(1.0, rel=1e-12)


# --------------------------------------------------------------------- #
# Selection, resolution, and API threading
# --------------------------------------------------------------------- #


def test_as_index_array_passes_int_arrays_through():
    arr = np.arange(10, dtype=np.int64)
    assert as_index_array(arr) is arr
    view = arr[2:7]
    assert as_index_array(view) is view
    floats = np.arange(4, dtype=float)
    converted = as_index_array(floats)
    assert converted.dtype.kind == "i"
    assert np.array_equal(converted, [0, 1, 2, 3])
    assert np.array_equal(as_index_array([3, 1]), [3, 1])


def test_as_selector_classification():
    assert _as_selector(None, 100) is None
    assert _as_selector(np.arange(100), 100) is None          # full range
    sel = _as_selector(np.arange(5, 50), 100)
    assert sel == slice(5, 50)                                 # contiguous run
    fancy = _as_selector(np.array([3, 1, 2]), 100)
    assert isinstance(fancy, np.ndarray)                       # not monotonic
    gap = _as_selector(np.array([1, 3, 5]), 100)
    assert isinstance(gap, np.ndarray)                         # strided
    empty = _as_selector(np.array([], dtype=int), 100)
    assert isinstance(empty, np.ndarray) and empty.size == 0


def test_resolution_precedence(monkeypatch):
    monkeypatch.delenv(kernels.KERNEL_BACKEND_ENV, raising=False)
    assert kernels.resolve_backend_name(None) == kernels.DEFAULT_KERNEL_BACKEND
    monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "numpy")
    assert kernels.resolve_backend_name(None) == "numpy"
    # An explicit name wins over the environment.
    assert kernels.resolve_backend_name("fused64") == "fused64"
    # Unknown names fall back to the default.
    monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "cuda")
    assert kernels.resolve_backend_name(None) == kernels.DEFAULT_KERNEL_BACKEND


@pytest.mark.skipif(
    "numba" in BACKENDS, reason="numba installed: no fallback to exercise"
)
def test_known_but_unavailable_backend_falls_back_to_numpy():
    assert kernels.resolve_backend_name("numba") == "numpy"


def test_use_backend_nests_and_restores():
    default = kernels.active_backend_name()
    with kernels.use_backend("numpy") as outer:
        assert outer == "numpy"
        assert kernels.active_backend().name == "numpy"
        with kernels.use_backend("fused64"):
            assert kernels.active_backend().name == "fused64"
        assert kernels.active_backend().name == "numpy"
    assert kernels.active_backend_name() == default


def test_config_validates_kernel_backend():
    from repro.core.exceptions import InvalidConfigError

    SolverConfig(kernel_backend="fused")     # valid
    SolverConfig(kernel_backend="numba")     # known everywhere, resolved later
    with pytest.raises(InvalidConfigError, match="kernel_backend"):
        SolverConfig(kernel_backend="cuda")


def test_env_var_reaches_solve(monkeypatch):
    problem = _build("lp", n=500)
    monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "numpy")
    result = solve(problem, model="sequential", seed=3)
    assert result.metadata["kernel_backend"] == "numpy"
    monkeypatch.delenv(kernels.KERNEL_BACKEND_ENV)
    result = solve(problem, model="sequential", seed=3)
    assert result.metadata["kernel_backend"] == kernels.DEFAULT_KERNEL_BACKEND


def test_describe_model_reports_backends():
    record = describe_model("sequential")
    assert "numpy" in record["kernel_backends"]
    assert "fused" in record["kernel_backends"]


@pytest.mark.parametrize("backend", ["numpy", "fused"])
def test_api_solve_many_parallel_parity(backend):
    problems = [_build("lp", n=400, seed=60 + i) for i in range(4)]
    config = SolverConfig(kernel_backend=backend)
    serial = solve_many(
        problems, model="sequential", config=config, max_workers=1, root_seed=9
    )
    threaded = solve_many(
        problems, model="sequential", config=config, max_workers=3, root_seed=9
    )
    for lhs, rhs in zip(serial.results, threaded.results):
        assert lhs.value == rhs.value
        assert lhs.basis_indices == rhs.basis_indices
        assert lhs.metadata["kernel_backend"] == backend


def test_distributed_models_record_backend():
    problem = _build("lp", n=1_200)
    for model in ("streaming", "coordinator", "mpc"):
        config = SolverConfig.practical(
            problem, r=2, seed=5, kernel_backend="fused64"
        )
        result = solve(problem, model=model, config=config)
        assert result.metadata["kernel_backend"] == "fused64", model
