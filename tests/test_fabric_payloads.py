"""Tests for the fabric payload layer: wire format and measured bit accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accounting import BitCostModel
from repro.core.exceptions import CommunicationError
from repro.fabric.payload import (
    BasisPayload,
    ConstraintBlock,
    Count,
    Flag,
    IndexBlock,
    RawBits,
    Scalar,
    StatsBlock,
    Vector,
    constraint_rows,
    decode_payload,
    measure_object_bits,
)
from repro.models.coordinator import CoordinatorNetwork, Message
from repro.workloads import random_feasible_lp

COST = BitCostModel()  # 64-bit coefficients, 32-bit counters


def roundtrip(payload):
    return decode_payload(payload.to_bytes())


class TestWireRoundtrip:
    @pytest.mark.parametrize(
        "payload",
        [
            Flag("update?", 1),
            Count(17),
            Scalar(3.25),
            Vector(values=np.array([1.0, -2.5, 3.75])),
            IndexBlock(indices=np.array([3, 1, 4, 1, 5])),
            StatsBlock(values=np.array([0.5, 2.0, 9.0])),
        ],
    )
    def test_simple_payloads(self, payload):
        restored = roundtrip(payload)
        assert type(restored) is type(payload)
        for name, value in vars(payload).items():
            other = getattr(restored, name)
            if isinstance(value, np.ndarray):
                assert np.array_equal(value, other)
            else:
                assert value == other

    def test_constraint_block_roundtrip_is_exact(self):
        rows = np.array([[1.5, -2.0, 0.25], [0.0, 1e-17, -3.5]])
        block = ConstraintBlock(indices=np.array([7, 42]), rows=rows)
        restored = roundtrip(block)
        assert np.array_equal(restored.indices, block.indices)
        # Bit-exact float delivery: the wire format is raw float64.
        assert restored.rows.tobytes() == rows.tobytes()

    def test_basis_payload_roundtrip(self):
        payload = BasisPayload(
            indices=np.array([1, 2, 3]),
            rows=np.arange(9, dtype=float).reshape(3, 3),
            witness=np.array([0.5, -0.5]),
            flag=1,
        )
        restored = roundtrip(payload)
        assert np.array_equal(restored.indices, payload.indices)
        assert np.array_equal(restored.rows, payload.rows)
        assert np.array_equal(restored.witness, payload.witness)
        assert restored.flag == 1


class TestMeasuredBits:
    def test_bits_are_computed_from_the_wire_content(self):
        assert Flag("x", 1).measured_bits(COST) == COST.counters(1)
        assert Count(5).measured_bits(COST) == COST.counters(1)
        assert Scalar(1.0).measured_bits(COST) == COST.coefficients(1)
        assert Vector(np.zeros(7)).measured_bits(COST) == COST.coefficients(7)
        assert IndexBlock(np.arange(9)).measured_bits(COST) == COST.counters(9)

    def test_constraint_block_charges_rows_and_identities(self):
        block = ConstraintBlock(indices=np.arange(5), rows=np.zeros((5, 4)))
        assert block.measured_bits(COST) == COST.coefficients(20) + COST.counters(5)

    def test_basis_payload_charges_rows_witness_and_flag(self):
        payload = BasisPayload(
            indices=np.arange(3), rows=np.zeros((3, 4)), witness=np.zeros(2)
        )
        expected = COST.coefficients(12 + 2) + COST.counters(3 + 1)
        assert payload.measured_bits(COST) == expected

    def test_measurement_survives_the_wire(self):
        block = ConstraintBlock(indices=np.arange(6), rows=np.ones((6, 3)))
        assert roundtrip(block).measured_bits(COST) == block.measured_bits(COST)

    def test_custom_cost_model_scales_measurement(self):
        cheap = BitCostModel(bits_per_coefficient=8, bits_per_counter=4)
        block = ConstraintBlock(indices=np.arange(2), rows=np.zeros((2, 3)))
        assert block.measured_bits(cheap) == 8 * 6 + 4 * 2

    def test_raw_bits_is_declared(self):
        assert RawBits(payload="anything", bits=1234).measured_bits(COST) == 1234


class TestMeasureObjectBits:
    def test_scalars_and_containers(self):
        assert measure_object_bits(3, COST) == COST.counters(1)
        assert measure_object_bits(2.5, COST) == COST.coefficients(1)
        assert measure_object_bits("tag", COST) == 0
        assert measure_object_bits(None, COST) == 0
        assert (
            measure_object_bits(("basis", 1, 2.0), COST)
            == COST.counters(1) + COST.coefficients(1)
        )

    def test_arrays_by_dtype(self):
        assert measure_object_bits(np.zeros(4), COST) == COST.coefficients(4)
        assert measure_object_bits(np.arange(4), COST) == COST.counters(4)

    def test_unmeasurable_object_is_loud(self):
        with pytest.raises(TypeError):
            measure_object_bits(object(), COST)


class TestConstraintRows:
    def test_rows_have_payload_width(self):
        problem = random_feasible_lp(50, 3, seed=0).problem
        rows = constraint_rows(problem, np.array([0, 7, 11]))
        assert rows.shape == (3, problem.payload_num_coefficients())
        pack = problem.constraint_pack()
        assert np.array_equal(rows[:, -1], pack.rhs[[0, 7, 11]])

    def test_empty_selection(self):
        problem = random_feasible_lp(20, 2, seed=1).problem
        assert constraint_rows(problem, np.array([], dtype=int)).shape == (
            0,
            problem.payload_num_coefficients(),
        )


class TestStrictMessageMode:
    """Satellite: the legacy declared-bits Message under-counting hazard."""

    @staticmethod
    def _network(strict):
        parts = [np.arange(0, 4), np.arange(4, 8)]
        return CoordinatorNetwork(parts, strict_bits=strict)

    def test_under_declared_bits_raise_in_strict_mode(self):
        network = self._network(strict=True)
        network.begin_round()
        payload = np.zeros(10)  # 10 coefficients = 640 measured bits
        with pytest.raises(CommunicationError, match="diverges"):
            network.coordinator_to_site(0, Message(payload, bits=64))

    def test_over_declared_bits_also_diverge(self):
        network = self._network(strict=True)
        network.begin_round()
        with pytest.raises(CommunicationError, match="diverges"):
            network.site_to_coordinator(0, Message(1, bits=999))

    def test_measured_messages_pass_strict_mode(self):
        network = self._network(strict=True)
        network.begin_round()
        payload = ("totals", np.zeros(3))
        network.coordinator_to_site(0, Message.measured(payload))
        network.site_to_coordinator(0, Message.measured(np.arange(5)))
        network.end_round()
        assert network.total_bits == COST.coefficients(3) + COST.counters(5)

    def test_default_mode_trusts_declarations(self):
        network = self._network(strict=False)
        network.begin_round()
        network.coordinator_to_site(0, Message(np.zeros(10), bits=64))
        network.end_round()
        assert network.total_bits == 64


class TestConstraintRowsCarryRealData:
    def test_meb_rows_are_the_packed_points(self):
        """MEB's payload width equals its pack width: the shipped rows must
        be the packed point encoding verbatim, not a truncated hybrid."""
        from repro.workloads import uniform_ball_points
        from repro.problems import MinimumEnclosingBall

        problem = MinimumEnclosingBall(uniform_ball_points(30, 3, seed=2))
        idx = np.array([0, 5, 9])
        rows = constraint_rows(problem, idx)
        pack = problem.constraint_pack()
        assert rows.shape == (3, problem.payload_num_coefficients())
        assert np.array_equal(rows, pack.rows[idx])

    def test_lp_rows_are_row_plus_rhs(self):
        problem = random_feasible_lp(40, 3, seed=3).problem
        idx = np.array([1, 2])
        rows = constraint_rows(problem, idx)
        pack = problem.constraint_pack()
        assert np.array_equal(rows[:, :-1], pack.rows[idx])
        assert np.array_equal(rows[:, -1], pack.rhs[idx])
