"""Tests for the minimum-enclosing-ball / core-VM problem (Section 4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidInstanceError
from repro.problems.meb import Ball, MEBValue, MinimumEnclosingBall, badoiu_clarkson_meb
from repro.workloads import clustered_points, sphere_surface_points, uniform_ball_points


class TestBall:
    def test_contains(self):
        ball = Ball(center=[0.0, 0.0], radius=1.0)
        assert ball.contains(np.array([0.5, 0.5]))
        assert not ball.contains(np.array([1.5, 0.0]))

    def test_contains_tolerance(self):
        ball = Ball(center=[0.0], radius=1.0)
        assert ball.contains(np.array([1.0 + 1e-9]))


class TestMEBValue:
    def test_ordering(self):
        assert MEBValue(1.0) < MEBValue(2.0)
        assert MEBValue(1.0) == MEBValue(1.0 + 1e-9)
        assert not MEBValue(2.0) < MEBValue(1.0)


class TestMinimumEnclosingBall:
    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            MinimumEnclosingBall(points=np.zeros((0, 2)))
        with pytest.raises(InvalidInstanceError):
            MinimumEnclosingBall(points=np.zeros(5))

    def test_single_point(self):
        meb = MinimumEnclosingBall(points=[[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]])
        result = meb.solve_subset([0])
        assert result.value.radius == pytest.approx(0.0)
        assert np.allclose(result.witness.center, [1.0, 2.0])

    def test_two_points_midpoint(self):
        meb = MinimumEnclosingBall(points=[[0.0, 0.0], [2.0, 0.0]])
        result = meb.solve()
        assert np.allclose(result.witness.center, [1.0, 0.0], atol=1e-4)
        assert result.value.radius == pytest.approx(1.0, abs=1e-4)

    def test_square_corners(self):
        pts = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
        result = MinimumEnclosingBall(points=pts).solve()
        assert np.allclose(result.witness.center, [0.5, 0.5], atol=1e-4)
        assert result.value.radius == pytest.approx(np.sqrt(0.5), abs=1e-4)

    @pytest.mark.parametrize("dimension", [2, 3, 4])
    def test_sphere_surface_radius_recovered(self, dimension):
        pts = sphere_surface_points(300, dimension, radius=2.5, center=np.ones(dimension), seed=1)
        result = MinimumEnclosingBall(points=pts).solve()
        assert result.value.radius == pytest.approx(2.5, rel=0.02)
        assert np.allclose(result.witness.center, np.ones(dimension), atol=0.1)

    def test_all_points_contained_at_optimum(self):
        pts = clustered_points(200, 3, seed=2)
        meb = MinimumEnclosingBall(points=pts)
        result = meb.solve()
        assert meb.violating_indices(result.witness, meb.all_indices()).size == 0

    def test_optimum_is_minimal_vs_brute_force_2d(self):
        # Brute force over all pairs and triples for a small 2-d instance.
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(12, 2))
        meb = MinimumEnclosingBall(points=pts)
        result = meb.solve()

        def enclosing_radius(center):
            return float(np.max(np.linalg.norm(pts - center, axis=1)))

        best = min(
            enclosing_radius((pts[i] + pts[j]) / 2.0)
            for i in range(12)
            for j in range(i, 12)
        )
        # The optimal radius is never larger than the best pair-midpoint ball
        # and is within a small tolerance of it from below when the optimal
        # basis has two points; in all cases it is at most `best`.
        assert result.value.radius <= best + 1e-6

    def test_violation_test_matches_distances(self):
        pts = uniform_ball_points(100, 3, radius=2.0, seed=4)
        meb = MinimumEnclosingBall(points=pts)
        ball = Ball(center=np.zeros(3), radius=1.0)
        expected = {i for i in range(100) if np.linalg.norm(pts[i]) > 1.0 + 1e-5}
        got = set(meb.violating_indices(ball, range(100)).tolist())
        assert got == expected

    def test_monotonicity(self):
        pts = clustered_points(100, 2, seed=5)
        meb = MinimumEnclosingBall(points=pts)
        small = meb.solve_subset(range(30)).value
        large = meb.solve().value
        assert not large < small

    def test_basis_size_bounded(self):
        pts = uniform_ball_points(200, 2, seed=6)
        result = MinimumEnclosingBall(points=pts).solve()
        assert 1 <= len(result.indices) <= 3

    def test_empty_subset(self):
        meb = MinimumEnclosingBall(points=[[1.0, 1.0]])
        result = meb.solve_subset([])
        assert result.value.radius == pytest.approx(0.0)


class TestBadoiuClarkson:
    def test_matches_qp_radius(self):
        pts = clustered_points(300, 3, seed=7)
        qp_result = MinimumEnclosingBall(points=pts).solve()
        approx = badoiu_clarkson_meb(pts, epsilon=0.02, rng=0)
        assert approx.radius <= qp_result.value.radius * 1.05
        assert approx.radius >= qp_result.value.radius * 0.999

    def test_all_points_contained(self):
        pts = uniform_ball_points(200, 2, seed=8)
        ball = badoiu_clarkson_meb(pts, epsilon=0.05, rng=1)
        distances = np.linalg.norm(pts - ball.center, axis=1)
        assert np.all(distances <= ball.radius + 1e-9)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            badoiu_clarkson_meb(np.zeros((5, 2)), epsilon=0.0)
        with pytest.raises(InvalidInstanceError):
            badoiu_clarkson_meb(np.zeros((0, 2)))
