"""Unit tests for the cost-accounting primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accounting import BitCostModel, CostMeter, RoundLedger


class TestBitCostModel:
    def test_default_coefficient_bits(self):
        model = BitCostModel()
        assert model.coefficients(3) == 3 * 64

    def test_custom_coefficient_bits(self):
        model = BitCostModel(bits_per_coefficient=32)
        assert model.coefficients(4) == 128

    def test_counters(self):
        model = BitCostModel(bits_per_counter=16)
        assert model.counters(5) == 80

    def test_array_counts_elements(self):
        model = BitCostModel()
        assert model.array(np.zeros((3, 4))) == 12 * 64

    def test_negative_count_rejected(self):
        model = BitCostModel()
        with pytest.raises(ValueError):
            model.coefficients(-1)
        with pytest.raises(ValueError):
            model.counters(-2)

    def test_zero_costs_nothing(self):
        model = BitCostModel()
        assert model.coefficients(0) == 0
        assert model.counters(0) == 0


class TestCostMeter:
    def test_add_accumulates_total(self):
        meter = CostMeter("bits")
        meter.add(10)
        meter.add(5)
        assert meter.total == 15

    def test_peak_tracks_maximum_level(self):
        meter = CostMeter("items")
        meter.add(10)
        meter.release(4)
        meter.add(2)
        assert meter.peak == 10
        assert meter.current == 8

    def test_set_level_updates_peak(self):
        meter = CostMeter("items")
        meter.set_level(7)
        meter.set_level(3)
        assert meter.peak == 7
        assert meter.current == 3

    def test_release_never_goes_negative(self):
        meter = CostMeter("items")
        meter.add(2)
        meter.release(10)
        assert meter.current == 0

    def test_negative_amount_rejected(self):
        meter = CostMeter("x")
        with pytest.raises(ValueError):
            meter.add(-1)
        with pytest.raises(ValueError):
            meter.release(-1)
        with pytest.raises(ValueError):
            meter.set_level(-1)

    def test_snapshot_contents(self):
        meter = CostMeter("bits")
        meter.add(42)
        snap = meter.snapshot()
        assert snap == {"name": "bits", "total": 42, "peak": 42}


class TestRoundLedger:
    def test_record_and_count_rounds(self):
        ledger = RoundLedger()
        ledger.record(bits=10)
        ledger.record(bits=20, load=5)
        assert ledger.num_rounds == 2

    def test_total_sums_key(self):
        ledger = RoundLedger()
        ledger.record(bits=10)
        ledger.record(bits=20)
        assert ledger.total("bits") == 30

    def test_total_missing_key_is_zero(self):
        ledger = RoundLedger()
        ledger.record(bits=10)
        assert ledger.total("load") == 0

    def test_maximum(self):
        ledger = RoundLedger()
        ledger.record(load=3)
        ledger.record(load=9)
        ledger.record(load=1)
        assert ledger.maximum("load") == 9

    def test_maximum_empty_is_zero(self):
        assert RoundLedger().maximum("load") == 0

    def test_as_table_is_copy(self):
        ledger = RoundLedger()
        ledger.record(bits=10)
        table = ledger.as_table()
        table[0]["bits"] = 999
        assert ledger.total("bits") == 10


class TestUsageLedger:
    def test_totals_accumulate_per_tenant(self):
        from repro.core.accounting import TenantUsage, UsageLedger

        ledger = UsageLedger()
        ledger.record("acme", outcome="done", wall_s=0.5, iterations=3,
                      communication_bits=100)
        ledger.record("acme", outcome="failed", wall_s=0.25, iterations=1,
                      communication_bits=40)
        ledger.record("tiny", outcome="done", wall_s=1.0)
        acme = ledger.totals("acme")
        assert acme.tickets == 2
        assert acme.done == 1
        assert acme.failed == 1
        assert acme.wall_s == pytest.approx(0.75)
        assert acme.iterations == 4
        assert acme.communication_bits == 140
        assert sorted(ledger.tenants()) == ["acme", "tiny"]
        # Unknown tenants read as zero usage, not an error.
        fresh = ledger.totals("nobody")
        assert isinstance(fresh, TenantUsage)
        assert fresh.tickets == 0

    def test_totals_returns_a_snapshot(self):
        from repro.core.accounting import UsageLedger

        ledger = UsageLedger()
        ledger.record("acme", outcome="done", iterations=2)
        snapshot = ledger.totals("acme")
        ledger.record("acme", outcome="done", iterations=2)
        assert snapshot.iterations == 2  # unaffected by the later record
        assert ledger.totals("acme").iterations == 4

    def test_jsonl_append(self, tmp_path):
        import json

        from repro.core.accounting import UsageLedger

        path = tmp_path / "usage.jsonl"
        ledger = UsageLedger(path)
        ledger.record("acme", outcome="done", wall_s=0.1, iterations=2,
                      communication_bits=64, ticket="t1", model="streaming")
        ledger.record("tiny", outcome="failed", ticket="t2", model="mpc")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["tenant"] == "acme"
        assert lines[0]["ticket"] == "t1"
        assert lines[0]["communication_bits"] == 64
        assert lines[1]["outcome"] == "failed"
        assert all("ts" in line for line in lines)
