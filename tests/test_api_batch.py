"""Batch layer: deterministic seeding, worker independence, aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BatchResult, solve_many
from repro.core.exceptions import InvalidConfigError
from repro.core.result import ResourceUsage
from repro.workloads import random_feasible_lp, random_polytope_lp

FAST = dict(sample_size=250, success_threshold=0.02, max_iterations=500)


def _problems(count=6, n=700):
    return [random_polytope_lp(n, 2, seed=100 + i).problem for i in range(count)]


def _fingerprint(result):
    return (
        float(result.value.objective),
        result.basis_indices,
        result.iterations,
        result.resources.passes,
        result.resources.space_peak_items,
        result.resources.rounds,
        result.resources.total_communication_bits,
    )


# --------------------------------------------------------------------------- #
# Deterministic seeding
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("model", ["sequential", "streaming"])
def test_solve_many_identical_for_any_worker_count(model):
    """Regression: per-instance rngs come from SeedSequence.spawn, so the
    results are bit-identical no matter how the work is scheduled."""
    problems = _problems()
    serial = solve_many(problems, model=model, max_workers=1, root_seed=7, **FAST)
    threaded = solve_many(problems, model=model, max_workers=4, root_seed=7, **FAST)
    assert len(serial) == len(threaded) == len(problems)
    for a, b in zip(serial, threaded):
        assert _fingerprint(a) == _fingerprint(b)


def test_solve_many_reproducible_from_root_seed():
    problems = _problems(count=3)
    first = solve_many(problems, model="sequential", root_seed=1, **FAST)
    again = solve_many(problems, model="sequential", root_seed=1, **FAST)
    for x, y in zip(first, again):
        assert _fingerprint(x) == _fingerprint(y)


def test_solve_many_config_seed_roots_the_derivation():
    """Without an explicit root_seed, an integer config seed makes the batch
    reproducible (regression: the seed used to be silently ignored)."""
    problems = _problems(count=3)
    a = solve_many(problems, model="sequential", seed=42, **FAST)
    b = solve_many(problems, model="sequential", seed=42, **FAST)
    for x, y in zip(a, b):
        assert _fingerprint(x) == _fingerprint(y)
    # an explicit root_seed wins over the config seed
    c = solve_many(problems, model="sequential", seed=42, root_seed=7, **FAST)
    d = solve_many(problems, model="sequential", root_seed=7, **FAST)
    for x, y in zip(c, d):
        assert _fingerprint(x) == _fingerprint(y)


def test_solve_many_same_instance_same_optimum():
    problem = random_feasible_lp(700, 2, seed=9).problem
    batch = solve_many(
        [problem, problem, problem], model="sequential", root_seed=3, **FAST
    )
    objectives = {round(float(r.value.objective), 9) for r in batch}
    assert len(objectives) == 1  # same instance => same optimum per run


def test_solve_many_empty_and_validation():
    batch = solve_many([], model="sequential")
    assert len(batch) == 0
    assert batch.resources_total() == ResourceUsage()
    with pytest.raises(InvalidConfigError, match="max_workers"):
        solve_many(_problems(2), model="sequential", max_workers=0)


# --------------------------------------------------------------------------- #
# BatchResult container + aggregation
# --------------------------------------------------------------------------- #


def test_batch_result_is_a_sequence():
    problems = _problems(count=3)
    batch = solve_many(problems, model="streaming", root_seed=5, **FAST)
    assert isinstance(batch, BatchResult)
    assert len(batch) == 3
    assert batch[0] is batch.results[0]
    assert [r for r in batch] == batch.results
    assert batch[1:] == batch.results[1:]
    assert batch.model == "streaming"
    summary = batch.summary()
    assert summary["instances"] == 3
    assert summary["total_passes"] == sum(r.resources.passes for r in batch)
    assert summary["peak_space_items"] == max(
        r.resources.space_peak_items for r in batch
    )


def test_batch_resource_summaries():
    problems = _problems(count=4)
    batch = solve_many(problems, model="coordinator", root_seed=11, num_sites=3, **FAST)
    total = batch.resources_total()
    peak = batch.resources_peak()
    assert total.rounds == sum(r.resources.rounds for r in batch)
    assert total.total_communication_bits == sum(
        r.resources.total_communication_bits for r in batch
    )
    assert peak.rounds == max(r.resources.rounds for r in batch)
    assert total.max_message_bits == peak.max_message_bits  # peaks never sum


# --------------------------------------------------------------------------- #
# ResourceUsage.aggregate
# --------------------------------------------------------------------------- #


def _usage(scale):
    return ResourceUsage(
        passes=2 * scale,
        space_peak_items=10 * scale,
        space_peak_bits=100 * scale,
        rounds=3 * scale,
        total_communication_bits=1000 * scale,
        max_message_bits=50 * scale,
        max_machine_load_bits=70 * scale,
        machine_count=4 * scale,
    )


def test_aggregate_sum_mode():
    merged = ResourceUsage.aggregate([_usage(1), _usage(2)], mode="sum")
    assert merged.passes == 6
    assert merged.space_peak_items == 30
    assert merged.space_peak_bits == 300
    assert merged.rounds == 9
    assert merged.total_communication_bits == 3000
    assert merged.machine_count == 12
    # per-message / per-machine peaks aggregate by max even in sum mode
    assert merged.max_message_bits == 100
    assert merged.max_machine_load_bits == 140


def test_aggregate_max_mode():
    merged = ResourceUsage.aggregate([_usage(1), _usage(3), _usage(2)], mode="max")
    assert merged.passes == 6
    assert merged.space_peak_items == 30
    assert merged.rounds == 9
    assert merged.total_communication_bits == 3000
    assert merged.max_message_bits == 150
    assert merged.max_machine_load_bits == 210
    assert merged.machine_count == 12


def test_aggregate_empty_and_invalid_mode():
    assert ResourceUsage.aggregate([], mode="sum") == ResourceUsage()
    assert ResourceUsage.aggregate([], mode="max") == ResourceUsage()
    with pytest.raises(ValueError, match="mode"):
        ResourceUsage.aggregate([_usage(1)], mode="median")


def test_merge_max_shim_matches_aggregate():
    left = _usage(1)
    right = _usage(2)
    expected = ResourceUsage.aggregate([left, right], mode="max")
    left.merge_max(right)
    assert left == expected


def test_derived_seeds_are_position_stable():
    from repro.api.batch import derive_instance_seeds

    five = derive_instance_seeds(17, 5)
    three = derive_instance_seeds(17, 3)
    for a, b in zip(three, five):
        assert np.random.default_rng(a).integers(1 << 30) == np.random.default_rng(
            b
        ).integers(1 << 30)
    assert derive_instance_seeds(17, 0) == []
