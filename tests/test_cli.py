"""The ``python -m repro`` command-line entry point."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main


def test_list_shows_models_and_problems(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "streaming" in out
    assert "linear_program" in out
    assert "warm_restart" in out  # session capabilities are surfaced


def test_list_models_only(capsys):
    assert main(["list", "models"]) == 0
    out = capsys.readouterr().out
    assert "models:" in out
    assert "problems:" not in out


def test_solve_prints_a_summary(capsys):
    code = main(
        [
            "solve",
            "--problem",
            "lp",
            "--model",
            "sequential",
            "--n",
            "500",
            "--d",
            "2",
            "--seed",
            "1",
            "--set",
            "sample_size=200",
            "--set",
            "success_threshold=0.02",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "value" in out
    assert "iterations" in out


@pytest.mark.parametrize("family", ("meb", "svm", "qp"))
def test_solve_covers_every_problem_family(capsys, family):
    code = main(
        [
            "solve",
            "--problem",
            family,
            "--model",
            "sequential",
            "--n",
            "400",
            "--d",
            "2",
            "--practical",
        ]
    )
    assert code == 0
    assert "value" in capsys.readouterr().out


def test_solve_json_emits_the_wire_form(capsys):
    code = main(
        ["solve", "--n", "400", "--d", "2", "--practical", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-result/1"
    assert payload["basis_indices"]
    assert "communication" in payload


def test_solve_rejects_malformed_set(capsys):
    with pytest.raises(SystemExit):
        main(["solve", "--set", "not-a-pair"])


def test_bench_wraps_run_suite(tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    code = main(
        [
            "bench",
            "--tier",
            "small",
            "--repeats",
            "1",
            "--models",
            "sequential",
            "--problems",
            "lp",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["scenarios"][0]["id"] == "lp:sequential:small"


def test_serve_parser_accepts_all_flags(tmp_path):
    from repro.api.cli import build_parser

    tenants = tmp_path / "tenants.json"
    tenants.write_text('{"secret": {"tenant": "acme", "max_concurrent": 2}}')
    args = build_parser().parse_args(
        [
            "serve",
            "--host", "0.0.0.0",
            "--port", "0",
            "--model", "coordinator",
            "--workers", "4",
            "--tenants", str(tenants),
            "--no-anonymous",
            "--usage-log", str(tmp_path / "usage.jsonl"),
            "--set", "num_sites=3",
            "--set", "seed=7",
        ]
    )
    assert args.host == "0.0.0.0"
    assert args.port == 0
    assert args.model == "coordinator"
    assert args.workers == 4
    assert args.anonymous is False
    assert args.set == ["num_sites=3", "seed=7"]


def test_serve_defaults_to_anonymous_none():
    from repro.api.cli import build_parser

    args = build_parser().parse_args(["serve"])
    assert args.anonymous is None
    assert args.port == 8731
    assert args.model == "streaming"


def test_serve_drains_cleanly_on_sigterm(tmp_path):
    """``repro serve`` treats SIGTERM like SIGINT: drain, then exit 0."""
    import os
    import signal
    import subprocess
    import sys
    import time
    from pathlib import Path

    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--set", "seed=0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, line
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
    except BaseException:
        proc.kill()
        proc.wait(timeout=10)
        raise
    assert proc.returncode == 0, out
    assert "draining" in out


def test_node_parser_accepts_connect_name_and_set():
    from repro.api.cli import build_parser

    args = build_parser().parse_args(
        [
            "node",
            "--connect", "coordinator.internal:8731",
            "--name", "rack3-agent",
            "--set", "heartbeat_interval_s=0.25",
        ]
    )
    assert args.connect == "coordinator.internal:8731"
    assert args.listen is None
    assert args.name == "rack3-agent"
    assert args.set == ["heartbeat_interval_s=0.25"]


def test_node_parser_accepts_listen():
    from repro.api.cli import build_parser

    args = build_parser().parse_args(["node", "--listen", "0.0.0.0:9000"])
    assert args.listen == "0.0.0.0:9000"
    assert args.connect is None


def test_node_requires_exactly_one_peer_mode(capsys):
    from repro.api.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["node"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["node", "--connect", "a:1", "--listen", "b:2"]
        )


def test_node_rejects_unknown_set_key():
    with pytest.raises(SystemExit, match="bogus"):
        main(["node", "--connect", "127.0.0.1:1", "--set", "bogus=1"])


def test_node_rejects_malformed_address():
    with pytest.raises(SystemExit, match="HOST:PORT"):
        main(["node", "--connect", "nocolon"])
