"""Tests for the baseline algorithms and the Chan-Chen-style 2-d streaming LP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    EnvelopeLP,
    chan_chen_2d_streaming,
    chan_chen_pass_count,
    clarkson_classic_reweighting,
    clarkson_pass_count,
    exact_in_memory,
    ship_all_coordinator,
    single_pass_full_memory_streaming,
)
from repro.core.exceptions import InvalidInstanceError
from repro.workloads import random_feasible_lp, random_polytope_lp

from tests.conftest import assert_objective_close


class TestExactInMemory:
    def test_matches_problem_solve(self):
        problem = random_feasible_lp(200, 2, seed=0).problem
        result = exact_in_memory(problem)
        assert_objective_close(result.value, problem.solve().value)
        assert result.metadata["algorithm"] == "exact_in_memory"


class TestSinglePassBaseline:
    def test_costs_and_correctness(self):
        problem = random_feasible_lp(300, 2, seed=1).problem
        result = single_pass_full_memory_streaming(problem)
        assert result.resources.passes == 1
        assert result.resources.space_peak_items == 300
        assert_objective_close(result.value, problem.solve().value)


class TestShipAllBaseline:
    def test_costs_and_correctness(self):
        problem = random_feasible_lp(400, 2, seed=2).problem
        result = ship_all_coordinator(problem, num_sites=4)
        assert result.resources.rounds == 1
        # Every constraint crosses the network exactly once.
        expected_bits = 400 * problem.payload_num_coefficients() * 64
        assert result.resources.total_communication_bits >= expected_bits
        assert_objective_close(result.value, problem.solve().value)


class TestClassicReweighting:
    def test_correct_and_slower_than_paper_boost(self):
        instance = random_polytope_lp(1500, 2, seed=3)
        result = clarkson_classic_reweighting(instance.problem, r=2, rng=0, sample_scale=1.0)
        assert_objective_close(result.value, instance.problem.solve().value)
        assert result.metadata["algorithm"] == "clarkson_classic_reweighting"


class TestPassCountModels:
    def test_chan_chen_exponential_in_d(self):
        assert chan_chen_pass_count(2, 4) == 4
        assert chan_chen_pass_count(5, 4) == 4 ** 4
        assert chan_chen_pass_count(1, 7) == 1

    def test_clarkson_linear_in_d(self):
        assert clarkson_pass_count(2, 4) == 2 * 3 * 4 + 1
        assert clarkson_pass_count(5, 4) == 2 * 6 * 4 + 1

    def test_crossover(self):
        """For d >= 4 and r >= 4 the baseline needs more passes than the paper's algorithm."""
        for d in range(4, 9):
            assert chan_chen_pass_count(d, 4) > clarkson_pass_count(d, 4)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chan_chen_pass_count(0, 2)
        with pytest.raises(ValueError):
            clarkson_pass_count(2, 0)


class TestEnvelopeLP:
    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            EnvelopeLP(slopes=[1.0], intercepts=[1.0, 2.0], x_low=0.0, x_high=1.0)
        with pytest.raises(InvalidInstanceError):
            EnvelopeLP(slopes=[1.0], intercepts=[1.0], x_low=2.0, x_high=1.0)

    def test_envelope_at(self):
        lp = EnvelopeLP(slopes=[1.0, -1.0], intercepts=[0.0, 4.0], x_low=0.0, x_high=4.0)
        assert lp.envelope_at(0.0) == pytest.approx(4.0)
        assert lp.envelope_at(2.0) == pytest.approx(2.0)


class TestChanChen2D:
    @staticmethod
    def _v_instance(num_lines=101, seed=0):
        """Lines tangent to the parabola y = x^2: the envelope minimum is ~0 at x ~ 0."""
        rng = np.random.default_rng(seed)
        touch = rng.uniform(-5.0, 5.0, size=num_lines)
        slopes = 2.0 * touch
        intercepts = -(touch ** 2)
        return EnvelopeLP(slopes=slopes, intercepts=intercepts, x_low=-6.0, x_high=6.0)

    def _reference_minimum(self, lp):
        grid = np.linspace(lp.x_low, lp.x_high, 20001)
        values = np.max(np.outer(lp.slopes, grid) + lp.intercepts[:, None], axis=0)
        return float(values.min())

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_matches_reference_minimum(self, r):
        lp = self._v_instance(seed=r)
        reference = self._reference_minimum(lp)
        result = chan_chen_2d_streaming(lp, r=r)
        assert result.value == pytest.approx(reference, abs=1e-3)

    def test_pass_count_is_r_plus_one(self):
        lp = self._v_instance()
        result = chan_chen_2d_streaming(lp, r=3)
        assert result.resources.passes == 4

    def test_space_shrinks_with_more_passes(self):
        lp = self._v_instance(num_lines=2001, seed=5)
        few_passes = chan_chen_2d_streaming(lp, r=1)
        many_passes = chan_chen_2d_streaming(lp, r=4)
        assert many_passes.resources.space_peak_items < few_passes.resources.space_peak_items

    def test_empty_instance_rejected(self):
        lp = EnvelopeLP(slopes=np.zeros(0), intercepts=np.zeros(0), x_low=0.0, x_high=1.0)
        with pytest.raises(InvalidInstanceError):
            chan_chen_2d_streaming(lp, r=2)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            chan_chen_2d_streaming(self._v_instance(), r=0)
