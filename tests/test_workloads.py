"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems.solvers import solve_lp
from repro.workloads import (
    blocked_order,
    chebyshev_regression_lp,
    clustered_points,
    degenerate_lp,
    identity_order,
    infeasible_lp,
    linear_separability_lp,
    make_regression_data,
    make_separable_classification,
    random_feasible_lp,
    random_order,
    random_polytope_lp,
    sorted_by_tightness_order,
    sphere_surface_points,
    uniform_ball_points,
)


class TestLPInstances:
    def test_random_feasible_interior_point_is_strictly_feasible(self):
        instance = random_feasible_lp(500, 3, seed=0)
        slack = instance.problem.b - instance.problem.a @ instance.interior_point
        assert np.all(slack > 0)

    def test_random_polytope_contains_origin(self):
        instance = random_polytope_lp(300, 2, seed=1)
        assert instance.problem.is_feasible(np.zeros(2))

    def test_degenerate_optimum_at_shared_vertex(self):
        instance = degenerate_lp(100, 3, seed=2)
        result = instance.problem.solve()
        assert np.allclose(result.witness, np.ones(3), atol=1e-5)

    def test_infeasible_instance_is_infeasible(self):
        instance = infeasible_lp(dimension=2)
        assert instance.problem.solve().value.infeasible

    def test_metadata_recorded(self):
        instance = random_feasible_lp(50, 2, seed=3)
        assert instance.metadata["kind"] == "random_feasible"
        assert instance.metadata["n"] == 50

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_feasible_lp(0, 2)
        with pytest.raises(ValueError):
            random_feasible_lp(10, 0)


class TestRegressionWorkloads:
    def test_data_shapes(self):
        data = make_regression_data(200, 4, seed=0)
        assert data.features.shape == (200, 4)
        assert data.targets.shape == (200,)
        assert data.true_weights.shape == (4,)

    def test_chebyshev_lp_dimensions(self):
        data = make_regression_data(150, 3, seed=1)
        lp = chebyshev_regression_lp(data)
        assert lp.dimension == 4  # weights + max residual
        assert lp.num_constraints == 300

    def test_chebyshev_lp_recovers_weights_with_bounded_noise(self):
        data = make_regression_data(400, 2, seed=2, noise_scale=0.05)
        lp = chebyshev_regression_lp(data)
        result = lp.solve()
        recovered = np.array(result.witness[:2])
        assert np.allclose(recovered, data.true_weights, atol=0.1)
        # The optimal maximum residual is at most the noise level.
        assert result.witness[2] <= 0.05 + 1e-6

    def test_chebyshev_objective_matches_direct_lp(self):
        data = make_regression_data(100, 2, seed=3)
        lp = chebyshev_regression_lp(data)
        direct = solve_lp(lp.c, a_ub=lp.a, b_ub=lp.b, bounds=(-lp.box_bound, lp.box_bound))
        assert lp.solve().value.objective == pytest.approx(direct.objective, abs=1e-6)

    def test_outliers_increase_linf_error(self):
        clean = make_regression_data(200, 2, seed=4, noise_scale=0.05)
        noisy = make_regression_data(200, 2, seed=4, noise_scale=0.05, outlier_fraction=0.05)
        clean_err = chebyshev_regression_lp(clean).solve().value.objective
        noisy_err = chebyshev_regression_lp(noisy).solve().value.objective
        assert noisy_err > clean_err

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_regression_data(0, 2)


class TestClassificationWorkloads:
    def test_labels_and_margin(self):
        data = make_separable_classification(300, 3, seed=0, margin=0.7)
        assert set(np.unique(data.labels)) == {-1.0, 1.0}
        margins = data.labels * (data.points @ data.true_direction)
        assert np.all(margins >= 0.7 - 1e-9)

    def test_both_classes_present(self):
        data = make_separable_classification(10, 2, seed=1)
        assert (data.labels == 1.0).any() and (data.labels == -1.0).any()

    def test_separability_lp_positive_margin(self):
        data = make_separable_classification(200, 2, seed=2, margin=0.5)
        lp = linear_separability_lp(data)
        result = lp.solve()
        # The objective is -delta; separable data means delta > 0.
        assert result.value.objective < -1e-6

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_separable_classification(1, 2)
        with pytest.raises(ValueError):
            make_separable_classification(10, 2, margin=0.0)


class TestGeometryClouds:
    def test_uniform_ball_radius_bound(self):
        pts = uniform_ball_points(500, 3, radius=2.0, seed=0)
        assert np.all(np.linalg.norm(pts, axis=1) <= 2.0 + 1e-9)

    def test_sphere_surface_exact_radius(self):
        pts = sphere_surface_points(200, 4, radius=3.0, seed=1)
        assert np.allclose(np.linalg.norm(pts, axis=1), 3.0)

    def test_center_offset(self):
        center = np.array([5.0, -2.0])
        pts = uniform_ball_points(300, 2, radius=1.0, center=center, seed=2)
        assert np.all(np.linalg.norm(pts - center, axis=1) <= 1.0 + 1e-9)

    def test_clustered_shape(self):
        pts = clustered_points(100, 5, num_clusters=4, seed=3)
        assert pts.shape == (100, 5)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            uniform_ball_points(0, 2)
        with pytest.raises(ValueError):
            clustered_points(10, 2, num_clusters=0)


class TestStreamOrders:
    def test_identity(self):
        assert identity_order(5).tolist() == [0, 1, 2, 3, 4]

    def test_random_is_permutation(self):
        order = random_order(100, seed=0)
        assert sorted(order.tolist()) == list(range(100))

    def test_tightness_order(self):
        a = np.array([[1.0, 0.0], [1.0, 0.0]])
        b = np.array([10.0, 1.0])
        order = sorted_by_tightness_order(a, b, np.zeros(2), descending=True)
        assert order.tolist() == [0, 1]  # the slack-10 constraint first
        ascending = sorted_by_tightness_order(a, b, np.zeros(2), descending=False)
        assert ascending.tolist() == [1, 0]

    def test_blocked_order_is_permutation(self):
        order = blocked_order(100, 7, seed=1)
        assert sorted(order.tolist()) == list(range(100))

    def test_blocked_order_invalid(self):
        with pytest.raises(ValueError):
            blocked_order(10, 0)

    def test_identity_invalid(self):
        with pytest.raises(ValueError):
            identity_order(-1)
