"""Cross-transport determinism: process workers are bit-identical to in-process.

Every distributed model (streaming, coordinator, MPC) crossed with every
problem family (LP, MEB, SVM, QP) is solved twice — on the default
:class:`~repro.fabric.transport.InProcessTransport` and on the
:class:`~repro.fabric.transport.ProcessPoolTransport` (real worker
processes) — and the two runs must agree *bit for bit*: same value, same
witness bytes, same iteration story, and the same communication ledger.

The process runs share one module-level worker pool (``reuse_pool=True``,
the default), which also exercises the session namespacing that
``solve_many(max_workers > 1)`` relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TransportConfig, solve, solve_many
from repro.api.config import SolverConfig
from repro.core.exceptions import InvalidConfigError
from repro.fabric.transport import InProcessTransport, ProcessPoolTransport
from repro.problems import MinimumEnclosingBall
from repro.workloads import (
    make_separable_classification,
    random_feasible_lp,
    svm_problem,
    uniform_ball_points,
)

MODELS = ("streaming", "coordinator", "mpc")
PROBLEMS = ("lp", "meb", "svm", "qp")

#: Small instances keep the grid fast; the iterative path is still exercised
#: because the explicit sample size stays below n.
N = 400

PROCESS = TransportConfig(kind="process", max_workers=2)


def _build_problem(family: str):
    if family == "lp":
        return random_feasible_lp(N, 2, seed=3).problem
    if family == "meb":
        return MinimumEnclosingBall(uniform_ball_points(N, 2, seed=4))
    if family == "svm":
        return svm_problem(make_separable_classification(N, 2, seed=5, margin=0.3))
    if family == "qp":
        from repro.problems.qp import ConvexQuadraticProgram

        rng = np.random.default_rng(6)
        normals = rng.normal(size=(N, 2))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        h = normals @ rng.uniform(-0.5, 0.5, size=2) - rng.uniform(0.1, 1.0, size=N)
        return ConvexQuadraticProgram(
            np.diag([1.0, 2.0]), rng.normal(size=2), normals, h
        )
    raise ValueError(family)


def _model_overrides(model: str) -> dict:
    if model == "coordinator":
        return {"num_sites": 3}
    if model == "mpc":
        return {"delta": 0.5, "num_machines": 4}
    return {}


def _solve(problem, model, transport):
    kwargs = _model_overrides(model)
    if transport is not None:
        kwargs["transport"] = transport
    return solve(
        problem,
        model=model,
        seed=11,
        sample_size=60,
        success_threshold=0.05,
        max_iterations=300,
        keep_trace=True,
        **kwargs,
    )


def _witness_bytes(witness):
    try:
        return np.asarray(witness, dtype=float).tobytes()
    except (TypeError, ValueError):
        import pickle

        return pickle.dumps(witness)


def assert_bit_identical(a, b):
    assert a.value == b.value
    assert _witness_bytes(a.witness) == _witness_bytes(b.witness)
    assert a.basis_indices == b.basis_indices
    assert a.iterations == b.iterations
    assert a.successful_iterations == b.successful_iterations
    assert [
        (t.sample_size, t.num_violators, t.violator_weight_fraction, t.successful)
        for t in a.trace
    ] == [
        (t.sample_size, t.num_violators, t.violator_weight_fraction, t.successful)
        for t in b.trace
    ]
    # Identical ledgers: round for round, bit for bit.
    assert a.resources.per_round == b.resources.per_round
    assert a.resources.rounds == b.resources.rounds
    assert a.resources.passes == b.resources.passes
    assert a.resources.total_communication_bits == b.resources.total_communication_bits
    assert a.resources.max_message_bits == b.resources.max_message_bits
    assert a.resources.max_machine_load_bits == b.resources.max_machine_load_bits
    assert a.resources.oracle_calls == b.resources.oracle_calls


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("family", PROBLEMS)
def test_process_transport_is_bit_identical(model, family):
    problem = _build_problem(family)
    inproc = _solve(problem, model, None)
    process = _solve(problem, model, PROCESS)
    assert inproc.metadata["transport"] == "inprocess"
    assert process.metadata["transport"] == "process"
    assert_bit_identical(inproc, process)


@pytest.mark.parametrize("supervised", (False, True), ids=("pool", "supervised"))
@pytest.mark.parametrize("family", PROBLEMS)
def test_shared_memory_axis_is_bit_identical(family, supervised):
    """Zero-copy shipping must be invisible to results: shm on == shm off ==
    in-process, on both the bare pool and the supervised pool."""
    problem = _build_problem(family)
    inproc = _solve(problem, "coordinator", None)
    shm_on = _solve(
        problem,
        "coordinator",
        TransportConfig(
            kind="process", max_workers=2, supervised=supervised, shared_memory=True
        ),
    )
    shm_off = _solve(
        problem,
        "coordinator",
        TransportConfig(
            kind="process", max_workers=2, supervised=supervised, shared_memory=False
        ),
    )
    assert_bit_identical(inproc, shm_on)
    assert_bit_identical(inproc, shm_off)


@pytest.mark.parametrize("model", ("coordinator", "mpc"))
def test_solve_many_parallel_batches_are_transport_independent(model):
    problems = [random_feasible_lp(200, 2, seed=s).problem for s in range(4)]
    kwargs = dict(
        model=model,
        root_seed=9,
        sample_size=50,
        success_threshold=0.05,
        max_iterations=300,
        **_model_overrides(model),
    )
    serial = solve_many(problems, max_workers=1, **kwargs)
    threaded_process = solve_many(
        problems, max_workers=3, transport=PROCESS, **kwargs
    )
    for a, b in zip(serial, threaded_process):
        assert_bit_identical(a, b)


class TestTransportConfigValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidConfigError, match="kind"):
            TransportConfig(kind="carrier-pigeon")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(InvalidConfigError, match="max_workers"):
            TransportConfig(kind="process", max_workers=0)

    def test_transport_is_a_config_key(self):
        config = SolverConfig(seed=0)
        assert not hasattr(config, "transport")  # base config stays lean
        from repro import describe_model

        for model in MODELS:
            assert "transport" in describe_model(model)["config_keys"]
            assert describe_model(model)["transports"] == [
                "inprocess",
                "process",
                "tcp",
            ]
        assert describe_model("sequential")["transports"] == ["inprocess"]


class TestTransportPrimitives:
    def test_inprocess_state_isolation_per_session(self):
        transport = InProcessTransport()
        transport.init_node("a", 0, {"v": 1})
        transport.init_node("b", 0, {"v": 2})

        def bump(state):
            state["v"] += 10
            return state, state["v"]

        assert transport.run_node("a", 0, bump) == 11
        assert transport.run_node("b", 0, bump) == 12
        transport.release("a")
        with pytest.raises(KeyError):
            transport.run_node("a", 0, bump)

    def test_process_pool_round_trips_state(self):
        transport = ProcessPoolTransport(max_workers=2)
        try:
            for node in range(3):
                transport.init_node("s", node, {"count": node})
            results = transport.run_nodes(
                "s", [0, 1, 2], _increment_task, [(5,), (5,), (5,)]
            )
            assert results == [5, 6, 7]
            # State persisted worker-side between calls.
            results = transport.run_nodes(
                "s", [0, 1, 2], _increment_task, [(1,), (1,), (1,)]
            )
            assert results == [6, 7, 8]
        finally:
            transport.close()

    def test_worker_errors_surface(self):
        from repro.core.exceptions import CommunicationError

        transport = ProcessPoolTransport(max_workers=1)
        try:
            transport.init_node("s", 0, {})
            with pytest.raises(CommunicationError, match="boom"):
                transport.run_node("s", 0, _failing_task)
        finally:
            transport.close()


def _increment_task(state, amount):
    value = state["count"] + amount
    state["count"] = value
    return state, value


def _failing_task(state):
    raise RuntimeError("boom")


class TestPrivatePoolLifecycle:
    def test_private_pool_is_closed_by_the_topology(self):
        from repro.core.exceptions import CommunicationError
        from repro.fabric.topology import StarTopology
        from repro.fabric.transport import resolve_transport

        transport = resolve_transport(
            TransportConfig(kind="process", max_workers=1, reuse_pool=False)
        )
        assert transport.private
        topology = StarTopology(2, transport=transport)
        topology.init_state(0, {"count": 0})
        topology.init_state(1, {"count": 0})
        assert topology.run_all(_increment_task, [(1,), (2,)]) == [1, 2]
        topology.close()
        with pytest.raises(CommunicationError, match="closed"):
            transport.init_node("another", 0, {})

    def test_shared_pool_survives_a_run(self):
        from repro.fabric.transport import resolve_transport, shared_process_transport

        config = TransportConfig(kind="process", max_workers=2)
        transport = resolve_transport(config)
        assert not transport.private
        assert transport is shared_process_transport(2)

    def test_solve_with_dedicated_pool(self):
        problem = random_feasible_lp(200, 2, seed=8).problem
        dedicated = TransportConfig(kind="process", max_workers=1, reuse_pool=False)
        a = solve(problem, model="coordinator", num_sites=2, seed=5,
                  sample_size=50, success_threshold=0.05, transport=dedicated)
        b = solve(problem, model="coordinator", num_sites=2, seed=5,
                  sample_size=50, success_threshold=0.05)
        assert_bit_identical(a, b)


def _maybe_fail_task(state, should_fail):
    if should_fail:
        raise RuntimeError("deliberate batch failure")
    return state, ("ok", state["tag"])


class TestPoolStaysUsableAfterErrors:
    def test_failed_batch_does_not_desync_other_workers(self):
        """A failing node must not leave stale replies in sibling workers'
        pipes: the next batch on the same (shared) pool must see fresh
        results, not the previous batch's."""
        from repro.core.exceptions import CommunicationError

        transport = ProcessPoolTransport(max_workers=2)
        try:
            transport.init_node("s", 0, {"tag": "w0"})
            transport.init_node("s", 1, {"tag": "w1"})
            with pytest.raises(CommunicationError, match="deliberate"):
                transport.run_nodes(
                    "s", [0, 1], _maybe_fail_task, [(True,), (False,)]
                )
            # Both workers answer the *new* request, not the old one.
            results = transport.run_nodes(
                "s", [0, 1], _maybe_fail_task, [(False,), (False,)]
            )
            assert results == [("ok", "w0"), ("ok", "w1")]
        finally:
            transport.close()
