"""Tests for the LP-type formulation of linear programming (Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidInstanceError
from repro.core.lptype import check_locality, check_monotonicity
from repro.problems.linear_program import LexicographicValue, LinearProgram
from repro.workloads import degenerate_lp, infeasible_lp, random_feasible_lp


class TestLexicographicValue:
    def test_equality_with_tolerance(self):
        a = LexicographicValue(objective=1.0, coordinates=(0.5, 0.5))
        b = LexicographicValue(objective=1.0 + 1e-9, coordinates=(0.5, 0.5 + 1e-9))
        assert a == b

    def test_objective_order_dominates(self):
        low = LexicographicValue(objective=1.0, coordinates=(9.0,))
        high = LexicographicValue(objective=2.0, coordinates=(0.0,))
        assert low < high
        assert not high < low

    def test_coordinate_tiebreak(self):
        a = LexicographicValue(objective=1.0, coordinates=(0.0, 5.0))
        b = LexicographicValue(objective=1.0, coordinates=(1.0, 0.0))
        assert a < b

    def test_infeasible_is_top(self):
        finite = LexicographicValue(objective=100.0, coordinates=(1.0,))
        top = LexicographicValue(objective=float("inf"), coordinates=(), infeasible=True)
        assert finite < top
        assert not top < finite
        assert top == LexicographicValue(objective=float("inf"), coordinates=(), infeasible=True)

    def test_total_ordering_helpers(self):
        a = LexicographicValue(objective=1.0, coordinates=(0.0,))
        b = LexicographicValue(objective=2.0, coordinates=(0.0,))
        assert a <= b and a < b and b > a and b >= a


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(InvalidInstanceError):
            LinearProgram(c=[1.0, 2.0], a=[[1.0]], b=[1.0])
        with pytest.raises(InvalidInstanceError):
            LinearProgram(c=[1.0], a=[[1.0], [2.0]], b=[1.0])
        with pytest.raises(InvalidInstanceError):
            LinearProgram(c=[1.0], a=[[1.0]], b=[1.0], box_bound=-5.0)
        with pytest.raises(InvalidInstanceError):
            LinearProgram(c=[1.0], a=[[1.0]], b=[1.0], solver="unknown")

    def test_metadata(self):
        problem = random_feasible_lp(50, 3, seed=0).problem
        assert problem.num_constraints == 50
        assert problem.dimension == 3
        assert problem.combinatorial_dimension == 4
        assert problem.vc_dimension == 4
        assert problem.bit_size() == 4 * 64
        assert problem.payload_num_coefficients() == 4

    def test_constraint_payload(self):
        problem = random_feasible_lp(10, 2, seed=0).problem
        row, rhs = problem.constraint_payload(3)
        assert np.allclose(row, problem.a[3])
        assert rhs == pytest.approx(problem.b[3])


class TestSolveSubset:
    def test_empty_subset_hits_box_corner(self):
        problem = LinearProgram(c=[1.0, 1.0], a=[[1.0, 0.0]], b=[5.0], box_bound=10.0)
        result = problem.solve_subset([])
        assert result.value.objective == pytest.approx(-20.0)
        assert result.indices == ()

    def test_full_solve_is_feasible_and_optimal(self):
        instance = random_feasible_lp(300, 2, seed=1)
        result = instance.problem.solve()
        assert instance.problem.is_feasible(result.witness)
        # The known interior point is feasible, so the optimum is at most as large.
        interior_value = instance.problem.objective_at(instance.interior_point)
        assert result.value.objective <= interior_value + 1e-7

    def test_subset_solution_monotone_in_constraints(self):
        problem = random_feasible_lp(100, 2, seed=2).problem
        small = problem.solve_subset(range(10)).value
        large = problem.solve_subset(range(100)).value
        assert not large < small

    def test_basis_within_combinatorial_dimension(self):
        problem = random_feasible_lp(500, 3, seed=3).problem
        result = problem.solve()
        assert len(result.indices) <= problem.combinatorial_dimension
        # The basis alone yields the same optimum.
        basis_only = problem.solve_subset(result.indices)
        assert basis_only.value == result.value

    def test_degenerate_instance_basis_capped(self):
        problem = degenerate_lp(200, 3, seed=4).problem
        result = problem.solve()
        assert len(result.indices) <= problem.combinatorial_dimension
        assert result.value.objective == pytest.approx(-3.0, abs=1e-5)

    def test_infeasible_subset_value_is_top(self):
        problem = infeasible_lp(dimension=2).problem
        result = problem.solve()
        assert result.value.infeasible
        assert result.witness is None

    def test_seidel_backend_agrees(self):
        highs = random_feasible_lp(150, 2, seed=5, solver="highs").problem
        seidel = random_feasible_lp(150, 2, seed=5, solver="seidel", lexicographic=False).problem
        assert highs.solve().value.objective == pytest.approx(
            seidel.solve().value.objective, rel=1e-5, abs=1e-5
        )


class TestViolationTests:
    def test_violates_matches_constraint_arithmetic(self):
        problem = random_feasible_lp(100, 2, seed=6).problem
        point = np.array([100.0, -50.0])
        for index in range(0, 100, 7):
            manual = float(problem.a[index] @ point - problem.b[index]) > 1e-5
            assert problem.violates(point, index) == manual

    def test_violating_indices_vectorised_matches_scalar(self):
        problem = random_feasible_lp(200, 3, seed=7).problem
        point = np.array([2.0, -2.0, 2.0])
        vectorised = set(problem.violating_indices(point, range(200)).tolist())
        scalar = {i for i in range(200) if problem.violates(point, i)}
        assert vectorised == scalar

    def test_optimum_violates_nothing(self):
        problem = random_feasible_lp(300, 2, seed=8).problem
        result = problem.solve()
        assert problem.violating_indices(result.witness, problem.all_indices()).size == 0

    def test_none_witness_violates_nothing(self):
        problem = random_feasible_lp(10, 2, seed=9).problem
        assert not problem.violates(None, 0)
        assert problem.violating_indices(None, range(10)).size == 0


class TestLPTypeAxioms:
    """Monotonicity and locality of the induced set function f."""

    @pytest.mark.parametrize("seed", range(5))
    def test_monotonicity_random_subsets(self, seed):
        problem = random_feasible_lp(40, 2, seed=seed).problem
        rng = np.random.default_rng(seed)
        large = sorted(rng.choice(40, size=20, replace=False).tolist())
        small = sorted(rng.choice(large, size=8, replace=False).tolist())
        assert check_monotonicity(problem, small, large)

    @pytest.mark.parametrize("seed", range(5))
    def test_locality_random_subsets(self, seed):
        problem = random_feasible_lp(40, 2, seed=seed + 100).problem
        rng = np.random.default_rng(seed)
        large = sorted(rng.choice(40, size=15, replace=False).tolist())
        small = sorted(rng.choice(large, size=6, replace=False).tolist())
        extra = int(rng.integers(0, 40))
        assert check_locality(problem, small, large, extra)

    def test_monotonicity_validates_subset_relation(self):
        problem = random_feasible_lp(10, 2, seed=0).problem
        with pytest.raises(ValueError):
            check_monotonicity(problem, [1, 2], [2, 3])


class TestRestrict:
    def test_restrict_preserves_solution_structure(self):
        problem = random_feasible_lp(100, 2, seed=10).problem
        subset = list(range(0, 100, 2))
        restricted = problem.restrict(subset)
        assert restricted.num_constraints == 50
        direct = problem.solve_subset(subset)
        assert restricted.solve().value.objective == pytest.approx(
            direct.value.objective, abs=1e-6
        )
