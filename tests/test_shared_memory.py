"""Zero-copy data plane: SharedPackStore, the wire codec, and leak surfaces.

Three layers are pinned here:

* **Store unit tests** — export/attach round-trips (views are read-only,
  aliasing survives, small objects opt out), owner refcounting, and
  deterministic unlink when the owner set drains.
* **Wire codec unit tests** — bit-exact round-trips for the hot wire
  vocabulary, NumPy scalar-*type* preservation, and the pickle fallback
  (including ``loads`` accepting raw pickles, which journal replay needs).
* **Leak surface** — ``/dev/shm`` must hold no ``repro_shm_*`` segment
  after session close, worker SIGKILL + heal, or degrade-to-in-process;
  and a supervised crash-replay with shared memory on stays bit-identical.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import TransportConfig, solve
from repro.api.session import Session
from repro.fabric import shm, wirecodec
from repro.fabric.payload import Scalar
from repro.fabric.transport import ProcessPoolTransport
from repro.problems import LinearProgram
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.workloads import random_feasible_lp

from test_fabric_transports import assert_bit_identical

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_supported(), reason="no working POSIX shared memory"
)

N = 400
SOLVE_KWARGS = dict(
    seed=11, sample_size=60, success_threshold=0.05, max_iterations=300
)


def _assert_no_leaks():
    assert shm.leaked_segments() == []


def _big_lp(n=2000, d=3, seed=2):
    return random_feasible_lp(n, d, seed=seed).problem


# ---------------------------------------------------------------------- #
# SharedPackStore
# ---------------------------------------------------------------------- #


class TestSharedPackStore:
    def test_export_attach_round_trip_is_bit_exact(self):
        problem = _big_lp()
        shipped = shm.store().export(problem, owner="t1")
        try:
            assert isinstance(shipped, shm.ShippedObject)
            # The handle's pickle is tiny: arrays live in the segment.
            assert len(pickle.dumps(shipped)) < problem.a.nbytes
            clone = pickle.loads(pickle.dumps(shipped))
            assert np.array_equal(clone.a, problem.a)
            assert np.array_equal(clone.b, problem.b)
            assert clone.a.tobytes() == problem.a.tobytes()
        finally:
            shm.store().release_owner("t1")
        _assert_no_leaks()

    def test_attached_views_are_read_only(self):
        problem = _big_lp()
        shipped = shm.store().export(problem, owner="t2")
        try:
            clone = shipped.materialize()
            assert clone.a.flags.writeable is False
            with pytest.raises(ValueError):
                clone.a[0, 0] = 1.0
        finally:
            shm.store().release_owner("t2")
        _assert_no_leaks()

    def test_array_aliasing_survives_the_wire(self):
        # LinearProgram's pack rows *are* problem.a; both references must
        # come back as the same shared view, not two copies.
        problem = _big_lp()
        problem.constraint_pack()
        shipped = shm.store().export(problem, owner="t3")
        try:
            clone = shipped.materialize()
            assert clone.constraint_pack().rows is clone.a
        finally:
            shm.store().release_owner("t3")
        _assert_no_leaks()

    def test_small_objects_opt_out(self):
        tiny = np.arange(4, dtype=float)  # far below MIN_SHARED_BYTES
        assert shm.store().export(tiny, owner="t4") is tiny
        shm.store().release_owner("t4")
        _assert_no_leaks()

    def test_owner_refcount_controls_unlink(self):
        problem = _big_lp()
        shipped = shm.store().export(problem, owner="a")
        name = shipped.segment_name
        shm.store().adopt(name, "b")
        assert shm.store().owners_of(name) == {"a", "b"}
        shm.store().release_owner("a")
        assert name in shm.leaked_segments()  # "b" still pins it
        shm.store().release_owner("b")
        _assert_no_leaks()

    def test_repeat_export_reuses_the_segment(self):
        problem = _big_lp()
        first = shm.store().export(problem, owner="a")
        second = shm.store().export(problem, owner="b")
        assert second is first
        assert shm.store().owners_of(first.segment_name) == {"a", "b"}
        shm.store().release_owner("a")
        shm.store().release_owner("b")
        _assert_no_leaks()

    def test_ambient_pin_extends_lifetime(self):
        problem = _big_lp()
        token = shm.new_pin_token()
        with shm.pinned_shm_owner(token):
            shipped = shm.store().export(problem, owner="solve1")
        shm.store().release_owner("solve1")
        # The pin (the API session's token) still owns the segment.
        assert shipped.segment_name in shm.leaked_segments()
        shm.store().release_owner(token)
        _assert_no_leaks()


# ---------------------------------------------------------------------- #
# Wire codec
# ---------------------------------------------------------------------- #


class TestWireCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**62,
            2**100,  # beyond int64: pickle fallback
            1.5,
            -0.0,
            float("inf"),
            "text",
            "ünïcode",
            b"raw-bytes",
            (1, 2.5, "three"),
            [1, [2, [3]]],
            {"a": 1, "b": (2.0, None)},
            {},
            (),
        ],
    )
    def test_round_trips(self, value):
        assert wirecodec.loads(wirecodec.dumps(value)) == value

    def test_arrays_are_bit_exact(self):
        rng = np.random.default_rng(0)
        for arr in (
            rng.normal(size=(7, 3)),
            np.arange(10, dtype=np.int32),
            np.array([], dtype=float),
            rng.normal(size=(2, 3, 4))[:, ::2],  # non-contiguous
            np.array([[True, False]]),
        ):
            back = wirecodec.loads(wirecodec.dumps(arr))
            assert back.dtype == arr.dtype
            assert back.shape == arr.shape
            assert np.ascontiguousarray(arr).tobytes() == back.tobytes()
            assert back.flags.writeable

    def test_numpy_scalar_types_survive(self):
        for value in (np.float64(3.25), np.int64(-9)):
            back = wirecodec.loads(wirecodec.dumps(value))
            assert type(back) is type(value)
            assert back == value
        # NaN round-trips bit-exactly too.
        back = wirecodec.loads(wirecodec.dumps(np.float64("nan")))
        assert np.isnan(back) and type(back) is np.float64

    def test_payloads_use_their_canonical_wire_form(self):
        payload = Scalar(value=1.25)
        back = wirecodec.loads(wirecodec.dumps(payload))
        assert back == payload
        assert isinstance(back, Scalar)

    def test_raw_pickles_pass_through_loads(self):
        # Journal replay decodes every historical frame through one entry
        # point: unmarked bytes must fall back to pickle.loads.
        obj = {"rng": np.random.default_rng(5)}
        back = wirecodec.loads(pickle.dumps(obj))
        assert isinstance(back["rng"], np.random.Generator)

    def test_arbitrary_objects_fall_back_to_pickle(self):
        rng = np.random.default_rng(1)
        back = wirecodec.loads(wirecodec.dumps({"rng": rng, "n": 3}))
        assert back["n"] == 3
        assert back["rng"].bit_generator.state == rng.bit_generator.state


# ---------------------------------------------------------------------- #
# Leak surface + crash replay
# ---------------------------------------------------------------------- #


def _noop_task(state):
    return state, state["tag"]


class TestLeakSurface:
    def test_session_close_unlinks_segments(self):
        problem = _big_lp()
        session = Session(
            model="coordinator",
            transport={"kind": "process", "max_workers": 2, "reuse_pool": False},
            num_sites=3,
            **SOLVE_KWARGS,
        )
        try:
            session.solve(problem)
        finally:
            session.close()
        _assert_no_leaks()

    def test_worker_sigkill_leaks_nothing(self):
        # Workers only *attach*; the creating process owns every name, so a
        # SIGKILLed worker cannot leave a segment behind.
        transport = ProcessPoolTransport(max_workers=2)
        problem = _big_lp()
        try:
            transport.init_shared("s", "problem", problem)
            assert shm.store().segment_names()  # the export is live
            for worker in range(2):
                process, _ = transport._workers[worker]
                process.kill()
                process.join(timeout=5)
        finally:
            transport.close()
        shm.store().release_owner("s")
        _assert_no_leaks()

    def test_degrade_to_in_process_leaks_nothing(self):
        problem = _build_problem_lp()
        baseline = solve(
            problem, model="coordinator", num_sites=3, **SOLVE_KWARGS
        )
        session = Session(
            model="coordinator",
            transport={
                "kind": "process",
                "max_workers": 2,
                "reuse_pool": False,
                "supervised": True,
                "max_restarts": 0,
            },
            num_sites=3,
            **SOLVE_KWARGS,
        )
        try:
            transport = session._transport
            transport.attach_fault_plan(
                FaultPlan([FaultSpec(kind="worker_crash", at=1)])
            )
            result = session.solve(problem)
            assert transport.degraded
            assert_bit_identical(result, baseline)
        finally:
            session.close()
        _assert_no_leaks()

    def test_crash_replay_with_shared_memory_is_bit_identical(self):
        problem = _build_problem_lp()
        baseline = solve(
            problem, model="coordinator", num_sites=3, **SOLVE_KWARGS
        )
        session = Session(
            model="coordinator",
            transport={
                "kind": "process",
                "max_workers": 2,
                "reuse_pool": False,
                "supervised": True,
                "shared_memory": True,
            },
            num_sites=3,
            **SOLVE_KWARGS,
        )
        try:
            transport = session._transport
            assert transport.shared_memory
            plan = FaultPlan([FaultSpec(kind="worker_crash", at=1, node=1)])
            transport.attach_fault_plan(plan)
            result = session.solve(problem)
            # The journal replay re-shipped the ShippedObject pickle: the
            # respawned worker re-mapped the same segment.
            assert ("dispatch", 1, "worker_crash") in plan.fired
            assert transport.total_restarts >= 1
            assert not transport.degraded
            assert_bit_identical(result, baseline)
        finally:
            session.close()
        _assert_no_leaks()

    def test_release_in_worker_drops_attachments(self):
        # A long-lived pool must not accumulate segment mappings across
        # sessions: after release, a fresh share round-trips cleanly and the
        # old export can unlink without the worker keeping ghosts.
        transport = ProcessPoolTransport(max_workers=1)
        try:
            for index in range(3):
                session = f"s{index}"
                transport.init_shared(session, "problem", _big_lp(seed=index))
                transport.init_node(session, 0, {"tag": index})
                assert transport.run_nodes(session, [0], _noop_task, [()]) == [index]
                transport.release(session)
                _assert_no_leaks()
        finally:
            transport.close()


def _build_problem_lp() -> LinearProgram:
    return random_feasible_lp(N, 2, seed=3).problem
