"""Unit, statistical, and property-based tests for the weighted-sampling primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import (
    ExponentialKeyReservoir,
    WeightedReservoirSampler,
    iter_chunks,
    multinomial_split,
    normalise_weights,
    stream_weighted_sample,
    weighted_sample_with_replacement,
    weighted_sample_without_replacement,
)


class TestNormaliseWeights:
    def test_sums_to_one(self):
        probs = normalise_weights([1.0, 3.0, 6.0])
        assert probs.sum() == pytest.approx(1.0)
        assert probs[2] == pytest.approx(0.6)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalise_weights([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalise_weights([0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalise_weights([])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            normalise_weights(np.ones((2, 2)))


class TestWithReplacement:
    def test_size_and_range(self):
        idx = weighted_sample_with_replacement([1.0] * 10, 50, rng=0)
        assert idx.shape == (50,)
        assert idx.min() >= 0 and idx.max() < 10

    def test_zero_weight_never_sampled(self):
        weights = [1.0, 0.0, 1.0]
        idx = weighted_sample_with_replacement(weights, 500, rng=1)
        assert 1 not in set(idx.tolist())

    def test_empirical_proportions(self):
        weights = [1.0, 3.0]
        idx = weighted_sample_with_replacement(weights, 20_000, rng=2)
        frac = np.mean(idx == 1)
        assert abs(frac - 0.75) < 0.02

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            weighted_sample_with_replacement([1.0], -1)


class TestWithoutReplacement:
    def test_distinct_indices(self):
        idx = weighted_sample_without_replacement([1.0] * 20, 10, rng=0)
        assert len(set(idx.tolist())) == 10

    def test_size_capped_at_positive_support(self):
        idx = weighted_sample_without_replacement([1.0, 0.0, 2.0], 10, rng=0)
        assert set(idx.tolist()) == {0, 2}

    def test_heavier_items_more_likely_included(self):
        weights = np.ones(100)
        weights[0] = 50.0
        hits = 0
        for seed in range(200):
            idx = weighted_sample_without_replacement(weights, 5, rng=seed)
            hits += int(0 in set(idx.tolist()))
        # Item 0 carries ~1/3 of the weight; inclusion should be very common.
        assert hits > 120

    def test_zero_size(self):
        idx = weighted_sample_without_replacement([1.0, 1.0], 0, rng=0)
        assert idx.size == 0

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            weighted_sample_without_replacement([0.0, 0.0], 1, rng=0)


class TestMultinomialSplit:
    def test_counts_sum_to_size(self):
        counts = multinomial_split([1.0, 2.0, 3.0], 100, rng=0)
        assert counts.sum() == 100
        assert counts.shape == (3,)

    def test_proportionality(self):
        counts = multinomial_split([1.0, 9.0], 50_000, rng=1)
        assert abs(counts[1] / 50_000 - 0.9) < 0.01

    def test_zero_size(self):
        counts = multinomial_split([1.0, 1.0], 0, rng=0)
        assert counts.sum() == 0


class TestWeightedReservoirSampler:
    def test_single_item(self):
        sampler = WeightedReservoirSampler.create(rng=0)
        sampler.offer("a", 1.0)
        assert sampler.item == "a"
        assert not sampler.is_empty

    def test_zero_weight_items_ignored(self):
        sampler = WeightedReservoirSampler.create(rng=0)
        sampler.offer("a", 0.0)
        assert sampler.is_empty
        sampler.offer("b", 1.0)
        sampler.offer("c", 0.0)
        assert sampler.item == "b"

    def test_negative_weight_rejected(self):
        sampler = WeightedReservoirSampler.create(rng=0)
        with pytest.raises(ValueError):
            sampler.offer("a", -1.0)

    def test_distribution_matches_weights(self):
        weights = {"a": 1.0, "b": 2.0, "c": 7.0}
        counts = {k: 0 for k in weights}
        for seed in range(3000):
            sampler = WeightedReservoirSampler.create(rng=seed)
            for key, weight in weights.items():
                sampler.offer(key, weight)
            counts[sampler.item] += 1
        assert abs(counts["c"] / 3000 - 0.7) < 0.04
        assert abs(counts["a"] / 3000 - 0.1) < 0.03


class TestExponentialKeyReservoir:
    def test_capacity_respected(self):
        reservoir = ExponentialKeyReservoir.create(5, rng=0)
        for i in range(100):
            reservoir.offer(i, 1.0)
        assert len(reservoir) == 5
        assert len(set(reservoir.sample())) == 5

    def test_fewer_items_than_capacity(self):
        reservoir = ExponentialKeyReservoir.create(10, rng=0)
        for i in range(3):
            reservoir.offer(i, 1.0)
        assert sorted(reservoir.sample()) == [0, 1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ExponentialKeyReservoir.create(0, rng=0)

    def test_heavy_item_usually_kept(self):
        hits = 0
        for seed in range(300):
            reservoir = ExponentialKeyReservoir.create(3, rng=seed)
            for i in range(50):
                reservoir.offer(i, 100.0 if i == 17 else 1.0)
            hits += int(17 in reservoir.sample())
        assert hits > 270


class _ZeroUniformGenerator(np.random.Generator):
    """A generator whose uniform draws are exactly 0.0 (the degenerate edge).

    ``Generator.random`` draws from the half-open interval ``[0, 1)``, so 0.0
    is a legal (if astronomically rare) return value; without clamping it
    maps to a ``-inf`` exponential key.
    """

    def __init__(self):
        super().__init__(np.random.PCG64(0))

    def random(self, size=None, dtype=np.float64, out=None):
        if size is None:
            return 0.0
        return np.zeros(size, dtype=dtype)


class TestZeroUniformRegression:
    def test_reservoir_keys_stay_finite(self):
        reservoir = ExponentialKeyReservoir(capacity=3, rng=_ZeroUniformGenerator())
        for i in range(10):
            reservoir.offer(i, 1.0 + i)
        assert len(reservoir) == 3
        assert all(np.isfinite(key) for key, _, _ in reservoir._heap)

    def test_reservoir_prefers_heavy_items_even_at_zero(self):
        # With the clamp, key = log(tiny)/w is monotone in w, so the heaviest
        # items must win; with -inf keys the sample would be arbitrary.
        reservoir = ExponentialKeyReservoir(capacity=2, rng=_ZeroUniformGenerator())
        weights = [1.0, 1000.0, 2.0, 500.0, 3.0]
        for i, w in enumerate(weights):
            reservoir.offer(i, w)
        assert sorted(reservoir.sample()) == [1, 3]

    def test_batch_sampler_prefers_heavy_items_even_at_zero(self):
        idx = weighted_sample_without_replacement(
            [1.0, 1000.0, 2.0, 500.0, 3.0], 2, rng=_ZeroUniformGenerator()
        )
        assert sorted(idx.tolist()) == [1, 3]

    def test_batch_sampler_keys_finite_for_all_zero_draws(self):
        # Must not warn (log of zero) and must return a valid distinct sample.
        with np.errstate(divide="raise"):
            idx = weighted_sample_without_replacement(
                np.ones(20), 5, rng=_ZeroUniformGenerator()
            )
        assert len(set(idx.tolist())) == 5


class TestReservoirHeap:
    def test_matches_batch_sampler_on_same_randomness(self):
        """The heap reservoir consumes one uniform per positive-weight item in
        stream order, exactly like the batch Efraimidis-Spirakis sampler, so
        the two must produce the same sample from the same seed."""
        rng = np.random.default_rng(90)
        weights = rng.uniform(0.1, 10.0, size=200)
        reservoir = ExponentialKeyReservoir.create(12, rng=np.random.default_rng(7))
        for i, w in enumerate(weights):
            reservoir.offer(i, float(w))
        batch = weighted_sample_without_replacement(
            weights, 12, rng=np.random.default_rng(7)
        )
        assert sorted(reservoir.sample()) == sorted(batch.tolist())

    def test_heap_holds_top_keys(self):
        # The reservoir consumes one uniform per offered item, so the keys it
        # saw can be recomputed independently from the same seed; the sample
        # must be exactly the argmax-5 of those keys.
        weights = np.linspace(0.5, 4.0, 100)
        reservoir = ExponentialKeyReservoir.create(5, rng=np.random.default_rng(3))
        for i, w in enumerate(weights):
            reservoir.offer(i, float(w))
        keys = np.log(np.random.default_rng(3).random(100)) / weights
        expected = set(np.argsort(keys)[::-1][:5].tolist())
        assert set(reservoir.sample()) == expected


class TestStreamWeightedSample:
    def test_with_replacement_size(self):
        stream = [(i, 1.0) for i in range(50)]
        sample = stream_weighted_sample(iter(stream), 8, rng=0, with_replacement=True)
        assert len(sample) == 8

    def test_without_replacement_distinct(self):
        stream = [(i, 1.0 + i) for i in range(50)]
        sample = stream_weighted_sample(iter(stream), 8, rng=0, with_replacement=False)
        assert len(sample) == len(set(sample)) == 8


class TestIterChunks:
    def test_chunks(self):
        chunks = list(iter_chunks(list(range(7)), 3))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6]]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks([1, 2], 0))


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=2, max_size=40),
    size=st.integers(min_value=1, max_value=10),
    seed=st.integers(0, 1000),
)
def test_without_replacement_properties(weights, size, seed):
    """Property: the sample is sorted, distinct, in range, and <= min(size, n)."""
    idx = weighted_sample_without_replacement(weights, size, rng=seed)
    assert len(set(idx.tolist())) == idx.size
    assert idx.size == min(size, len(weights))
    assert np.all(np.diff(idx) > 0)
    assert idx.min() >= 0 and idx.max() < len(weights)
