"""Registry and typed-config edge cases of the ``repro.api`` front door."""

from __future__ import annotations

import dataclasses

import pytest

from repro import (
    SolverConfig,
    available_models,
    available_problems,
    describe_model,
    describe_problem,
    register_model,
    register_problem,
    solve,
)
from repro.api.config import CoordinatorConfig, MPCConfig, StreamingConfig
from repro.api.registry import get_model, get_problem, unregister_model, unregister_problem
from repro.core.exceptions import InvalidConfigError, RegistryError, ReproError
from repro.core.result import SolveResult
from repro.problems import ConvexQuadraticProgram, LinearProgram


BUILTIN_MODELS = (
    "sequential",
    "streaming",
    "coordinator",
    "mpc",
    "exact",
    "single_pass_streaming",
    "ship_all_coordinator",
    "classic_reweighting",
)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


def test_builtin_models_registered():
    names = available_models()
    for name in BUILTIN_MODELS:
        assert name in names


def test_builtin_problems_registered():
    names = available_problems()
    for name in (
        "linear_program",
        "minimum_enclosing_ball",
        "linear_svm",
        "quadratic_program",
    ):
        assert name in names


def test_unknown_model_error_lists_available(tiny_lp):
    with pytest.raises(RegistryError) as excinfo:
        solve(tiny_lp, model="no-such-model")
    message = str(excinfo.value)
    assert "no-such-model" in message
    for name in BUILTIN_MODELS:
        assert name in message


def test_unknown_problem_error_lists_available():
    with pytest.raises(RegistryError) as excinfo:
        get_problem("no-such-problem")
    message = str(excinfo.value)
    assert "no-such-problem" in message
    assert "linear_program" in message


def test_registry_errors_are_repro_errors(tiny_lp):
    with pytest.raises(ReproError):
        solve(tiny_lp, model="no-such-model")
    with pytest.raises(LookupError):
        get_model("no-such-model")


def test_duplicate_model_registration_raises():
    @register_model("test-dup-model", config_cls=SolverConfig)
    def _runner(problem, config):  # pragma: no cover - never dispatched
        raise AssertionError

    try:
        with pytest.raises(RegistryError, match="already registered"):
            register_model("test-dup-model", config_cls=SolverConfig)(_runner)
    finally:
        unregister_model("test-dup-model")


def test_duplicate_problem_registration_raises():
    register_problem("test-dup-problem", LinearProgram)
    try:
        with pytest.raises(RegistryError, match="already registered"):
            register_problem("test-dup-problem", LinearProgram)
    finally:
        unregister_problem("test-dup-problem")


def test_unregister_unknown_raises():
    with pytest.raises(RegistryError):
        unregister_model("never-registered")
    with pytest.raises(RegistryError):
        unregister_problem("never-registered")


def test_custom_model_dispatches_through_solve(tiny_lp):
    @register_model(
        "test-custom-model",
        config_cls=SolverConfig,
        description="a canned model for the registry test",
        currencies=("rounds",),
    )
    def _runner(problem, config):
        return SolveResult(
            value=42.0,
            witness=None,
            basis_indices=(),
            metadata={"seed": config.seed},
        )

    try:
        result = solve(tiny_lp, model="test-custom-model", seed=7)
        assert result.value == 42.0
        assert result.metadata["seed"] == 7
        description = describe_model("test-custom-model")
        assert description["currencies"] == ["rounds"]
        assert description["config_class"] == "SolverConfig"
    finally:
        unregister_model("test-custom-model")


def test_describe_model_exposes_capabilities():
    description = describe_model("mpc")
    assert description["name"] == "mpc"
    assert description["config_class"] == "MPCConfig"
    assert description["replaces"] == "mpc_clarkson_solve"
    assert "delta" in description["config_keys"]
    assert description["config_keys"]["delta"] == 0.5
    assert "max_machine_load_bits" in description["currencies"]
    spec = get_model("coordinator")
    assert "num_sites" in spec.config_keys


def test_describe_problem():
    description = describe_problem("quadratic_program")
    assert description["factory"] == ConvexQuadraticProgram.__name__
    assert "optimization" in description["tags"]


# --------------------------------------------------------------------------- #
# Typed configs
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "cls, kwargs, field",
    [
        (SolverConfig, {"r": 0}, "r"),
        (SolverConfig, {"sample_scale": 0.0}, "sample_scale"),
        (SolverConfig, {"failure_probability": 1.0}, "failure_probability"),
        (SolverConfig, {"boost": 1.0}, "boost"),
        (SolverConfig, {"max_iterations": 0}, "max_iterations"),
        (SolverConfig, {"sample_size": 0}, "sample_size"),
        (SolverConfig, {"success_threshold": 1.5}, "success_threshold"),
        (StreamingConfig, {"r": -3}, "r"),
        (CoordinatorConfig, {"num_sites": 0}, "num_sites"),
        (MPCConfig, {"delta": 1.2}, "delta"),
        (MPCConfig, {"delta": 0.0}, "delta"),
        (MPCConfig, {"num_machines": 0}, "num_machines"),
    ],
)
def test_config_validation_names_offending_field(cls, kwargs, field):
    with pytest.raises(InvalidConfigError) as excinfo:
        cls(**kwargs)
    message = str(excinfo.value)
    assert f"{cls.__name__}.{field}" in message
    assert repr(list(kwargs.values())[0]) in message


def test_config_is_frozen():
    config = SolverConfig(r=3)
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.r = 4


def test_facade_rejects_out_of_range_overrides(tiny_lp):
    with pytest.raises(InvalidConfigError, match=r"SolverConfig\.r"):
        solve(tiny_lp, model="sequential", r=0)
    with pytest.raises(InvalidConfigError, match=r"MPCConfig\.delta"):
        solve(tiny_lp, model="mpc", delta=2.0)


def test_facade_rejects_unknown_override(tiny_lp):
    with pytest.raises(InvalidConfigError) as excinfo:
        solve(tiny_lp, model="sequential", bogus_key=1)
    message = str(excinfo.value)
    assert "bogus_key" in message
    assert "seed" in message  # the supported keys are listed


def test_facade_rejects_foreign_config_type(tiny_lp):
    with pytest.raises(InvalidConfigError, match="SolverConfig"):
        solve(tiny_lp, model="sequential", config={"r": 2})


def test_to_parameters_round_trip():
    config = StreamingConfig(
        r=3,
        sample_scale=0.5,
        boost=4.0,
        max_iterations=99,
        keep_trace=False,
        sample_size=123,
        success_threshold=0.01,
    )
    params = config.to_parameters()
    assert params.r == 3
    assert params.sample_scale == 0.5
    assert params.boost == 4.0
    assert params.max_iterations == 99
    assert params.keep_trace is False
    assert params.sample_size == 123
    assert params.success_threshold == 0.01


def test_practical_config_matches_practical_parameters(medium_lp):
    from repro.core.clarkson import practical_parameters

    config = SolverConfig.practical(medium_lp, r=2, seed=5)
    params = practical_parameters(medium_lp, r=2)
    assert config.sample_size == params.sample_size
    assert config.success_threshold == params.success_threshold
    assert config.seed == 5


def test_practical_config_rejects_unknown_key(medium_lp):
    with pytest.raises(InvalidConfigError, match="bogus"):
        SolverConfig.practical(medium_lp, r=2, bogus=1)
