"""End-to-end scenarios: all models agree, and the ML workloads of the paper's intro run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    coordinator_clarkson_solve,
    exact_in_memory,
    mpc_clarkson_solve,
    streaming_clarkson_solve,
)
from repro.core import clarkson_solve
from repro.lower_bounds import (
    interactive_tci_protocol,
    sample_hard_instance,
    tci_to_linear_program,
)
from repro.lower_bounds.tci import lp_optimum_to_index
from repro.workloads import (
    chebyshev_regression_lp,
    make_regression_data,
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
)

from tests.conftest import assert_objective_close, fast_params


class TestAllModelsAgree:
    """The sequential, streaming, coordinator and MPC drivers all find the same optimum."""

    @pytest.mark.parametrize("seed", range(2))
    def test_linear_program(self, seed):
        instance = random_polytope_lp(1600, 2, seed=seed)
        exact = exact_in_memory(instance.problem)
        params = fast_params(sample_size=350)
        results = [
            clarkson_solve(instance.problem, params=params, rng=seed),
            streaming_clarkson_solve(instance.problem, r=2, params=params, rng=seed),
            coordinator_clarkson_solve(
                instance.problem, num_sites=4, r=2, params=params, rng=seed
            ),
            mpc_clarkson_solve(
                instance.problem, delta=0.5, num_machines=8, params=params, rng=seed
            ),
        ]
        for result in results:
            assert_objective_close(result.value, exact.value)

    def test_chebyshev_regression_across_models(self):
        data = make_regression_data(700, 2, seed=3, noise_scale=0.1)
        lp = chebyshev_regression_lp(data)
        exact = exact_in_memory(lp)
        params = fast_params(sample_size=500)
        stream = streaming_clarkson_solve(lp, r=2, params=params, rng=1)
        coord = coordinator_clarkson_solve(lp, num_sites=4, r=2, params=params, rng=1)
        assert_objective_close(stream.value, exact.value)
        assert_objective_close(coord.value, exact.value)
        # The recovered max-residual is no larger than the noise level.
        assert stream.value.objective <= 0.1 + 1e-6

    def test_svm_across_models(self):
        data = make_separable_classification(900, 2, seed=4, margin=0.5)
        problem = svm_problem(data)
        exact = exact_in_memory(problem)
        params = fast_params(sample_size=250)
        stream = streaming_clarkson_solve(problem, r=2, params=params, rng=2)
        coord = coordinator_clarkson_solve(problem, num_sites=3, r=2, params=params, rng=2)
        assert stream.value.squared_norm == pytest.approx(
            exact.value.squared_norm, rel=1e-3
        )
        assert coord.value.squared_norm == pytest.approx(
            exact.value.squared_norm, rel=1e-3
        )
        # The resulting classifier separates the training data perfectly.
        predictions = problem.classify(stream.witness, data.points)
        assert np.all(predictions == data.labels)


class TestLowerBoundPipeline:
    """Hard TCI instances flow through the LP reduction and the upper-bound algorithms."""

    def test_hard_instance_solved_by_streaming_lp(self):
        hard = sample_hard_instance(branching=6, rounds=2, seed=5)  # n = 36 points
        lp = tci_to_linear_program(hard.instance)
        result = streaming_clarkson_solve(lp, r=2, rng=3)
        decoded = lp_optimum_to_index(result.witness[0], hard.instance.length)
        assert decoded == hard.answer

    def test_hard_instance_solved_by_coordinator_lp(self):
        hard = sample_hard_instance(branching=6, rounds=2, seed=6)
        lp = tci_to_linear_program(hard.instance)
        result = coordinator_clarkson_solve(lp, num_sites=2, r=2, rng=4)
        decoded = lp_optimum_to_index(result.witness[0], hard.instance.length)
        assert decoded == hard.answer

    def test_protocol_and_reduction_agree(self):
        hard = sample_hard_instance(branching=5, rounds=3, seed=7)
        protocol = interactive_tci_protocol(hard.instance, rounds=3)
        lp = tci_to_linear_program(hard.instance)
        decoded = lp_optimum_to_index(lp.solve().witness[0], hard.instance.length)
        assert protocol.answer == decoded == hard.answer


class TestResultSummaries:
    def test_summary_contains_model_costs(self):
        instance = random_polytope_lp(1500, 2, seed=8)
        result = streaming_clarkson_solve(
            instance.problem, r=2, params=fast_params(), rng=5
        )
        summary = result.summary()
        assert summary["passes"] == result.resources.passes
        assert summary["space_peak_items"] == result.resources.space_peak_items
        assert "meta_algorithm" in summary
