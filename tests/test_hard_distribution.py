"""Tests for the recursive hard distribution D_r (Section 5.3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lower_bounds.hard_distribution import (
    build_schedule,
    sample_hard_instance,
)
from repro.lower_bounds.tci import tci_to_linear_program, lp_optimum_to_index


class TestSchedule:
    def test_levels_and_parities(self):
        schedule = build_schedule(branching=5, rounds=4)
        assert [s.level for s in schedule] == [1, 2, 3, 4]
        assert [s.alice_composite for s in schedule] == [True, False, True, False]

    def test_bob_floor_accumulates_upwards(self):
        schedule = build_schedule(branching=5, rounds=3)
        floors = [s.bob_floor for s in schedule]
        # Deeper levels (earlier entries) need steeper Bob curves.
        assert floors[0] > floors[1] > floors[2] >= 1.0

    def test_alice_floor_is_constant_one(self):
        schedule = build_schedule(branching=6, rounds=4)
        assert all(s.alice_floor == 1.0 for s in schedule)

    def test_ranges_grow_with_level(self):
        schedule = build_schedule(branching=4, rounds=4)
        alice_ranges = [s.alice_range for s in schedule]
        assert all(b >= a for a, b in zip(alice_ranges, alice_ranges[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_schedule(branching=1, rounds=2)
        with pytest.raises(ValueError):
            build_schedule(branching=4, rounds=0)


class TestSampleHardInstance:
    @pytest.mark.parametrize("rounds", [1, 2, 3])
    @pytest.mark.parametrize("branching", [3, 5, 8])
    def test_instance_size(self, branching, rounds):
        hard = sample_hard_instance(branching=branching, rounds=rounds, seed=0)
        assert hard.instance.length == branching ** rounds
        assert hard.rounds == rounds

    @pytest.mark.parametrize("rounds", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_promise_holds(self, rounds, seed):
        """Proposition 5.7 / 5.9: composite instances satisfy the TCI promise."""
        hard = sample_hard_instance(branching=5, rounds=rounds, seed=seed)
        assert hard.instance.is_valid()

    @pytest.mark.parametrize("rounds", [2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_answer_is_in_special_block(self, rounds, seed):
        """Proposition 5.8 / 5.10: the answer comes from the special sub-instance."""
        hard = sample_hard_instance(branching=5, rounds=rounds, seed=seed)
        scan = hard.instance.solve()
        assert scan == hard.answer
        block_start = (hard.special_block - 1) * hard.block_length
        block_end = hard.special_block * hard.block_length
        assert block_start < hard.answer <= block_end
        assert hard.answer == block_start + hard.sub_answer

    def test_base_case_matches_aug_index_structure(self):
        hard = sample_hard_instance(branching=6, rounds=1, seed=3)
        assert hard.special_block == 0
        assert hard.instance.length == 6
        assert hard.answer == hard.instance.solve()

    def test_lp_reduction_decodes_hard_instances(self):
        """End-to-end: hard TCI instance -> 2-d LP -> decoded answer."""
        for seed in range(3):
            hard = sample_hard_instance(branching=4, rounds=2, seed=seed)
            lp = tci_to_linear_program(hard.instance)
            result = lp.solve()
            assert lp_optimum_to_index(result.witness[0], hard.instance.length) == hard.answer

    def test_larger_instance_remains_valid(self):
        hard = sample_hard_instance(branching=10, rounds=3, seed=1)
        assert hard.instance.length == 1000
        assert hard.instance.is_valid()
        assert hard.instance.solve() == hard.answer

    def test_reproducible_with_seed(self):
        a = sample_hard_instance(branching=5, rounds=2, seed=42)
        b = sample_hard_instance(branching=5, rounds=2, seed=42)
        assert np.allclose(a.instance.alice, b.instance.alice)
        assert np.allclose(a.instance.bob, b.instance.bob)
        assert a.answer == b.answer

    def test_different_seeds_vary_hidden_block(self):
        blocks = {
            sample_hard_instance(branching=6, rounds=2, seed=s).special_block
            for s in range(12)
        }
        assert len(blocks) > 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sample_hard_instance(branching=2, rounds=2)
        with pytest.raises(ValueError):
            sample_hard_instance(branching=4, rounds=0)

    def test_first_speaker_curve_independent_of_special_block(self):
        """Observation 5.12: the composite (first speaker's) curve has the same
        distribution regardless of z*; with fixed sub-instance randomness it is
        literally identical.  We check a weaker, directly-testable consequence:
        regenerating with the same seed reproduces the composite curve, and the
        composite curve spans all blocks (no block is skipped)."""
        hard = sample_hard_instance(branching=5, rounds=2, seed=7)
        # rounds=2 is Bob-composite: Bob's curve is the concatenation.
        diffs = np.diff(hard.instance.bob)
        assert diffs.size == hard.instance.length - 1
        assert np.all(diffs < 0)
