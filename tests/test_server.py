"""The HTTP/SSE front end: sockets, tenancy, SSE, and wire fidelity.

Every test here exercises a real ``ThreadingHTTPServer`` socket through the
stdlib :class:`~repro.server.ServiceClient` — nothing is mocked below the
HTTP layer — so the suite doubles as the protocol conformance check for
``docs/service.md``.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

import repro
from repro import BudgetExceededError, ResourceBudget, SolveResult, solve
from repro.api.service import Ticket
from repro.core.result import ResourceUsage
from repro.problems.meb import MinimumEnclosingBall
from repro.problems.qp import ConvexQuadraticProgram
from repro.server import (
    AuthenticationError,
    QuotaExceededError,
    ReproServer,
    RequestValidationError,
    ServiceClient,
    ServiceError,
    Tenant,
    TenantQuota,
    TenantRegistry,
    decode_problem,
    encode_problem,
)
from repro.server.app import _TicketRecord
from repro.server.tenancy import admit
from repro.core.accounting import TenantUsage
from repro.workloads import (
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

FAST = dict(sample_size=300, success_threshold=0.02, max_iterations=500, seed=0)


def _qp_instance(n: int, d: int, seed: int) -> ConvexQuadraticProgram:
    rng = np.random.default_rng(seed)
    q_matrix = np.diag(np.linspace(1.0, 2.0, d))
    normals = rng.normal(size=(n, d))
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    anchor = rng.uniform(-1.0, 1.0, size=d)
    h_vector = normals @ anchor - rng.uniform(0.1, 1.0, size=n)
    return ConvexQuadraticProgram(q_matrix, rng.normal(size=d), normals, h_vector)


def _instance(family: str):
    if family == "lp":
        return random_polytope_lp(800, 2, seed=51).problem
    if family == "meb":
        return MinimumEnclosingBall(uniform_ball_points(600, 3, seed=52))
    if family == "svm":
        return svm_problem(make_separable_classification(600, 2, seed=53))
    return _qp_instance(600, 3, seed=54)


@pytest.fixture(scope="module")
def server():
    with ReproServer(port=0, model="streaming", max_workers=2, r=2, **FAST) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


# ---------------------------------------------------------------------- #
# E2E: submit over a socket, bit-identical to in-process solve
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("family", ["lp", "meb", "svm", "qp"])
def test_remote_solve_bit_identical_to_in_process(client, family):
    problem = _instance(family)
    remote = client.solve(problem, timeout=120)
    direct = solve(problem, model="streaming", r=2, **FAST)
    assert remote.basis_indices == direct.basis_indices
    assert remote.value == direct.value
    # Bit-identity of the witness, uniformly across witness types (arrays
    # for lp/svm/qp, a Ball object for meb): compare the full wire forms.
    assert json.dumps(
        SolveResult.to_dict(remote)["witness"], sort_keys=True
    ) == json.dumps(SolveResult.to_dict(direct)["witness"], sort_keys=True)
    assert remote.iterations == direct.iterations
    assert (
        remote.resources.total_communication_bits
        == direct.resources.total_communication_bits
    )


def test_per_request_model_and_config_overrides(client):
    problem = _instance("lp")
    remote = client.solve(
        problem, model="coordinator", config={"num_sites": 3}, timeout=120
    )
    direct = solve(problem, model="coordinator", num_sites=3, **FAST)
    assert remote.value == direct.value
    assert remote.basis_indices == direct.basis_indices
    assert remote.resources.total_communication_bits > 0


def test_problem_wire_codec_round_trips():
    for family in ("lp", "meb", "svm", "qp"):
        problem = _instance(family)
        payload = json.loads(json.dumps(encode_problem(problem)))
        restored = decode_problem(payload)
        assert type(restored) is type(problem)


# ---------------------------------------------------------------------- #
# SSE: at least one event per round, terminal event, replay semantics
# ---------------------------------------------------------------------- #


def test_sse_streams_one_event_per_iteration_and_terminates(client):
    problem = _instance("lp")
    ticket = client.submit(problem)
    events = list(ticket.events(timeout=60))
    result = ticket.result(timeout=60)

    names = [event["event"] for event in events]
    assert names[0] == "queued"
    assert names[-1] == "done"
    assert names.count("iteration") == result.iterations
    rounds = [event for event in events if event["event"] == "round"]
    assert len(rounds) >= result.iterations  # >= one ledger round per pass
    for event in events:
        if event["event"] == "iteration":
            data = event["data"]
            assert set(data) >= {
                "iteration",
                "sample_size",
                "num_violators",
                "violator_weight_fraction",
                "successful",
            }


def test_sse_replays_for_late_subscribers(client):
    ticket = client.submit(_instance("lp"))
    ticket.result(timeout=60)  # finish first, then attach the stream
    events = list(ticket.events(timeout=10))
    names = [event["event"] for event in events]
    assert names[0] == "queued"
    assert names[-1] == "done"
    assert "iteration" in names


def test_coordinator_sse_carries_fabric_rounds(client):
    ticket = client.submit(
        _instance("lp"), model="coordinator", config={"num_sites": 3}
    )
    result = ticket.result(timeout=120)
    events = list(ticket.events(timeout=10))
    rounds = [event for event in events if event["event"] == "round"]
    assert len(rounds) == result.resources.rounds
    assert all(event["data"]["bits"] >= 0 for event in rounds)
    assert sum(event["data"]["bits"] for event in rounds) == (
        result.resources.total_communication_bits
    )


# ---------------------------------------------------------------------- #
# Typed error bodies: 400 validation, 404 tickets
# ---------------------------------------------------------------------- #


def test_malformed_problem_answers_400_with_field(client):
    with pytest.raises(RequestValidationError) as excinfo:
        client.submit({"family": "lp", "c": [1.0, 0.0]})
    assert excinfo.value.field == "problem.a"


def test_unknown_model_answers_400(client):
    with pytest.raises(RequestValidationError) as excinfo:
        client.submit(_instance("lp"), model="no-such-model")
    assert excinfo.value.field == "model"


def test_unknown_config_field_answers_400(client):
    with pytest.raises(RequestValidationError, match="definitely_not_a_field"):
        client.submit(_instance("lp"), config={"definitely_not_a_field": 1})


def test_bad_budget_answers_400(client):
    with pytest.raises(RequestValidationError):
        client.submit(_instance("lp"), budget={"iterations": 0})


def test_unknown_ticket_answers_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client.ticket("t999999")
    assert excinfo.value.status == 404


# ---------------------------------------------------------------------- #
# Tenancy: 401s, 429s, isolation, usage metering
# ---------------------------------------------------------------------- #


def test_authentication_and_cumulative_quota_429(tmp_path):
    """The ISSUE acceptance path: tenant B exhausts its quota and gets a
    429 with a structured body while tenant A's tickets keep completing."""
    usage_log = tmp_path / "usage.jsonl"
    tenants = {
        "key-a": Tenant("acme"),
        "key-b": Tenant("tiny", TenantQuota(communication_bits=64)),
    }
    problem = _instance("lp")
    with ReproServer(
        port=0,
        model="streaming",
        max_workers=2,
        r=2,
        tenants=tenants,
        allow_anonymous=False,
        usage_log=usage_log,
        **FAST,
    ) as srv:
        alice = ServiceClient(srv.url, api_key="key-a")
        bob = ServiceClient(srv.url, api_key="key-b")

        # No key / wrong key -> 401 with a structured body.
        with pytest.raises(AuthenticationError):
            ServiceClient(srv.url).usage()
        with pytest.raises(AuthenticationError):
            ServiceClient(srv.url, api_key="wrong").usage()

        # Bob's first coordinator solve spends >64 bits; the ledger now
        # exceeds the cumulative quota, so the next submit is refused.
        first = bob.solve(
            problem, model="coordinator", config={"num_sites": 3}, timeout=120
        )
        assert first.resources.total_communication_bits > 64
        with pytest.raises(QuotaExceededError) as excinfo:
            bob.submit(problem)
        assert excinfo.value.reason == "communication_bits"
        assert excinfo.value.limit == 64
        assert excinfo.value.used == first.resources.total_communication_bits

        # Alice is unaffected and still gets bit-identical answers.
        remote = alice.solve(problem, timeout=120)
        direct = solve(problem, model="streaming", r=2, **FAST)
        assert remote.value == direct.value

        # Per-tenant usage endpoint reflects the ledger.
        bob_usage = bob.usage()
        assert bob_usage["tenant"] == "tiny"
        assert bob_usage["usage"]["tickets"] == 1
        assert (
            bob_usage["usage"]["communication_bits"]
            == first.resources.total_communication_bits
        )
        alice_usage = alice.usage()
        assert alice_usage["tenant"] == "acme"
        assert alice_usage["usage"]["done"] == 1

        # Ticket ids do not leak across tenants: Bob cannot see Alice's.
        alice_ticket = alice.submit(problem)
        alice_ticket.result(timeout=120)
        with pytest.raises(ServiceError) as leak:
            bob.ticket(alice_ticket.id)
        assert leak.value.status == 404

    # The JSONL ledger has one line per finished ticket, tenant-attributed.
    lines = [json.loads(line) for line in usage_log.read_text().splitlines()]
    assert len(lines) == 3
    assert {line["tenant"] for line in lines} == {"acme", "tiny"}
    assert all(line["outcome"] == "done" for line in lines)
    assert all(line["wall_s"] >= 0 for line in lines)


def test_concurrent_quota_admission():
    tenant = Tenant("burst", TenantQuota(max_concurrent=2))
    admit(tenant, 0, TenantUsage())
    admit(tenant, 1, TenantUsage())
    with pytest.raises(QuotaExceededError) as excinfo:
        admit(tenant, 2, TenantUsage())
    assert excinfo.value.reason == "concurrent"
    assert excinfo.value.limit == 2
    assert excinfo.value.used == 2


def test_registry_from_config_builds_quotas():
    registry = TenantRegistry.from_config(
        {"secret": {"tenant": "acme", "max_concurrent": 4, "iterations": 100}},
        allow_anonymous=False,
    )
    tenant = registry.authenticate("secret")
    assert tenant.name == "acme"
    assert tenant.quota.max_concurrent == 4
    assert tenant.quota.iterations == 100
    with pytest.raises(AuthenticationError):
        registry.authenticate(None)


# ---------------------------------------------------------------------- #
# Wire fidelity: budget aborts, large witnesses, non-finite values
# ---------------------------------------------------------------------- #


def test_budget_abort_crosses_the_wire_with_partial_usage():
    cfg = dict(sample_size=200, success_threshold=0.005, max_iterations=500, seed=3)
    problem = random_polytope_lp(3000, 3, seed=7).problem
    with ReproServer(port=0, model="streaming", max_workers=1, r=2, **cfg) as srv:
        client = ServiceClient(srv.url)
        ticket = client.submit(problem, budget=ResourceBudget(iterations=1))
        with pytest.raises(BudgetExceededError) as excinfo:
            ticket.result(timeout=120)
        exc = excinfo.value
        assert exc.reason == "iterations"
        assert exc.iterations == 1
        assert isinstance(exc.usage, ResourceUsage)
        assert exc.elapsed_s > 0
        assert (
            exc.usage.total_communication_bits == exc.communication_bits
        )
        # The poll body carries the same structured error.
        payload = ticket.status()
        assert payload["status"] == "failed"
        assert payload["error"]["type"] == "budget_exhausted"
        assert payload["error"]["iterations"] == exc.iterations
        wire_usage = payload["error"]["usage"]
        assert wire_usage == {
            key: value
            for key, value in dataclasses.asdict(exc.usage).items()
            if key in wire_usage
        }
        assert "total_communication_bits" in wire_usage
        # ... and the SSE stream ends with a 'failed' terminal event.
        events = list(ticket.events(timeout=10))
        assert events[-1]["event"] == "failed"
        assert events[-1]["data"]["error"]["type"] == "budget_exhausted"


def _inject_result(server: ReproServer, result: SolveResult) -> str:
    """Install a finished synthetic ticket so HTTP serves its payload."""
    ticket = Ticket(0, None, None, tenant="public")
    ticket._future.set_result(result)
    with server._lock:
        rid = f"t{server._next_id}"
        server._next_id += 1
        record = _TicketRecord(rid, "public", "streaming")
        record.ticket = ticket
        server._tickets[rid] = record
    return rid


def test_large_witness_and_nonfinite_margins_survive_http(server, client):
    base = solve(_instance("lp"), model="streaming", r=2, **FAST)
    big = np.arange(200_000, dtype=np.float64) / 3.0
    synthetic = dataclasses.replace(
        base,
        witness=big,
        metadata={
            **base.metadata,
            "margins": [float("inf"), float("-inf"), float("nan"), 0.5],
        },
    )
    rid = _inject_result(server, synthetic)
    payload = client.ticket(rid)
    assert payload["status"] == "done"
    restored = SolveResult.from_dict(payload["result"])
    np.testing.assert_array_equal(np.asarray(restored.witness), big)
    assert np.asarray(restored.witness).dtype == np.float64
    margins = restored.metadata["margins"]
    assert margins[0] == float("inf")
    assert margins[1] == float("-inf")
    assert np.isnan(margins[2])
    assert margins[3] == 0.5


# ---------------------------------------------------------------------- #
# Introspection endpoints
# ---------------------------------------------------------------------- #


def test_models_endpoint_describes_registry(client):
    body = client.models()
    assert body["default"] == "streaming"
    assert set(body["models"]) >= {"sequential", "streaming", "coordinator", "mpc"}
    for info in body["models"].values():
        assert "description" in info and "transports" in info


def test_healthz_reports_service_stats(client, server):
    client.solve(_instance("lp"), timeout=120)
    body = client.healthz()
    assert body["status"] == "ok"
    streaming = body["services"]["streaming"]
    assert streaming["done"] >= 1
    assert "queue_depth" in streaming and "running" in streaming
    assert "public" in streaming["tenants"]


# ---------------------------------------------------------------------- #
# Resilient service path: deep health, structured 503s, SSE resume,
# poisoned-service replacement
# ---------------------------------------------------------------------- #


def test_healthz_reports_liveness_and_readiness(client, server):
    client.solve(_instance("lp"), timeout=120)
    body = client.healthz()
    assert body["liveness"] == "ok"
    assert body["readiness"]["ready"] is True
    streaming = body["readiness"]["models"]["streaming"]
    assert streaming["state"] == "ready"
    assert streaming["circuit"]["state"] == "closed"
    assert streaming["transport"]["kind"] in ("inprocess", "process")
    assert streaming["replacements"] == 0


def test_open_circuit_answers_structured_503(server):
    from repro.core.exceptions import CircuitOpenError

    service = server._service_for("streaming")
    breaker = service.breaker
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()
    try:
        # POSTs are never retried by the client, so the 503 surfaces raw.
        fresh = ServiceClient(server.url)
        with pytest.raises(CircuitOpenError) as exc_info:
            fresh.submit(_instance("lp"))
        assert exc_info.value.retry_after_s > 0
        assert exc_info.value.model == "streaming"

        # The raw response carries the Retry-After header and a retryable
        # structured body.
        import http.client as http_client
        import json as json_mod

        host, port = server.address
        conn = http_client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST",
                "/v1/solve",
                body=json_mod.dumps({"problem": encode_problem(_instance("lp"))}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 503
            assert int(response.getheader("Retry-After")) >= 1
            error = json_mod.loads(response.read())["error"]
            assert error["type"] == "circuit_open"
            assert error["retryable"] is True
            assert error["retry_after"] > 0
        finally:
            conn.close()

        # An open circuit flips readiness without killing liveness.
        health = ServiceClient(server.url).healthz()
        assert health["liveness"] == "ok"
        assert health["status"] == "degraded"
        assert (
            health["readiness"]["models"]["streaming"]["state"] == "circuit_open"
        )
    finally:
        breaker.record_success()  # close the circuit for the other tests
    assert ServiceClient(server.url).healthz()["status"] == "ok"


def test_sse_frames_carry_ids_and_resume_via_last_event_id(server, client):
    import http.client as http_client

    ticket = client.submit(_instance("lp"))
    ticket.result(timeout=120)

    def _frames(headers):
        host, port = server.address
        conn = http_client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "GET", f"/v1/tickets/{ticket.id}/events?timeout=10", headers=headers
            )
            response = conn.getresponse()
            assert response.status == 200
            frames = []
            current = {}
            for raw_line in response:
                line = raw_line.decode().rstrip("\r\n")
                if line.startswith("id:"):
                    current["id"] = int(line[3:].strip())
                elif line.startswith("event:"):
                    current["event"] = line[6:].strip()
                elif line == "" and current:
                    frames.append(current)
                    if current["event"] in ("done", "failed", "cancelled"):
                        break
                    current = {}
            return frames
        finally:
            conn.close()

    full = _frames({})
    assert [f["id"] for f in full] == list(range(len(full)))
    assert full[-1]["event"] == "done"

    resumed = _frames({"Last-Event-ID": "1"})
    assert resumed[0]["id"] == 2
    assert [f["event"] for f in resumed] == [f["event"] for f in full[2:]]


def test_terminal_transport_failure_replaces_the_service():
    import time as time_mod

    from repro.core.exceptions import TransportFailure

    with ReproServer(port=0, model="streaming", max_workers=1, r=2, **FAST) as srv:
        client = ServiceClient(srv.url)
        service = srv._service_for("streaming")

        def doomed(problem, config=None, budget=None, warm_witnesses=None):
            raise TransportFailure("pool is gone", retryable=False)

        service.session.run_cold = doomed
        ticket = client.submit(_instance("lp"))
        with pytest.raises(TransportFailure):
            ticket.result(timeout=60)

        # The poisoned service is retired on a background thread; the pool
        # swaps in a fresh session and the next request solves normally.
        deadline = time_mod.monotonic() + 30
        while time_mod.monotonic() < deadline:
            if srv._services.get("streaming") is not service:
                break
            time_mod.sleep(0.05)
        assert srv._services.get("streaming") is not service
        assert srv._replaced == {"streaming": 1}
        result = client.solve(_instance("lp"), timeout=120)
        assert result.value is not None
        health = client.healthz()
        assert health["readiness"]["models"]["streaming"]["replacements"] == 1


def test_client_sse_reconnects_without_duplicates(server, client):
    ticket = client.submit(_instance("lp"))
    ticket.result(timeout=120)
    clean = list(client.events(ticket.id, timeout=30))

    flaky_client = ServiceClient(server.url, retries=2, backoff_s=0.0)
    real = flaky_client._stream_once
    state = {"connections": 0}

    def flaky(ticket_id, deadline, last_id):
        state["connections"] += 1
        stream = real(ticket_id, deadline, last_id)
        if state["connections"] == 1:
            # Two frames, then the connection "dies" mid-stream.
            yield next(stream)
            yield next(stream)
            raise OSError("connection reset mid-stream")
        yield from stream

    flaky_client._stream_once = flaky
    events = list(flaky_client.events(ticket.id, timeout=30))
    assert state["connections"] == 2
    # The resumed stream replays from Last-Event-ID: no gaps, no repeats.
    assert [e["event"] for e in events] == [e["event"] for e in clean]
