"""The resilience layer: fault plans, retries, circuits, checkpoints, recovery.

Unit coverage for :mod:`repro.resilience` plus the integration seams it
plugs into — the supervised process transport's crash recovery (restart,
degrade, terminal), the session's recovery accounting, the service's
retry-with-checkpoint-resume loop, the server's deepened health and
structured 503s, and the wire forms of the new typed errors.

The distributed recovery contract under test everywhere: a solve that hits
an injected infrastructure fault either completes **bit-identical** to its
fault-free baseline or raises a typed, documented error — never a hang,
never a raw pool crash.
"""

from __future__ import annotations

import pytest

from test_fabric_transports import (
    _build_problem,
    _model_overrides,
    _solve,
    assert_bit_identical,
)

from repro import TransportConfig, solve
from repro.api.config import SolverConfig
from repro.api.service import SolverService
from repro.api.session import Session, SessionPool
from repro.core.budget import CheckpointStore, checkpointing
from repro.core.exceptions import (
    CircuitOpenError,
    CommunicationError,
    InvalidConfigError,
    TransportFailure,
)
from repro.resilience import (
    FAULT_KINDS,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    fault_injection,
)
from repro.resilience.faults import active_fault_plan
from repro.server.wire import (
    error_body,
    error_to_exception,
    exception_to_error,
    sse_event,
)

SOLVE_KWARGS = dict(
    seed=11,
    sample_size=60,
    success_threshold=0.05,
    max_iterations=300,
    keep_trace=True,
)


# ---------------------------------------------------------------------- #
# Fault plans
# ---------------------------------------------------------------------- #


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(InvalidConfigError, match="kind"):
            FaultSpec(kind="meteor_strike")
        with pytest.raises(InvalidConfigError, match="at"):
            FaultSpec(kind="worker_crash", at=0)
        with pytest.raises(InvalidConfigError, match="count"):
            FaultSpec(kind="worker_crash", count=0)
        with pytest.raises(InvalidConfigError, match="delay_s"):
            FaultSpec(kind="slow_node", delay_s=-1.0)

    def test_every_kind_maps_to_a_probe(self):
        for kind, probe in FAULT_KINDS.items():
            assert FaultSpec(kind=kind).probe == probe

    def test_seeded_plans_are_reproducible(self):
        a = FaultPlan.seeded(7, num_faults=5)
        b = FaultPlan.seeded(7, num_faults=5)
        assert a.describe()["specs"] == b.describe()["specs"]
        assert a.seed == 7
        # A different seed scripts a different scenario (overwhelmingly).
        c = FaultPlan.seeded(8, num_faults=5)
        assert a.describe()["specs"] != c.describe()["specs"]

    def test_take_counts_globally_for_unpinned_specs(self):
        plan = FaultPlan([FaultSpec(kind="message_drop", at=3)])
        hits = [plan.take("deliver") for _ in range(4)]
        assert [h is not None for h in hits] == [False, False, True, False]
        assert plan.fired == [("deliver", None, "message_drop")]

    def test_take_counts_per_node_for_pinned_specs(self):
        plan = FaultPlan([FaultSpec(kind="worker_crash", at=2, node=1)])
        # Worker 0's occurrences never match a node-1 pin.
        assert plan.take("dispatch", node=0) is None
        assert plan.take("dispatch", node=0) is None
        # Worker 1 fires on its *own* second occurrence.
        assert plan.take("dispatch", node=1) is None
        spec = plan.take("dispatch", node=1)
        assert spec is not None and spec.kind == "worker_crash"

    def test_count_window_fires_consecutively(self):
        plan = FaultPlan([FaultSpec(kind="message_delay", at=2, count=2)])
        hits = [plan.take("deliver") is not None for _ in range(4)]
        assert hits == [False, True, True, False]

    def test_fault_injection_contextvar(self):
        plan = FaultPlan([FaultSpec(kind="message_drop")])
        assert active_fault_plan() is None
        with fault_injection(plan) as installed:
            assert installed is plan
            assert active_fault_plan() is plan
        assert active_fault_plan() is None
        with fault_injection(None) as installed:
            assert installed is None


# ---------------------------------------------------------------------- #
# Retry policy
# ---------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_s=0.1,
            backoff_factor=2.0,
            max_backoff_s=0.5,
            jitter=0.0,
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_is_seeded(self):
        from random import Random

        policy = RetryPolicy(backoff_s=0.1, jitter=0.5)
        a = [policy.delay(i, Random(3)) for i in range(4)]
        b = [policy.delay(i, Random(3)) for i in range(4)]
        assert a == b
        assert all(d >= 0.1 * (2.0**i) * 0.999 for i, d in zip(range(2), a))

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(InvalidConfigError):
            RetryPolicy(backoff_s=-0.1)


# ---------------------------------------------------------------------- #
# Circuit breaker
# ---------------------------------------------------------------------- #


class _FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            window_s=kwargs.pop("window_s", 60.0),
            cooldown_s=kwargs.pop("cooldown_s", 5.0),
            model="streaming",
            clock=clock,
            **kwargs,
        )
        return breaker, clock

    def test_closed_allows(self):
        breaker, _ = self._breaker()
        breaker.allow()
        assert breaker.state() == "closed"

    def test_trips_at_threshold_and_rejects(self):
        breaker, _ = self._breaker(failure_threshold=2)
        breaker.record_failure()
        assert breaker.state() == "closed"
        breaker.record_failure()
        assert breaker.state() == "open"
        with pytest.raises(CircuitOpenError) as exc_info:
            breaker.allow()
        assert exc_info.value.retry_after_s > 0
        assert exc_info.value.model == "streaming"
        assert breaker.describe()["rejected"] == 1

    def test_old_failures_age_out_of_the_window(self):
        breaker, clock = self._breaker(failure_threshold=2, window_s=10.0)
        breaker.record_failure()
        clock.now += 11.0  # the first failure leaves the window
        breaker.record_failure()
        assert breaker.state() == "closed"

    def test_half_open_probe_success_closes(self):
        breaker, clock = self._breaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        assert breaker.state() == "open"
        clock.now += 5.1
        breaker.allow()  # the single half-open probe
        assert breaker.state() == "half_open"
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # a second concurrent probe is rejected
        breaker.record_success()
        assert breaker.state() == "closed"
        breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._breaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        clock.now += 5.1
        breaker.allow()
        breaker.record_failure()
        assert breaker.state() == "open"
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_describe_shape(self):
        breaker, _ = self._breaker()
        info = breaker.describe()
        for key in (
            "state",
            "recent_failures",
            "failure_threshold",
            "window_s",
            "cooldown_s",
            "rejected",
        ):
            assert key in info


# ---------------------------------------------------------------------- #
# Checkpoints
# ---------------------------------------------------------------------- #


class TestCheckpointStore:
    def test_records_latest_at_interval(self):
        store = CheckpointStore(interval=2)
        store.record(1, [b"w1"])
        assert store.latest() is None  # 1 % 2 != 0
        store.record(2, [b"w1", b"w2"])
        latest = store.latest()
        assert latest is not None
        assert latest.iteration == 2
        assert latest.witnesses == (b"w1", b"w2")
        assert store.snapshots == 1

    def test_engine_snapshots_successful_iterations(self):
        problem = _build_problem("lp")
        store = CheckpointStore()
        with checkpointing(store):
            result = solve(problem, model="streaming", **SOLVE_KWARGS)
        assert store.snapshots == result.successful_iterations
        latest = store.latest()
        assert latest is not None
        assert len(latest.witnesses) == result.successful_iterations

    def test_none_store_is_a_no_op(self):
        with checkpointing(None) as installed:
            assert installed is None


# ---------------------------------------------------------------------- #
# Supervised transport: crash, restart, degrade, terminal
# ---------------------------------------------------------------------- #

SUPERVISED = TransportConfig(
    kind="process", max_workers=2, supervised=True, reuse_pool=False
)


def _supervised_session(model: str = "coordinator", **transport_overrides):
    cfg = {
        "kind": "process",
        "max_workers": 2,
        "supervised": True,
        "reuse_pool": False,
        **transport_overrides,
    }
    return Session(
        model=model,
        transport=cfg,
        **SOLVE_KWARGS,
        **_model_overrides(model),
    )


class TestSupervisedTransport:
    def test_resolve_transport_builds_supervised_pool(self):
        session = _supervised_session()
        try:
            health = session.transport_health()
            assert health["kind"] == "process"
            assert health["supervised"] is True
            assert health["degraded"] is False
            assert [w["alive"] for w in health["workers"]] == [True, True]
        finally:
            session.close()

    def test_crash_restart_is_bit_identical(self):
        problem = _build_problem("lp")
        baseline = _solve(problem, "coordinator", None)
        session = _supervised_session()
        try:
            transport = session._transport
            plan = FaultPlan([FaultSpec(kind="worker_crash", at=1, node=1)])
            transport.attach_fault_plan(plan)
            result = session.solve(problem)
            assert_bit_identical(result, baseline)
            assert ("dispatch", 1, "worker_crash") in plan.fired
            assert transport.total_restarts >= 1
            assert not transport.degraded
            assert result.resources.transport_retries >= 1
            # The healed pool keeps serving: a second solve still matches.
            transport.attach_fault_plan(None)
            session.reset()
            assert_bit_identical(session.solve(problem), baseline)
            assert session.transport_health()["total_restarts"] >= 1
        finally:
            session.close()

    def test_exhausted_restarts_degrade_in_process(self):
        problem = _build_problem("meb")
        baseline = _solve(problem, "coordinator", None)
        session = _supervised_session(max_restarts=0)
        try:
            transport = session._transport
            plan = FaultPlan([FaultSpec(kind="worker_crash", at=1)])
            transport.attach_fault_plan(plan)
            result = session.solve(problem)
            assert_bit_identical(result, baseline)
            assert transport.degraded
            assert result.metadata.get("transport_degraded") is True
            assert session.transport_health()["degraded"] is True
        finally:
            session.close()

    def test_terminal_failure_is_typed_not_a_hang(self):
        problem = _build_problem("lp")
        session = _supervised_session(max_restarts=0)
        try:
            transport = session._transport
            transport.degrade_enabled = False
            plan = FaultPlan([FaultSpec(kind="worker_crash", at=1)])
            transport.attach_fault_plan(plan)
            with pytest.raises(TransportFailure) as exc_info:
                session.solve(problem)
            assert exc_info.value.retryable is False
            # Typed failures are still CommunicationErrors for old handlers.
            assert isinstance(exc_info.value, CommunicationError)
        finally:
            session.close()

    def test_ping_heals_dead_workers(self):
        session = _supervised_session()
        try:
            transport = session._transport
            transport._ensure_started()
            transport.kill_worker(0)
            assert transport.ping() == [True, True]
            assert transport.total_restarts >= 1
        finally:
            session.close()


class TestSolveManyWorkerDeath:
    def test_batch_survives_worker_death_bit_identically(self):
        problems = [_build_problem(f) for f in ("lp", "meb", "svm", "qp")]
        with Session(
            model="coordinator", **SOLVE_KWARGS, **_model_overrides("coordinator")
        ) as fault_free:
            baseline = list(fault_free.solve_many(problems, max_workers=2).results)
        session = _supervised_session()
        try:
            transport = session._transport
            plan = FaultPlan([FaultSpec(kind="worker_crash", at=2)])
            transport.attach_fault_plan(plan)
            batch = session.solve_many(problems, max_workers=2)
            for got, want in zip(batch.results, baseline):
                assert_bit_identical(got, want)
            assert any(k == "worker_crash" for _, _, k in plan.fired)
            assert transport.total_restarts >= 1
            # The retry shows up in the usage accounting of the solve that
            # absorbed the crash.
            assert (
                sum(r.resources.transport_retries for r in batch.results) >= 1
            )
        finally:
            session.close()


# ---------------------------------------------------------------------- #
# Service: retry loop, checkpoint resume, circuit breaker
# ---------------------------------------------------------------------- #


class TestServiceResilience:
    def _service(self, **kwargs):
        return SolverService(
            model="streaming",
            max_workers=1,
            **SOLVE_KWARGS,
            **kwargs,
        )

    def test_retry_resumes_from_checkpoint(self):
        problem = _build_problem("lp")
        baseline = solve(problem, model="streaming", **SOLVE_KWARGS)
        service = self._service(
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0)
        )
        calls = {"n": 0, "warm": []}
        real = service.session.run_cold

        def flaky(problem, config=None, budget=None, warm_witnesses=None):
            calls["n"] += 1
            calls["warm"].append(
                None if warm_witnesses is None else len(warm_witnesses)
            )
            result = real(
                problem, config, budget, warm_witnesses=warm_witnesses
            )
            if calls["n"] == 1:
                # The solve finished but the transport died before the
                # result was read back: retryable from the service's view.
                raise TransportFailure("injected pipe loss", retryable=True)
            return result

        service.session.run_cold = flaky
        try:
            ticket = service.submit(problem)
            result = ticket.result(timeout=60)
            assert calls["n"] == 2
            assert calls["warm"][0] is None
            assert calls["warm"][1] is not None and calls["warm"][1] > 0
            # The resumed solve certifies the same answer (warm == cold).
            assert result.value == baseline.value
            assert result.basis_indices == baseline.basis_indices
            assert result.resources.transport_retries == 1
            assert result.resources.checkpoint_resumes == 1
            stats = service.stats()
            assert stats["transport_retries"] == 1
            assert stats["checkpoint_resumes"] == 1
            assert stats["circuit"]["state"] == "closed"
        finally:
            service.shutdown()

    def test_terminal_failure_propagates_and_counts(self):
        problem = _build_problem("lp")
        service = self._service(
            retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0)
        )

        def doomed(problem, config=None, budget=None, warm_witnesses=None):
            raise TransportFailure("pool is gone", retryable=False)

        service.session.run_cold = doomed
        try:
            ticket = service.submit(problem)
            with pytest.raises(TransportFailure):
                ticket.result(timeout=30)
            assert ticket.status == "failed"
            assert service.stats()["circuit"]["recent_failures"] >= 1
        finally:
            service.shutdown()

    def test_open_circuit_rejects_submissions(self):
        problem = _build_problem("lp")
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=60.0, model="streaming"
        )
        service = self._service(circuit_breaker=breaker)
        try:
            breaker.record_failure()
            with pytest.raises(CircuitOpenError) as exc_info:
                service.submit(problem)
            assert exc_info.value.retry_after_s > 0
        finally:
            service.shutdown()


class TestSessionPoolReplace:
    def test_replace_swaps_in_a_fresh_session(self):
        pool = SessionPool(**SOLVE_KWARGS)
        try:
            first = pool.get("streaming")
            replacement = pool.replace("streaming")
            assert replacement is not first
            assert pool.get("streaming") is replacement
            assert pool.replacements() == {"streaming": 1}
            # The poisoned session was closed; the replacement solves.
            problem = _build_problem("lp")
            result = replacement.solve(problem)
            assert result.value is not None
        finally:
            pool.close()


# ---------------------------------------------------------------------- #
# Wire forms
# ---------------------------------------------------------------------- #


class TestResilienceWire:
    def test_error_body_advertises_retryability(self):
        body = error_body("transport_failure", "boom", retryable=True)
        assert body["error"]["retryable"] is True
        assert "retry_after" not in body["error"]
        body = error_body("circuit_open", "cooling", retry_after=2.5)
        assert body["error"]["retry_after"] == 2.5
        # Every body carries the flag, defaulting to terminal.
        assert error_body("internal", "x")["error"]["retryable"] is False

    def test_transport_failure_round_trip(self):
        exc = TransportFailure("worker 1 died", retryable=True, worker=1, attempts=2)
        body = exception_to_error(exc)
        assert body["error"]["type"] == "transport_failure"
        assert body["error"]["retryable"] is True
        back = error_to_exception(body)
        assert isinstance(back, TransportFailure)
        assert back.retryable is True
        assert back.worker == 1
        assert back.attempts == 2

    def test_circuit_open_round_trip(self):
        exc = CircuitOpenError("cooling down", retry_after_s=3.0, model="mpc")
        body = exception_to_error(exc)
        assert body["error"]["type"] == "circuit_open"
        assert body["error"]["retryable"] is True
        assert body["error"]["retry_after"] == 3.0
        back = error_to_exception(body)
        assert isinstance(back, CircuitOpenError)
        assert back.retry_after_s == 3.0
        assert back.model == "mpc"

    def test_sse_event_ids(self):
        frame = sse_event("round", {"i": 1}, event_id=7).decode()
        assert frame.startswith("id: 7\n")
        assert "event: round\n" in frame
        # Frames without an id stay exactly as before.
        assert sse_event("round", {"i": 1}).decode().startswith("event: round\n")


class TestTransportConfigResilience:
    def test_supervised_fields_validate(self):
        with pytest.raises(InvalidConfigError):
            TransportConfig(kind="process", max_restarts=-1)
        with pytest.raises(InvalidConfigError):
            TransportConfig(kind="process", restart_backoff_s=-0.5)

    def test_mapping_coercion(self):
        from repro.api.config import StreamingConfig

        cfg = StreamingConfig(
            transport={"kind": "process", "supervised": True, "max_workers": 2}
        )
        assert isinstance(cfg.transport, TransportConfig)
        assert cfg.transport.supervised is True
        with pytest.raises(InvalidConfigError, match="TransportConfig"):
            StreamingConfig(transport={"kind": "process", "turbo": True})
