"""Tests for the sequential reference implementation of Algorithm 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clarkson import (
    ClarksonParameters,
    clarkson_solve,
    practical_parameters,
    resolve_sampling,
    solve_small_problem,
)
from repro.workloads import (
    make_separable_classification,
    random_feasible_lp,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)
from repro.problems import MinimumEnclosingBall

from tests.conftest import assert_objective_close, fast_params


class TestResolveSampling:
    def test_defaults_use_lemma_bound(self):
        problem = random_feasible_lp(100, 2, seed=0).problem
        size, eps = resolve_sampling(problem, ClarksonParameters(r=2))
        assert size == 100  # the Lemma 2.2 bound exceeds n at this scale
        assert eps == pytest.approx(1.0 / (10 * 3 * 10.0))

    def test_overrides_respected(self):
        problem = random_feasible_lp(100, 2, seed=0).problem
        params = ClarksonParameters(r=2, sample_size=37, success_threshold=0.05)
        size, eps = resolve_sampling(problem, params)
        assert size == 37
        assert eps == pytest.approx(0.05)

    def test_sample_size_capped_at_n(self):
        problem = random_feasible_lp(50, 2, seed=0).problem
        params = ClarksonParameters(r=2, sample_size=500)
        size, _ = resolve_sampling(problem, params)
        assert size == 50


class TestPracticalParameters:
    def test_scaling_with_n(self):
        small = practical_parameters(random_feasible_lp(1000, 2, seed=0).problem, r=2)
        large = practical_parameters(random_feasible_lp(16000, 2, seed=0).problem, r=2)
        # Sample size grows roughly like sqrt(n) for r=2 (up to the log factor).
        assert large.sample_size > small.sample_size
        assert large.sample_size < 16000

    def test_threshold_small_enough_for_iteration_bound(self):
        problem = random_feasible_lp(5000, 2, seed=0).problem
        params = practical_parameters(problem, r=2)
        n, nu, r = 5000, 3, 2
        assert params.success_threshold <= np.log(n) / (2 * nu * r * n ** 0.5) + 1e-12

    def test_invalid_r(self):
        problem = random_feasible_lp(100, 2, seed=0).problem
        with pytest.raises(ValueError):
            practical_parameters(problem, r=0)


class TestSolveSmallProblem:
    def test_matches_direct_solve(self):
        problem = random_feasible_lp(80, 2, seed=1).problem
        result = solve_small_problem(problem)
        assert_objective_close(result.value, problem.solve().value)
        assert result.metadata["algorithm"] == "direct"


class TestClarksonSolveLP:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact_optimum(self, seed):
        instance = random_polytope_lp(1500, 2, seed=seed)
        exact = instance.problem.solve()
        result = clarkson_solve(instance.problem, params=fast_params(), rng=seed)
        assert_objective_close(result.value, exact.value)

    def test_final_witness_is_feasible(self):
        instance = random_feasible_lp(1200, 3, seed=5)
        result = clarkson_solve(instance.problem, params=fast_params(sample_size=500), rng=1)
        assert instance.problem.is_feasible(result.witness)

    def test_small_problem_falls_back_to_direct(self):
        problem = random_feasible_lp(50, 2, seed=2).problem
        result = clarkson_solve(problem, params=ClarksonParameters(r=2), rng=0)
        assert result.metadata["r"] == 2
        assert result.iterations == 1

    def test_iteration_trace_recorded(self):
        instance = random_polytope_lp(1500, 2, seed=3)
        result = clarkson_solve(instance.problem, params=fast_params(), rng=2)
        assert len(result.trace) == result.iterations
        assert result.trace[-1].num_violators == 0
        assert all(rec.sample_size > 0 for rec in result.trace)

    def test_successful_iterations_bounded(self):
        instance = random_polytope_lp(2000, 2, seed=4)
        params = practical_parameters(instance.problem, r=2)
        result = clarkson_solve(instance.problem, params=params, rng=3)
        nu, r = 3, 2
        assert result.successful_iterations <= 4 * nu * r

    def test_space_is_sublinear_with_small_samples(self):
        instance = random_polytope_lp(3000, 2, seed=5)
        result = clarkson_solve(instance.problem, params=fast_params(sample_size=300), rng=4)
        assert result.resources.space_peak_items < 3000

    def test_classic_boost_needs_more_iterations(self):
        instance = random_polytope_lp(2000, 2, seed=6)
        fast = clarkson_solve(
            instance.problem, params=fast_params(sample_size=300, threshold=0.02), rng=5
        )
        slow = clarkson_solve(
            instance.problem,
            params=ClarksonParameters(
                r=2, sample_size=300, success_threshold=0.02, boost=2.0, max_iterations=2000
            ),
            rng=5,
        )
        assert_objective_close(fast.value, slow.value)
        assert slow.successful_iterations >= fast.successful_iterations

    def test_empty_problem_rejected(self):
        problem = random_feasible_lp(10, 2, seed=0).problem
        problem.a = problem.a[:0]
        problem.b = problem.b[:0]
        with pytest.raises(ValueError):
            clarkson_solve(problem)


class TestClarksonSolveOtherProblems:
    def test_svm(self):
        data = make_separable_classification(1200, 2, seed=7, margin=0.4)
        problem = svm_problem(data)
        exact = problem.solve()
        result = clarkson_solve(problem, params=fast_params(sample_size=250), rng=6)
        assert result.value.squared_norm == pytest.approx(
            exact.value.squared_norm, rel=1e-3
        )

    def test_meb(self):
        points = uniform_ball_points(1500, 2, radius=3.0, seed=8)
        problem = MinimumEnclosingBall(points=points)
        exact = problem.solve()
        result = clarkson_solve(problem, params=fast_params(sample_size=250), rng=7)
        assert result.value.radius == pytest.approx(exact.value.radius, rel=1e-3)
