"""Unit tests for the explicit and implicit (basis-derived) weight oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import ExplicitWeights, ImplicitWeights, boost_factor


class TestBoostFactor:
    def test_value(self):
        assert boost_factor(10_000, 2) == pytest.approx(100.0)

    def test_r_one_is_n(self):
        assert boost_factor(500, 1) == pytest.approx(500.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            boost_factor(0, 2)
        with pytest.raises(ValueError):
            boost_factor(10, 0)


class TestExplicitWeights:
    def test_uniform_start(self):
        weights = ExplicitWeights.uniform(5, boost=10.0)
        assert len(weights) == 5
        assert np.allclose(weights.weights(), 1.0)

    def test_multiply_boosts_selected(self):
        weights = ExplicitWeights.uniform(4, boost=10.0)
        weights.multiply([1, 3])
        w = weights.weights()
        assert w[1] == pytest.approx(1.0)  # normalised to max
        assert w[0] == pytest.approx(0.1)
        assert w[3] == pytest.approx(1.0)

    def test_multiply_empty_noop(self):
        weights = ExplicitWeights.uniform(3, boost=2.0)
        weights.multiply([])
        assert np.allclose(weights.weights(), 1.0)

    def test_fraction(self):
        weights = ExplicitWeights.uniform(4, boost=3.0)
        assert weights.fraction([0, 1]) == pytest.approx(0.5)
        weights.multiply([0])
        # Weights are now 3, 1, 1, 1: indices {0} carry 0.5 of the total.
        assert weights.fraction([0]) == pytest.approx(0.5)

    def test_fraction_empty_is_zero(self):
        weights = ExplicitWeights.uniform(4, boost=3.0)
        assert weights.fraction([]) == 0.0

    def test_total_weight_log(self):
        weights = ExplicitWeights.uniform(4, boost=np.e)
        assert weights.total_weight_log() == pytest.approx(np.log(4.0))
        weights.multiply([0])
        assert weights.total_weight_log() == pytest.approx(np.log(3.0 + np.e))

    def test_no_overflow_with_many_boosts(self):
        weights = ExplicitWeights.uniform(10, boost=1e6)
        for _ in range(100):
            weights.multiply([0])
        w = weights.weights()
        assert np.isfinite(w).all()
        assert w[0] == pytest.approx(1.0)
        assert weights.fraction([0]) == pytest.approx(1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ExplicitWeights.uniform(0, boost=2.0)
        with pytest.raises(ValueError):
            ExplicitWeights.uniform(3, boost=1.0)


class TestImplicitWeights:
    @staticmethod
    def _make(boost=4.0):
        # A basis here is just a threshold; constraint i "violates" basis t
        # when i >= t.  This gives an easy closed form for the exponents.
        return ImplicitWeights(boost=boost, violates=lambda t, i: i >= t)

    def test_no_bases_means_uniform(self):
        weights = self._make()
        assert weights.exponent(3) == 0
        assert weights.weight(3) == pytest.approx(1.0)

    def test_exponent_counts_violated_bases(self):
        weights = self._make()
        weights.record_basis(2)
        weights.record_basis(5)
        assert weights.exponent(1) == 0
        assert weights.exponent(3) == 1
        assert weights.exponent(7) == 2
        assert weights.num_bases == 2

    def test_weight_relative_to_reference(self):
        weights = self._make(boost=3.0)
        weights.record_basis(0)
        assert weights.weight(5, reference_exponent=1) == pytest.approx(1.0)
        assert weights.weight(5, reference_exponent=0) == pytest.approx(3.0)

    def test_log_weight(self):
        weights = self._make(boost=np.e)
        weights.record_basis(0)
        weights.record_basis(0)
        assert weights.log_weight(5) == pytest.approx(2.0)

    def test_matches_explicit_weights(self):
        """The streaming implicit weights equal the explicit ones for the same history."""
        boost = 7.0
        explicit = ExplicitWeights.uniform(10, boost=boost)
        implicit = self._make(boost=boost)
        history = [4, 8, 2]
        for threshold in history:
            violators = [i for i in range(10) if i >= threshold]
            explicit.multiply(violators)
            implicit.record_basis(threshold)
        explicit_w = explicit.weights()
        max_exp = max(implicit.exponent(i) for i in range(10))
        implicit_w = np.array([implicit.weight(i, reference_exponent=max_exp) for i in range(10)])
        assert np.allclose(explicit_w / explicit_w.sum(), implicit_w / implicit_w.sum())
