"""Unit tests for the randomness helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import as_generator, derive_seed, spawn


class TestAsGenerator:
    def test_integer_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))


class TestSpawn:
    def test_count(self):
        children = spawn(as_generator(0), 4)
        assert len(children) == 4

    def test_children_are_independent_and_reproducible(self):
        first = [g.random(3) for g in spawn(as_generator(7), 3)]
        second = [g.random(3) for g in spawn(as_generator(7), 3)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)
        assert not np.allclose(first[0], first[1])

    def test_zero_children(self):
        assert spawn(as_generator(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)


class TestDeriveSeed:
    def test_deterministic_given_same_generator_state(self):
        assert derive_seed(5, salt=1) == derive_seed(5, salt=1)

    def test_salt_changes_seed(self):
        assert derive_seed(5, salt=1) != derive_seed(5, salt=2)

    def test_in_range(self):
        seed = derive_seed(123, salt=9)
        assert 0 <= seed < 2**63 - 1
