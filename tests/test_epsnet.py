"""Unit and property-based tests for the eps-net machinery (Lemma 2.2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.epsnet import (
    EpsNetSpec,
    algorithm_epsilon,
    epsnet_sample_size,
    is_eps_net,
)


class TestSampleSizeFormula:
    def test_matches_closed_form(self):
        eps, lam, delta = 0.1, 3.0, 1.0 / 3.0
        expected = max(
            (8 * lam / eps) * math.log(8 * lam / eps), (4 / eps) * math.log(2 / delta)
        )
        assert epsnet_sample_size(eps, lam, delta) == int(math.ceil(expected))

    def test_monotone_in_epsilon(self):
        sizes = [epsnet_sample_size(eps, 3, 0.3) for eps in (0.5, 0.1, 0.01)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_monotone_in_vc_dimension(self):
        assert epsnet_sample_size(0.05, 2, 0.3) < epsnet_sample_size(0.05, 10, 0.3)

    def test_smaller_failure_probability_needs_more_samples(self):
        # The delta term only dominates for small VC dimension / tiny delta.
        assert epsnet_sample_size(0.1, 1, 1e-12) > epsnet_sample_size(0.1, 1, 0.5)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_epsilon_rejected(self, eps):
        with pytest.raises(ValueError):
            epsnet_sample_size(eps, 3, 0.3)

    def test_invalid_vc_dimension_rejected(self):
        with pytest.raises(ValueError):
            epsnet_sample_size(0.1, 0.5, 0.3)

    @pytest.mark.parametrize("delta", [0.0, 1.0])
    def test_invalid_delta_rejected(self, delta):
        with pytest.raises(ValueError):
            epsnet_sample_size(0.1, 3, delta)


class TestAlgorithmEpsilon:
    def test_formula(self):
        assert algorithm_epsilon(10000, 3, 2) == pytest.approx(1.0 / (10 * 3 * 100.0))

    def test_r_one_means_epsilon_over_n(self):
        assert algorithm_epsilon(1000, 2, 1) == pytest.approx(1.0 / (10 * 2 * 1000))

    def test_larger_r_gives_larger_epsilon(self):
        assert algorithm_epsilon(10000, 3, 4) > algorithm_epsilon(10000, 3, 2)

    @pytest.mark.parametrize("bad", [(0, 3, 2), (100, 0, 2), (100, 3, 0)])
    def test_invalid_arguments(self, bad):
        with pytest.raises(ValueError):
            algorithm_epsilon(*bad)


class TestEpsNetSpec:
    def test_for_algorithm_caps_at_n(self):
        spec = EpsNetSpec.for_algorithm(
            num_constraints=100, combinatorial_dimension=3, vc_dimension=3, r=2
        )
        assert spec.sample_size() <= 100

    def test_sample_scale_shrinks_sample(self):
        base = EpsNetSpec(epsilon=0.01, vc_dimension=3)
        scaled = EpsNetSpec(epsilon=0.01, vc_dimension=3, sample_scale=0.1)
        assert scaled.sample_size() < base.sample_size()

    def test_sample_size_at_least_one(self):
        spec = EpsNetSpec(epsilon=0.9, vc_dimension=1, sample_scale=1e-9, max_sample_size=10)
        assert spec.sample_size() >= 1


class TestIsEpsNet:
    def test_light_point_vacuously_satisfied(self):
        # The excluding constraints carry 1% of the weight; nothing is required.
        assert is_eps_net([5], [1.0] * 100, epsilon=0.5, excludes=[0])

    def test_heavy_point_requires_witness(self):
        weights = [1.0] * 10
        excludes = [0, 1, 2, 3, 4]  # half the weight
        assert is_eps_net([3], weights, epsilon=0.2, excludes=excludes)
        assert not is_eps_net([7], weights, epsilon=0.2, excludes=excludes)

    def test_predicate_form(self):
        weights = [1.0] * 10
        assert is_eps_net([1], weights, epsilon=0.2, excludes=lambda i: i < 5)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            is_eps_net([0], [1.0], epsilon=0.0, excludes=[0])

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            is_eps_net([0], [0.0, 0.0], epsilon=0.5, excludes=[0])


class TestEpsNetPropertyEmpirically:
    """Sampling m(eps, lambda, delta) points from intervals yields an eps-net.

    The set system is the family of sub-intervals of [0, 1] over a ground set
    of weighted points (VC dimension 2): for heavy excluded ranges, the
    sample must hit them.
    """

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), epsilon=st.sampled_from([0.1, 0.2, 0.3]))
    def test_random_interval_systems(self, seed, epsilon):
        rng = np.random.default_rng(seed)
        n = 300
        weights = rng.uniform(0.5, 2.0, size=n)
        positions = rng.random(n)
        m = epsnet_sample_size(epsilon, 2.0, 0.05)
        m = min(m, n)
        probs = weights / weights.sum()
        sample = rng.choice(n, size=m, replace=True, p=probs)
        # Pick a few random "query intervals"; is_eps_net must hold for each
        # heavy one (with high probability; failure probability is 5% per net
        # and we only assert on a majority to keep the test deterministic-ish).
        failures = 0
        for _ in range(10):
            lo, hi = np.sort(rng.random(2))
            excluded = [i for i in range(n) if lo <= positions[i] <= hi]
            if not is_eps_net(sample, weights, epsilon, excluded):
                failures += 1
        assert failures <= 2
