"""Smoke tests for the canonical perf suite (`benchmarks/run_suite.py`)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SUITE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "run_suite.py"


@pytest.fixture(scope="module")
def run_suite():
    spec = importlib.util.spec_from_file_location("run_suite", _SUITE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules["run_suite"] = module
    spec.loader.exec_module(module)
    return module


def test_grid_covers_all_cells(run_suite):
    grid = run_suite.build_grid("small", list(run_suite.MODELS), list(run_suite.PROBLEMS))
    assert len(grid) == 16
    assert len({s.scenario_id for s in grid}) == 16


def test_scenario_seed_is_process_stable(run_suite):
    # Would fail with salted hash(): the seed must be a pure function of the key.
    assert run_suite._scenario_seed("lp", "streaming", 2000) == run_suite._scenario_seed(
        "lp", "streaming", 2000
    )
    assert run_suite._scenario_seed("lp", "streaming", 2000) != run_suite._scenario_seed(
        "svm", "streaming", 2000
    )


def test_single_scenario_emits_schema(run_suite, tmp_path):
    # The true small tier: large enough that the sampling path (and with it
    # the oracle and cache counters) is exercised, small enough to stay fast.
    out = tmp_path / "BENCH.json"
    code = run_suite.main(
        [
            "--tier", "small", "--repeats", "1",
            "--problems", "qp", "--models", "sequential",
            "-o", str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == run_suite.SCHEMA
    assert report["geomean_wall_time_s"] > 0
    (scenario,) = report["scenarios"]
    assert scenario["id"] == "qp:sequential:small"
    assert scenario["wall_time_s"] > 0
    assert scenario["iterations"] >= 1
    assert scenario["oracle_calls"] >= 1
    assert scenario["peak_bytes"] > 0
    assert scenario["cache_hits"] + scenario["cache_misses"] >= 1


def test_baseline_gate_passes_and_fails(run_suite, tmp_path):
    report = {
        "scenarios": [
            {"id": "qp:sequential:small", "wall_time_s": 0.10},
            {"id": "lp:streaming:small", "wall_time_s": 0.05},
        ]
    }
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "scenarios": [
                    {"id": "qp:sequential:small", "wall_time_s": 0.08},
                    {"id": "lp:streaming:small", "wall_time_s": 0.06},
                ]
            }
        )
    )
    assert run_suite.compare_to_baseline(report, str(baseline_path), 2.0) == 0
    report["scenarios"][0]["wall_time_s"] = 0.50  # > 2x of 0.08
    assert run_suite.compare_to_baseline(report, str(baseline_path), 2.0) == 1


def test_missing_baseline_entry_fails_the_gate(run_suite, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps({"scenarios": [{"id": "a", "wall_time_s": 0.10}]})
    )
    report = {
        "scenarios": [
            {"id": "a", "wall_time_s": 0.10},
            {"id": "brand-new-cell", "wall_time_s": 0.10},
        ]
    }
    assert run_suite.compare_to_baseline(report, str(baseline_path), 2.0) == 1


def test_noise_floor_exempts_tiny_scenarios(run_suite, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps({"scenarios": [{"id": "a", "wall_time_s": 0.001}]})
    )
    # 4x of a 1 ms baseline is still under the 15 ms floor's 2x budget.
    report = {"scenarios": [{"id": "a", "wall_time_s": 0.004}]}
    assert run_suite.compare_to_baseline(report, str(baseline_path), 2.0) == 0
    # ... but blowing past the floor-adjusted budget still fails.
    report = {"scenarios": [{"id": "a", "wall_time_s": 0.200}]}
    assert run_suite.compare_to_baseline(report, str(baseline_path), 2.0) == 1


def test_scenario_emits_communication_columns(run_suite, tmp_path):
    out = tmp_path / "BENCH.json"
    code = run_suite.main(
        [
            "--tier", "small", "--repeats", "1",
            "--problems", "lp", "--models", "coordinator",
            "-o", str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    (scenario,) = report["scenarios"]
    assert scenario["rounds"] >= 1
    assert scenario["total_comm_bits"] > 0
    assert scenario["max_message_bits"] > 0
    assert scenario["max_load_bits"] > 0
    assert report["total_comm_bits"] == scenario["total_comm_bits"]


def test_communication_gate_bits_and_rounds(run_suite, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "scenarios": [
                    {
                        "id": "a",
                        "wall_time_s": 0.10,
                        "rounds": 6,
                        "total_comm_bits": 1000,
                    }
                ]
            }
        )
    )
    ok = {
        "scenarios": [
            {"id": "a", "wall_time_s": 0.10, "rounds": 7, "total_comm_bits": 1900}
        ]
    }
    assert run_suite.compare_to_baseline(ok, str(baseline_path), 2.0) == 0
    # > 2x the baseline's measured bits fails even at identical wall time.
    too_many_bits = {
        "scenarios": [
            {"id": "a", "wall_time_s": 0.10, "rounds": 6, "total_comm_bits": 2100}
        ]
    }
    assert run_suite.compare_to_baseline(too_many_bits, str(baseline_path), 2.0) == 1
    # More than one extra round fails too.
    too_many_rounds = {
        "scenarios": [
            {"id": "a", "wall_time_s": 0.10, "rounds": 8, "total_comm_bits": 1000}
        ]
    }
    assert run_suite.compare_to_baseline(too_many_rounds, str(baseline_path), 2.0) == 1


def test_communication_gate_skips_schema_v1_baselines(run_suite, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps({"scenarios": [{"id": "a", "wall_time_s": 0.10}]})
    )
    report = {
        "scenarios": [
            {"id": "a", "wall_time_s": 0.10, "rounds": 99, "total_comm_bits": 10**9}
        ]
    }
    assert run_suite.compare_to_baseline(report, str(baseline_path), 2.0) == 0
