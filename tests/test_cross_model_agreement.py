"""Cross-model agreement: all four drivers agree on shared seeded instances.

The paper's point is that ONE meta-algorithm instantiates in every model;
these tests pin that down operationally: the sequential, streaming,
coordinator, and MPC drivers must return the same optimum value (within
tolerance) and a witness feasible for the reported basis on the same LP /
MEB / SVM / QP instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    coordinator_clarkson_solve,
    mpc_clarkson_solve,
    streaming_clarkson_solve,
)
from repro.core.clarkson import clarkson_solve
from repro.problems import ConvexQuadraticProgram, MinimumEnclosingBall
from repro.workloads import (
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

from tests.conftest import fast_params


def _lp_instance():
    return random_polytope_lp(1400, 2, seed=31).problem


def _meb_instance():
    return MinimumEnclosingBall(points=uniform_ball_points(1400, 2, radius=2.5, seed=32))


def _svm_instance():
    data = make_separable_classification(1200, 2, seed=33, margin=0.4)
    return svm_problem(data)


def _qp_instance():
    # A strictly convex QP whose constraints are random halfspaces around a
    # shifted quadratic bowl (feasible by construction: x = 5 * ones works).
    rng = np.random.default_rng(34)
    d = 2
    g = rng.normal(size=(1200, d))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    h = g.sum(axis=1) * 5.0 - rng.uniform(0.5, 4.0, size=1200)
    return ConvexQuadraticProgram(
        q_matrix=np.eye(d) * 2.0, q_vector=np.ones(d), g_matrix=g, h_vector=h
    )


def _scalar(value):
    for attr in ("objective", "radius", "squared_norm"):
        if hasattr(value, attr):
            return float(getattr(value, attr))
    return float(value)


@pytest.mark.parametrize(
    "make_problem", [_lp_instance, _meb_instance, _svm_instance, _qp_instance],
    ids=["lp", "meb", "svm", "qp"],
)
def test_all_four_models_agree(make_problem):
    problem = make_problem()
    params = fast_params(sample_size=350)
    exact = _scalar(problem.solve().value)

    results = {
        "sequential": clarkson_solve(problem, params=params, rng=1),
        "streaming": streaming_clarkson_solve(problem, r=2, params=params, rng=2),
        "coordinator": coordinator_clarkson_solve(
            problem, num_sites=4, r=2, params=params, rng=3
        ),
        "mpc": mpc_clarkson_solve(
            problem, delta=0.5, num_machines=8, params=params, rng=4
        ),
    }

    for name, result in results.items():
        value = _scalar(result.value)
        assert value == pytest.approx(exact, rel=1e-3, abs=1e-6), (name, value, exact)
        # The reported basis must certify the value: re-solving the basis
        # alone reproduces the optimum.
        basis_value = _scalar(problem.solve_subset(result.basis_indices).value)
        assert basis_value == pytest.approx(value, rel=1e-3, abs=1e-6), name
        # The witness must satisfy every basis constraint.
        assert problem.violating_indices(
            result.witness, np.asarray(result.basis_indices, dtype=int)
        ).size == 0, name


@pytest.mark.parametrize(
    "make_problem", [_lp_instance, _meb_instance], ids=["lp", "meb"]
)
def test_engine_metadata_consistent_across_models(make_problem):
    """All drivers resolve the same sampling regime for the same parameters."""
    problem = make_problem()
    params = fast_params(sample_size=350)
    seq = clarkson_solve(problem, params=params, rng=1)
    stream = streaming_clarkson_solve(problem, r=2, params=params, rng=2)
    coord = coordinator_clarkson_solve(problem, num_sites=4, r=2, params=params, rng=3)
    mpc = mpc_clarkson_solve(problem, delta=0.5, num_machines=8, params=params, rng=4)
    sizes = {r.metadata["sample_size"] for r in (seq, stream, coord, mpc)}
    epsilons = {r.metadata["epsilon"] for r in (seq, stream, coord, mpc)}
    boosts = {r.metadata["boost"] for r in (seq, stream, coord, mpc)}
    assert len(sizes) == 1 and len(epsilons) == 1 and len(boosts) == 1
