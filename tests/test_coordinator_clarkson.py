"""Integration tests for the coordinator-model implementation (Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import coordinator_clarkson_solve, ship_all_coordinator
from repro.core.accounting import BitCostModel
from repro.models.partition import partition_indices
from repro.problems import MinimumEnclosingBall
from repro.workloads import (
    make_separable_classification,
    random_feasible_lp,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

from tests.conftest import assert_objective_close, fast_params


class TestCorrectness:
    @pytest.mark.parametrize("num_sites", [2, 4, 8])
    def test_matches_exact_optimum(self, num_sites):
        instance = random_polytope_lp(1500, 2, seed=num_sites)
        exact = instance.problem.solve()
        result = coordinator_clarkson_solve(
            instance.problem, num_sites=num_sites, r=2, params=fast_params(), rng=1
        )
        assert_objective_close(result.value, exact.value)
        assert result.resources.machine_count == num_sites

    @pytest.mark.parametrize("method", ["random", "skewed", "contiguous"])
    def test_partition_insensitive(self, method):
        instance = random_polytope_lp(1500, 2, seed=20)
        exact = instance.problem.solve()
        partition = partition_indices(1500, 5, method=method, seed=3)
        result = coordinator_clarkson_solve(
            instance.problem, partition=partition, r=2, params=fast_params(), rng=2
        )
        assert_objective_close(result.value, exact.value)

    def test_svm(self):
        data = make_separable_classification(1000, 2, seed=4, margin=0.4)
        problem = svm_problem(data)
        exact = problem.solve()
        result = coordinator_clarkson_solve(
            problem, num_sites=4, r=2, params=fast_params(sample_size=250), rng=3
        )
        assert result.value.squared_norm == pytest.approx(exact.value.squared_norm, rel=1e-3)

    def test_meb(self):
        points = uniform_ball_points(1200, 2, radius=2.0, seed=5)
        problem = MinimumEnclosingBall(points=points)
        exact = problem.solve()
        result = coordinator_clarkson_solve(
            problem, num_sites=4, r=2, params=fast_params(sample_size=250), rng=4
        )
        assert result.value.radius == pytest.approx(exact.value.radius, rel=1e-3)

    def test_matches_ship_all_baseline(self):
        instance = random_feasible_lp(800, 3, seed=6)
        baseline = ship_all_coordinator(instance.problem, num_sites=4)
        result = coordinator_clarkson_solve(
            instance.problem, num_sites=4, r=2, params=fast_params(sample_size=400), rng=5
        )
        assert_objective_close(result.value, baseline.value)


class TestResourceAccounting:
    def test_three_rounds_per_iteration(self):
        instance = random_polytope_lp(1500, 2, seed=7)
        result = coordinator_clarkson_solve(
            instance.problem, num_sites=4, r=2, params=fast_params(), rng=6
        )
        assert result.resources.rounds == 3 * result.iterations

    def test_round_count_within_theorem_bound(self):
        instance = random_polytope_lp(2000, 2, seed=8)
        result = coordinator_clarkson_solve(
            instance.problem, num_sites=4, r=2, params=fast_params(sample_size=400), rng=7
        )
        nu, r = 3, 2
        assert result.resources.rounds <= 12 * nu * r

    def test_communication_is_sublinear_vs_ship_all(self):
        instance = random_polytope_lp(4000, 2, seed=9)
        ship_all = ship_all_coordinator(instance.problem, num_sites=4)
        clever = coordinator_clarkson_solve(
            instance.problem, num_sites=4, r=2, params=fast_params(sample_size=250), rng=8
        )
        assert (
            clever.resources.total_communication_bits
            < ship_all.resources.total_communication_bits
        )

    def test_custom_cost_model(self):
        instance = random_polytope_lp(1200, 2, seed=10)
        cheap = coordinator_clarkson_solve(
            instance.problem,
            num_sites=3,
            r=2,
            params=fast_params(),
            cost_model=BitCostModel(bits_per_coefficient=8, bits_per_counter=8),
            rng=9,
        )
        expensive = coordinator_clarkson_solve(
            instance.problem,
            num_sites=3,
            r=2,
            params=fast_params(),
            cost_model=BitCostModel(bits_per_coefficient=128, bits_per_counter=64),
            rng=9,
        )
        assert (
            cheap.resources.total_communication_bits
            < expensive.resources.total_communication_bits
        )

    def test_small_problem_ships_everything_in_one_round(self):
        problem = random_feasible_lp(60, 2, seed=11).problem
        result = coordinator_clarkson_solve(problem, num_sites=3, r=2, rng=10)
        assert result.resources.rounds == 1

    def test_empty_site_is_handled(self):
        instance = random_polytope_lp(1200, 2, seed=12)
        partition = partition_indices(1200, 3, method="round_robin")
        partition.append(np.array([], dtype=int))  # a fourth, empty site
        exact = instance.problem.solve()
        result = coordinator_clarkson_solve(
            instance.problem, partition=partition, r=2, params=fast_params(), rng=11
        )
        assert_objective_close(result.value, exact.value)

    def test_metadata(self):
        instance = random_polytope_lp(1200, 2, seed=13)
        result = coordinator_clarkson_solve(
            instance.problem, num_sites=6, r=3, params=fast_params(r=3), rng=12
        )
        assert result.metadata["algorithm"] == "coordinator_clarkson"
        assert result.metadata["k"] == 6
        assert result.metadata["r"] == 3
