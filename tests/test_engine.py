"""Unit tests for the model-agnostic Clarkson engine and its strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    ClarksonEngine,
    EngineConfig,
    ExplicitWeightSubstrate,
    InMemorySampling,
    SamplingStrategy,
    ViolationOracle,
    ViolationStats,
    WeightSubstrate,
    iteration_budget,
)
from repro.core.exceptions import InvalidConfigError, IterationLimitError
from repro.core.lptype import BasisResult
from repro.core.weights import ExplicitWeights
from repro.workloads import random_polytope_lp

from tests.conftest import assert_objective_close


class _ScriptedSampler(SamplingStrategy):
    """Returns a fixed sample every iteration (for deterministic loop tests)."""

    def __init__(self, sample):
        self.sample = np.asarray(sample, dtype=int)
        self.draws = 0

    def draw(self, sample_size):
        self.draws += 1
        return self.sample


class _ScriptedSubstrate(WeightSubstrate):
    """Plays back a scripted sequence of (num_violators, fraction) pairs."""

    def __init__(self, script):
        self.script = list(script)
        self.boosts = 0

    def measure(self, sample, basis):
        num_violators, fraction = self.script.pop(0)
        return ViolationStats(num_violators=num_violators, weight_fraction=fraction)

    def boost(self, stats):
        self.boosts += 1


def _make_engine(problem, substrate, budget=10, epsilon=0.1, keep_trace=True):
    return ClarksonEngine(
        problem=problem,
        sampler=_ScriptedSampler(np.arange(5)),
        substrate=substrate,
        config=EngineConfig(
            sample_size=5, epsilon=epsilon, budget=budget, keep_trace=keep_trace,
            name="scripted",
        ),
    )


@pytest.fixture(scope="module")
def lp_problem():
    return random_polytope_lp(1200, 2, seed=21).problem


class TestEngineLoop:
    def test_terminates_on_empty_violator_set(self, lp_problem):
        substrate = _ScriptedSubstrate([(3, 0.5), (0, 0.0)])
        outcome = _make_engine(lp_problem, substrate).run()
        assert outcome.iterations == 2
        assert outcome.successful_iterations == 0
        assert substrate.boosts == 0

    def test_boost_only_on_success(self, lp_problem):
        # Iter 0: fail (fraction > eps). Iter 1: success. Iter 2: terminate.
        substrate = _ScriptedSubstrate([(5, 0.9), (4, 0.05), (0, 0.0)])
        outcome = _make_engine(lp_problem, substrate, epsilon=0.1).run()
        assert substrate.boosts == 1
        assert outcome.successful_iterations == 1
        assert [rec.successful for rec in outcome.trace] == [False, True, True]

    def test_trace_records_iteration_story(self, lp_problem):
        substrate = _ScriptedSubstrate([(7, 0.04), (0, 0.0)])
        outcome = _make_engine(lp_problem, substrate).run()
        assert len(outcome.trace) == outcome.iterations == 2
        assert outcome.trace[0].num_violators == 7
        assert outcome.trace[0].violator_weight_fraction == pytest.approx(0.04)
        assert outcome.trace[-1].num_violators == 0
        assert all(rec.sample_size == 5 for rec in outcome.trace)

    def test_keep_trace_disabled(self, lp_problem):
        substrate = _ScriptedSubstrate([(3, 0.05), (0, 0.0)])
        outcome = _make_engine(lp_problem, substrate, keep_trace=False).run()
        assert outcome.trace == []
        assert outcome.iterations == 2

    def test_budget_exhaustion_raises(self, lp_problem):
        substrate = _ScriptedSubstrate([(5, 0.9)] * 4)
        with pytest.raises(IterationLimitError):
            _make_engine(lp_problem, substrate, budget=4).run()


class TestIterationBudget:
    def test_explicit_budget_wins(self, lp_problem):
        assert iteration_budget(lp_problem, r=2, max_iterations=7) == 7

    def test_default_is_lemma_bound(self, lp_problem):
        nu = lp_problem.combinatorial_dimension
        assert iteration_budget(lp_problem, r=3, max_iterations=None) == 40 * nu * 3 + 40

    @pytest.mark.parametrize("bad", [0, -1, -40])
    def test_non_positive_budget_raises(self, lp_problem, bad):
        """0 / negative budgets used to fall through to the default silently."""
        with pytest.raises(InvalidConfigError, match="max_iterations"):
            iteration_budget(lp_problem, r=2, max_iterations=bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_solver_config_rejects_non_positive_budget(self, bad):
        from repro import SolverConfig

        with pytest.raises(InvalidConfigError, match="max_iterations"):
            SolverConfig(max_iterations=bad)

    def test_driver_rejects_non_positive_budget_via_params(self, lp_problem):
        """The legacy ClarksonParameters path hits the same validation."""
        from repro.core.clarkson import ClarksonParameters, _clarkson_solve

        params = ClarksonParameters(max_iterations=0, sample_size=50)
        with pytest.raises(InvalidConfigError, match="max_iterations"):
            _clarkson_solve(lp_problem, params=params, rng=0)


class TestInMemoryBinding:
    def test_solves_lp_through_raw_engine(self, lp_problem):
        gen = np.random.default_rng(5)
        weights = ExplicitWeights.uniform(lp_problem.num_constraints, 40.0)
        substrate = ExplicitWeightSubstrate(lp_problem, weights)
        engine = ClarksonEngine(
            problem=lp_problem,
            sampler=InMemorySampling(weights, gen),
            substrate=substrate,
            config=EngineConfig(
                sample_size=400, epsilon=0.02, budget=500, name="in-memory"
            ),
        )
        outcome = engine.run()
        assert_objective_close(outcome.basis.value, lp_problem.solve().value)
        assert substrate.peak_items > 0

    def test_peak_tracks_sample_plus_bases(self, lp_problem):
        weights = ExplicitWeights.uniform(lp_problem.num_constraints, 40.0)
        substrate = ExplicitWeightSubstrate(lp_problem, weights)
        basis = lp_problem.solve_subset(np.arange(40))
        substrate.measure(np.arange(40), basis)
        nu = lp_problem.combinatorial_dimension
        assert substrate.peak_items == 40 + nu


class TestViolationOracle:
    def test_mask_matches_scalar_violates(self, lp_problem):
        oracle = ViolationOracle(lp_problem)
        basis = lp_problem.solve_subset(np.arange(30))
        indices = np.arange(200)
        mask = oracle.mask(basis.witness, indices)
        expected = np.array(
            [lp_problem.violates(basis.witness, int(i)) for i in indices]
        )
        assert np.array_equal(mask, expected)
        assert np.array_equal(oracle.violating(basis.witness, indices), indices[expected])

    def test_count_matrix_sums_masks(self, lp_problem):
        oracle = ViolationOracle(lp_problem)
        witnesses = [
            lp_problem.solve_subset(np.arange(k, k + 25)).witness for k in (0, 50, 100)
        ]
        indices = np.arange(300)
        counts = oracle.count_matrix(witnesses, indices)
        expected = sum(
            oracle.mask(w, indices).astype(int) for w in witnesses
        )
        assert np.array_equal(counts, expected)
