"""Vectorised violation oracles agree with the scalar reference tests.

Every concrete problem overrides ``violation_mask`` / ``violation_count_matrix``
with a NumPy implementation; these tests pin the overrides to the scalar
``violates`` semantics (including tolerance scaling) and exercise the default
fallback path of :class:`LPTypeProblem` for a problem that does not override.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lptype import BasisResult, LPTypeProblem, as_index_array
from repro.problems import ConvexQuadraticProgram, MinimumEnclosingBall
from repro.workloads import (
    make_separable_classification,
    random_feasible_lp,
    svm_problem,
    uniform_ball_points,
)


def _lp():
    return random_feasible_lp(300, 2, seed=41).problem


def _meb():
    return MinimumEnclosingBall(points=uniform_ball_points(300, 3, radius=2.0, seed=42))


def _svm():
    return svm_problem(make_separable_classification(300, 2, seed=43, margin=0.3))


def _qp():
    rng = np.random.default_rng(44)
    g = rng.normal(size=(300, 2))
    h = rng.uniform(-3.0, 0.5, size=300)
    return ConvexQuadraticProgram(
        q_matrix=np.eye(2) * 2.0, q_vector=np.zeros(2), g_matrix=g, h_vector=h
    )


PROBLEMS = [_lp, _meb, _svm, _qp]
IDS = ["lp", "meb", "svm", "qp"]


def _witnesses(problem, count=4):
    rng = np.random.default_rng(7)
    out = []
    for _ in range(count):
        subset = rng.choice(problem.num_constraints, size=25, replace=False)
        out.append(problem.solve_subset(np.sort(subset)).witness)
    return out


@pytest.mark.parametrize("make_problem", PROBLEMS, ids=IDS)
def test_mask_matches_scalar_violates(make_problem):
    problem = make_problem()
    indices = problem.all_indices()
    for witness in _witnesses(problem):
        mask = problem.violation_mask(witness, indices)
        expected = np.array([problem.violates(witness, int(i)) for i in indices])
        assert mask.dtype == bool
        assert np.array_equal(mask, expected)


@pytest.mark.parametrize("make_problem", PROBLEMS, ids=IDS)
def test_count_matrix_matches_stacked_masks(make_problem):
    problem = make_problem()
    indices = problem.all_indices()[::3]
    witnesses = _witnesses(problem)
    counts = problem.violation_count_matrix(witnesses, indices)
    expected = sum(problem.violation_mask(w, indices).astype(np.int64) for w in witnesses)
    assert np.array_equal(counts, expected)


@pytest.mark.parametrize("make_problem", PROBLEMS, ids=IDS)
def test_violating_indices_sorted_and_consistent(make_problem):
    problem = make_problem()
    # Deliberately unsorted query order: results must still be ascending.
    indices = problem.all_indices()[::-1]
    witness = _witnesses(problem, count=1)[0]
    violators = problem.violating_indices(witness, indices)
    assert np.all(np.diff(violators) > 0) or violators.size <= 1
    assert set(violators.tolist()) == {
        int(i) for i in range(problem.num_constraints) if problem.violates(witness, i)
    }


@pytest.mark.parametrize("make_problem", PROBLEMS, ids=IDS)
def test_none_witness_and_empty_indices(make_problem):
    problem = make_problem()
    assert problem.violation_mask(None, problem.all_indices()).sum() == 0
    assert problem.violation_mask(_witnesses(problem, 1)[0], []).size == 0
    assert problem.violation_count_matrix([], problem.all_indices()).sum() == 0
    assert problem.violating_indices(None, problem.all_indices()).size == 0


class _ScalarOnlyProblem(LPTypeProblem):
    """A toy 1-d problem that does NOT override the batch methods.

    ``f(A)`` = max of the chosen thresholds; constraint ``i`` is violated at
    witness ``x`` when ``thresholds[i] > x``.
    """

    def __init__(self, thresholds):
        self.thresholds = np.asarray(thresholds, dtype=float)

    @property
    def num_constraints(self):
        return int(self.thresholds.size)

    @property
    def dimension(self):
        return 1

    def solve_subset(self, indices):
        idx = as_index_array(indices)
        value = float(self.thresholds[idx].max()) if idx.size else -np.inf
        return BasisResult(
            indices=(int(idx[np.argmax(self.thresholds[idx])]),) if idx.size else (),
            value=value,
            witness=value,
            subset_size=int(idx.size),
        )

    def violates(self, witness, index):
        return bool(self.thresholds[index] > witness)


class TestDefaultFallback:
    def test_default_mask_uses_scalar_violates(self):
        problem = _ScalarOnlyProblem([1.0, 5.0, 3.0, 2.0])
        mask = problem.violation_mask(2.5, [0, 1, 2, 3])
        assert mask.tolist() == [False, True, True, False]

    def test_default_count_matrix(self):
        problem = _ScalarOnlyProblem([1.0, 5.0, 3.0, 2.0])
        counts = problem.violation_count_matrix([0.5, 2.5, None], np.arange(4))
        assert counts.tolist() == [1, 2, 2, 1]

    def test_default_violating_indices_accepts_plain_iterables(self):
        problem = _ScalarOnlyProblem([1.0, 5.0, 3.0, 2.0])
        out = problem.violating_indices(2.5, (int(i) for i in (3, 2, 1)))
        assert out.tolist() == [1, 2]
