"""Closing the loop: measured coordinator bits vs the lower-bound curves.

The repo has two halves: the upper-bound algorithms (Theorems 1-3, now on
the communication fabric) and the lower-bound machinery (Theorems 7-10:
TCI, Augmented Indexing, the recursive hard distributions).  These tests tie
them together over a small grid of hard instances: the *measured*
``total_communication_bits`` of the fabric coordinator driver must sit above
the ``Omega(n^{1/(2 rounds)} / rounds^2)`` communication lower bound of
Theorem 10, and the two-party TCI protocols in :mod:`repro.lower_bounds`
must obey the same curve — the same currencies, measured the same way.
"""

from __future__ import annotations

import pytest

from repro import solve
from repro.core.clarkson import ClarksonParameters
from repro.lower_bounds import (
    interactive_tci_protocol,
    sample_hard_instance,
    tci_to_linear_program,
)
from repro.lower_bounds.tci import lp_optimum_to_index

#: Bits per transmitted value, matching the default BitCostModel.
_BITS_PER_VALUE = 64


def communication_lower_bound_values(n: int, rounds: int) -> float:
    """The Theorem 10 curve in *values*: ``n^{1/(2r)} / r^2``."""
    r = max(1, rounds)
    return (n ** (1.0 / (2 * r))) / (r ** 2)


@pytest.mark.parametrize("branching", [8, 14, 20])
@pytest.mark.parametrize("r", [1, 2])
def test_coordinator_bits_stay_above_lower_bound(branching, r):
    hard = sample_hard_instance(branching=branching, rounds=2, seed=branching)
    lp = tci_to_linear_program(hard.instance)
    n = lp.num_constraints
    result = solve(
        lp,
        model="coordinator",
        num_sites=2,
        r=r,
        seed=3,
        sample_size=max(8, n // 4),
        success_threshold=0.05,
        max_iterations=500,
    )
    # The upper bound must solve the instance ...
    decoded = lp_optimum_to_index(result.witness[0], hard.instance.length)
    assert decoded == hard.answer
    # ... and its measured communication must dominate the lower bound.
    rounds = max(1, result.resources.rounds)
    lower_values = communication_lower_bound_values(n, rounds)
    measured_values = result.resources.total_communication_bits / _BITS_PER_VALUE
    assert measured_values >= lower_values


@pytest.mark.parametrize("branching", [8, 14, 20])
@pytest.mark.parametrize("rounds", [1, 2, 3])
def test_tci_protocol_bits_stay_above_lower_bound(branching, rounds):
    hard = sample_hard_instance(branching=branching, rounds=2, seed=branching + 1)
    protocol = interactive_tci_protocol(hard.instance, rounds=rounds)
    assert protocol.answer == hard.instance.solve()
    lower_values = communication_lower_bound_values(
        hard.instance.length, max(1, protocol.rounds)
    )
    assert protocol.total_bits / _BITS_PER_VALUE >= lower_values


def test_fabric_and_protocol_measure_the_same_currency():
    """One instance, both halves: the solver's measured bits and the
    protocol's transcript bits are directly comparable (same cost model),
    and the general-purpose solver pays at least as much as the specialised
    two-party protocol."""
    hard = sample_hard_instance(branching=20, rounds=2, seed=9)
    lp = tci_to_linear_program(hard.instance)
    params = ClarksonParameters(
        r=2, sample_size=100, success_threshold=0.05, max_iterations=500
    )
    result = solve(
        lp,
        model="coordinator",
        num_sites=2,
        r=2,
        seed=4,
        sample_size=params.sample_size,
        success_threshold=params.success_threshold,
        max_iterations=params.max_iterations,
    )
    protocol = interactive_tci_protocol(hard.instance, rounds=2)
    assert result.resources.total_communication_bits > 0
    assert protocol.total_bits > 0
    assert result.resources.total_communication_bits >= protocol.total_bits
