"""Tests for the TCI problem, its LP reduction, and the Aug-Index reduction (Lemma 5.6)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import InvalidInstanceError
from repro.lower_bounds.aug_index import (
    AugIndexInstance,
    aug_index_to_tci,
    bit_from_tci_answer,
    random_aug_index,
)
from repro.lower_bounds.tci import (
    TCIInstance,
    lp_optimum_to_index,
    tci_to_envelope_lp,
    tci_to_linear_program,
)
from repro.algorithms import chan_chen_2d_streaming


def figure1_instance() -> TCIInstance:
    """A hand-built 7-point instance in the spirit of Figure 1a (answer = 4)."""
    alice = np.array([0.0, 1.0, 2.5, 4.5, 7.0, 10.0, 13.5])
    bob = np.array([12.0, 10.0, 8.0, 6.0, 4.0, 2.0, 0.0])
    return TCIInstance(alice=alice, bob=bob)


class TestTCIInstance:
    def test_validation_of_lengths(self):
        with pytest.raises(InvalidInstanceError):
            TCIInstance(alice=[0.0, 1.0], bob=[1.0])
        with pytest.raises(InvalidInstanceError):
            TCIInstance(alice=[0.0], bob=[1.0])

    def test_figure1_is_valid(self):
        instance = figure1_instance()
        assert instance.alice_is_valid()
        assert instance.bob_is_valid()
        assert instance.is_valid()

    def test_figure1_answer(self):
        assert figure1_instance().solve() == 4

    def test_binary_search_matches_scan(self):
        instance = figure1_instance()
        assert instance.solve_binary_search() == instance.solve()

    def test_invalid_alice_detected(self):
        instance = TCIInstance(alice=[0.0, 5.0, 6.0], bob=[10.0, 4.0, 1.0])
        # Differences 5 then 1: not convex.
        assert not instance.alice_is_valid()

    def test_invalid_bob_detected(self):
        instance = TCIInstance(alice=[0.0, 1.0, 3.0], bob=[10.0, 9.0, 1.0])
        # Bob's differences -1 then -8: decreasing differences, not convex.
        assert not instance.bob_is_valid()

    def test_no_crossing_detected(self):
        instance = TCIInstance(alice=[0.0, 1.0, 2.0], bob=[10.0, 9.0, 8.0])
        assert instance.solve(validate=False) is None
        with pytest.raises(InvalidInstanceError):
            instance.validate()

    def test_crossing_at_first_index(self):
        instance = TCIInstance(alice=[0.0, 10.0, 21.0], bob=[5.0, 1.0, -3.0])
        assert instance.solve() == 1


class TestTCIToLinearProgram:
    def test_figure1_reduction(self):
        instance = figure1_instance()
        lp = tci_to_linear_program(instance)
        assert lp.dimension == 2
        assert lp.num_constraints == 2 * (instance.length - 1)
        result = lp.solve()
        assert lp_optimum_to_index(result.witness[0], instance.length) == 4

    @pytest.mark.parametrize("seed", range(6))
    def test_random_aug_index_instances_decode_correctly(self, seed):
        aug = random_aug_index(12, seed=seed)
        instance = aug_index_to_tci(aug, sigma=2.0)
        lp = tci_to_linear_program(instance)
        result = lp.solve()
        decoded = lp_optimum_to_index(result.witness[0], instance.length)
        assert decoded == instance.solve()

    def test_envelope_reduction_matches(self):
        instance = figure1_instance()
        envelope = tci_to_envelope_lp(instance)
        result = chan_chen_2d_streaming(envelope, r=2)
        assert lp_optimum_to_index(result.witness[0], instance.length) == 4

    def test_lp_optimum_to_index_clamps(self):
        assert lp_optimum_to_index(-3.0, 10) == 1
        assert lp_optimum_to_index(99.0, 10) == 9
        assert lp_optimum_to_index(4.999999999, 10) == 5


class TestAugIndexInstance:
    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            AugIndexInstance(bits=np.array([0, 2]), index=1)
        with pytest.raises(InvalidInstanceError):
            AugIndexInstance(bits=np.array([0, 1]), index=3)
        with pytest.raises(InvalidInstanceError):
            AugIndexInstance(bits=np.array([], dtype=int), index=1)

    def test_prefix_and_answer(self):
        instance = AugIndexInstance(bits=np.array([1, 0, 1, 1]), index=3)
        assert instance.prefix.tolist() == [1, 0]
        assert instance.answer == 1

    def test_random_instance_in_range(self):
        instance = random_aug_index(20, seed=0)
        assert 1 <= instance.index <= 20
        assert instance.bits.size == 20


class TestLemma56Reduction:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5])
    def test_exhaustive_correctness(self, length):
        """For every bit string and every index, the TCI answer reveals the bit."""
        for bits in itertools.product((0, 1), repeat=length):
            for index in range(1, length + 1):
                aug = AugIndexInstance(bits=np.array(bits), index=index)
                tci = aug_index_to_tci(aug)
                assert tci.is_valid(), (bits, index)
                assert bit_from_tci_answer(aug, tci.solve()) == aug.answer

    def test_instance_size_is_bits_plus_two(self):
        aug = random_aug_index(9, seed=1)
        assert aug_index_to_tci(aug).length == 11

    def test_alice_curve_independent_of_bobs_index(self):
        bits = np.array([1, 0, 1, 0, 0, 1])
        curves = [
            aug_index_to_tci(AugIndexInstance(bits=bits, index=i)).alice for i in range(1, 7)
        ]
        for curve in curves[1:]:
            assert np.allclose(curve, curves[0])

    def test_steeper_sigma_still_correct(self):
        for sigma in (0.5, 1.0, 10.0, 1000.0):
            aug = AugIndexInstance(bits=np.array([0, 1, 1, 0]), index=2)
            tci = aug_index_to_tci(aug, sigma=sigma)
            assert tci.is_valid()
            assert bit_from_tci_answer(aug, tci.solve()) == 1

    def test_alpha_floor_still_correct(self):
        aug = AugIndexInstance(bits=np.array([1, 1, 0, 0, 1]), index=4)
        tci = aug_index_to_tci(aug, alpha=50.0, sigma=3.0)
        assert tci.is_valid()
        assert bit_from_tci_answer(aug, tci.solve()) == 0

    def test_decoding_rejects_impossible_answer(self):
        aug = AugIndexInstance(bits=np.array([1, 0]), index=1)
        with pytest.raises(InvalidInstanceError):
            bit_from_tci_answer(aug, 5)

    def test_invalid_sigma(self):
        aug = random_aug_index(4, seed=2)
        with pytest.raises(ValueError):
            aug_index_to_tci(aug, sigma=0.0)


@settings(max_examples=40, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=25),
    seed=st.integers(0, 10_000),
    sigma=st.floats(min_value=0.25, max_value=100.0),
)
def test_reduction_property(length, seed, sigma):
    """Property: the reduction always yields a valid instance decoding to the right bit."""
    aug = random_aug_index(length, seed=seed)
    tci = aug_index_to_tci(aug, sigma=sigma)
    assert tci.is_valid()
    assert bit_from_tci_answer(aug, tci.solve()) == aug.answer
