"""The cluster subsystem: framing, membership, handshake, TcpTransport.

Four layers under test, bottom-up:

* wirecodec stream framing — partial reads, short writes, truncation;
* :class:`HeartbeatMonitor` — every liveness transition, driven by a fake
  clock (no sleeps);
* the registration handshake — protocol/version negotiation and rejects;
* :class:`TcpTransport` — the socket-backed fabric backend, which must be
  **bit-identical** to the in-process and process-pool transports for every
  problem family and model, including after a node agent is SIGKILLed
  mid-solve (journal replay) and after the cluster degrades to a local
  process pool.
"""

from __future__ import annotations

import os
import struct
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from test_fabric_transports import (
    MODELS,
    PROBLEMS,
    _build_problem,
    _model_overrides,
    _solve,
    assert_bit_identical,
)

from repro import TransportConfig, solve
from repro.api.session import Session
from repro.cluster import (
    ClusterRegistry,
    HeartbeatMonitor,
    LIVENESS_STATES,
    TcpTransport,
    parse_address,
)
from repro.cluster.protocol import (
    PROTOCOL_NAME,
    SUPPORTED_VERSIONS,
    HandshakeError,
    hello_message,
    negotiate_version,
)
from repro.core.exceptions import CommunicationError
from repro.fabric import wirecodec
from repro.fabric.transport import InProcessTransport
from repro.resilience import FaultPlan, FaultSpec

SOLVE_KWARGS = dict(
    seed=11,
    sample_size=60,
    success_threshold=0.05,
    max_iterations=300,
    keep_trace=True,
)


def counter_task(state, step):
    """State-resident counter + RNG draw: exercises bit-identity per node.

    Top-level on purpose — node agents unpickle task functions by reference.
    """
    state["count"] += int(step)
    state["draw"] = float(state["rng"].random())
    return state, (state["count"], state["draw"])


def _recv_from(data: bytes, chunk: int = 1 << 16):
    """A ``recv``-shaped callable that serves ``data`` at most ``chunk`` at
    a time (and then behaves like a closed socket)."""
    offset = 0

    def recv(count: int) -> bytes:
        nonlocal offset
        take = min(count, chunk, len(data) - offset)
        piece = data[offset : offset + take]
        offset += take
        return piece

    return recv


# ---------------------------------------------------------------------- #
# Stream framing
# ---------------------------------------------------------------------- #


class TestWireFraming:
    PAYLOADS = [
        ("share", "key", b"x" * 100),
        {"nested": [1, 2.5, None, True]},
        np.arange(12.0).reshape(3, 4),
    ]

    def test_frame_roundtrip(self):
        for obj in self.PAYLOADS:
            payload = wirecodec.dumps(obj)
            framed = wirecodec.frame(payload)
            assert framed[:4] == struct.pack("!I", len(payload))
            assert wirecodec.read_frame(_recv_from(framed)) == payload

    def test_read_frame_survives_one_byte_dribble(self):
        payload = wirecodec.dumps(list(range(64)))
        recv = _recv_from(wirecodec.frame(payload), chunk=1)
        assert wirecodec.read_frame(recv) == payload

    def test_back_to_back_frames_stay_aligned(self):
        first = wirecodec.dumps("first")
        second = wirecodec.dumps(["second", 2])
        recv = _recv_from(wirecodec.frame(first) + wirecodec.frame(second), chunk=3)
        assert wirecodec.read_frame(recv) == first
        assert wirecodec.read_frame(recv) == second
        with pytest.raises(EOFError):
            wirecodec.read_frame(recv)

    def test_clean_close_between_frames_is_eof(self):
        with pytest.raises(EOFError):
            wirecodec.read_frame(_recv_from(b""))

    def test_truncated_payload_is_typed(self):
        framed = wirecodec.frame(wirecodec.dumps({"k": 1}))
        with pytest.raises(wirecodec.TruncatedFrameError):
            wirecodec.read_frame(_recv_from(framed[:-1]))

    def test_truncated_header_is_typed(self):
        framed = wirecodec.frame(wirecodec.dumps("x"))
        with pytest.raises(wirecodec.TruncatedFrameError):
            wirecodec.read_frame(_recv_from(framed[:2]))

    def test_oversized_length_prefix_is_rejected(self):
        header = struct.pack("!I", wirecodec.MAX_FRAME_BYTES + 1)
        with pytest.raises(ValueError, match="MAX_FRAME_BYTES"):
            wirecodec.read_frame(_recv_from(header + b"junk"))

    def test_read_exactly_assembles_short_reads(self):
        assert wirecodec.read_exactly(_recv_from(b"abcdef", chunk=2), 6) == b"abcdef"
        with pytest.raises(EOFError):
            wirecodec.read_exactly(_recv_from(b""), 4)
        with pytest.raises(wirecodec.TruncatedFrameError):
            wirecodec.read_exactly(_recv_from(b"ab"), 4)

    def test_loads_rejects_truncated_encodings(self):
        payload = wirecodec.dumps({"rows": np.ones(8), "tag": "t"})
        # Cuts below len(MAGIC) are indistinguishable from a foreign pickle;
        # anything at or past the magic must raise the typed truncation error.
        for cut in (len(wirecodec.MAGIC), len(payload) // 2, len(payload) - 1):
            with pytest.raises(wirecodec.TruncatedFrameError):
                wirecodec.loads(payload[:cut])


# ---------------------------------------------------------------------- #
# Membership
# ---------------------------------------------------------------------- #


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _monitor(**overrides):
    clock = _FakeClock()
    kwargs = dict(heartbeat_timeout_s=2.0, registration_timeout_s=30.0, clock=clock)
    kwargs.update(overrides)
    return HeartbeatMonitor(**kwargs), clock


class TestHeartbeatMonitor:
    def test_lifecycle_states_are_documented(self):
        assert LIVENESS_STATES == ("joining", "ready", "suspect", "dead")

    def test_register_then_ready(self):
        monitor, _ = _monitor()
        monitor.register("agent-1")
        assert monitor.state("agent-1") == "joining"
        monitor.ready("agent-1")
        assert monitor.state("agent-1") == "ready"

    def test_duplicate_register_rejected(self):
        monitor, _ = _monitor()
        monitor.register("agent-1")
        with pytest.raises(ValueError, match="agent-1"):
            monitor.register("agent-1")

    def test_silence_walks_ready_to_suspect_to_dead(self):
        monitor, clock = _monitor()
        monitor.register("agent-1")
        monitor.ready("agent-1")
        clock.advance(2.5)  # past heartbeat_timeout_s, inside 2x
        assert monitor.evaluate() == []
        assert monitor.state("agent-1") == "suspect"
        clock.advance(2.0)  # now 4.5s silent > 2 * 2.0
        died = monitor.evaluate()
        assert [member for member, _ in died] == ["agent-1"]
        assert "heartbeat expired" in died[0][1]
        assert monitor.state("agent-1") == "dead"

    def test_late_heartbeat_rescues_suspect(self):
        monitor, clock = _monitor()
        monitor.register("agent-1")
        monitor.ready("agent-1")
        clock.advance(2.5)
        monitor.evaluate()
        assert monitor.state("agent-1") == "suspect"
        monitor.beat("agent-1")
        assert monitor.state("agent-1") == "ready"
        clock.advance(1.0)  # only 1s since the rescue beat
        assert monitor.evaluate() == []
        assert monitor.state("agent-1") == "ready"

    def test_dead_is_sticky(self):
        monitor, clock = _monitor()
        monitor.register("agent-1")
        monitor.ready("agent-1")
        clock.advance(10.0)
        assert monitor.evaluate(), "expected the member to die"
        monitor.beat("agent-1")
        monitor.ready("agent-1")
        assert monitor.state("agent-1") == "dead"
        assert monitor.evaluate() == []  # only *newly* dead members reported

    def test_registration_timeout_kills_joining_members(self):
        monitor, clock = _monitor(registration_timeout_s=5.0)
        monitor.register("agent-1")
        clock.advance(4.0)
        assert monitor.evaluate() == []
        clock.advance(2.0)
        assert monitor.evaluate() == [("agent-1", "registration timeout")]

    def test_mark_dead_reports_newly_dead_only_once(self):
        monitor, _ = _monitor()
        monitor.register("agent-1")
        monitor.ready("agent-1")
        assert monitor.mark_dead("agent-1", "socket EOF") is True
        assert monitor.mark_dead("agent-1", "again") is False
        assert monitor.snapshot()["agent-1"]["reason"] == "socket EOF"

    def test_snapshot_shape(self):
        monitor, clock = _monitor()
        monitor.register("agent-1")
        monitor.ready("agent-1")
        monitor.beat("agent-1")
        clock.advance(0.5)
        snap = monitor.snapshot()
        assert snap["agent-1"]["state"] == "ready"
        assert snap["agent-1"]["beats"] == 1
        assert snap["agent-1"]["since_last_beat_s"] == pytest.approx(0.5)

    def test_invalid_timeouts_rejected(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(heartbeat_timeout_s=0.0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(registration_timeout_s=-1.0)


# ---------------------------------------------------------------------- #
# Handshake protocol
# ---------------------------------------------------------------------- #


class TestProtocol:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address("node7.internal:41") == ("node7.internal", 41)

    @pytest.mark.parametrize("bad", ["nocolon", ":123", "host:", "host:fast"])
    def test_parse_address_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_negotiate_picks_highest_common_version(self):
        assert negotiate_version(list(SUPPORTED_VERSIONS)) == max(SUPPORTED_VERSIONS)
        assert negotiate_version([99, 1]) == 1

    @pytest.mark.parametrize("offered", [[99], [], "bogus", None])
    def test_negotiate_rejects_no_overlap_and_garbage(self, offered):
        with pytest.raises(HandshakeError):
            negotiate_version(offered)

    def test_hello_message_shape(self):
        kind, body = hello_message("node-a", 1234)
        assert kind == "hello"
        assert body["protocol"] == PROTOCOL_NAME
        assert tuple(body["versions"]) == SUPPORTED_VERSIONS
        assert body["name"] == "node-a"
        assert body["pid"] == 1234


def _frame_conn(sock):
    from repro.cluster.protocol import FrameConnection

    return FrameConnection(sock)


class TestRegistryHandshake:
    def test_wrong_protocol_is_rejected(self):
        import socket as socket_mod

        registry = ClusterRegistry(("127.0.0.1", 0), heartbeat_interval_s=0.1)
        try:
            conn = _frame_conn(socket_mod.create_connection(registry.address))
            conn.send(("hello", {"protocol": "smtp", "versions": [1]}))
            kind, reason = conn.recv(timeout=5.0)
            assert kind == "reject"
            assert "protocol" in reason
            conn.close()
        finally:
            registry.drain()

    def test_version_mismatch_is_rejected(self):
        import socket as socket_mod

        registry = ClusterRegistry(("127.0.0.1", 0), heartbeat_interval_s=0.1)
        try:
            conn = _frame_conn(socket_mod.create_connection(registry.address))
            conn.send(("hello", {"protocol": PROTOCOL_NAME, "versions": [99]}))
            kind, _ = conn.recv(timeout=5.0)
            assert kind == "reject"
            conn.close()
        finally:
            registry.drain()

    def test_good_handshake_negotiates_and_tracks_liveness(self):
        import socket as socket_mod

        registry = ClusterRegistry(
            ("127.0.0.1", 0), heartbeat_interval_s=0.05, heartbeat_timeout_s=0.3
        )
        try:
            conn = _frame_conn(socket_mod.create_connection(registry.address))
            conn.send(hello_message("probe", os.getpid()))
            kind, body = conn.recv(timeout=5.0)
            assert kind == "welcome"
            assert body["version"] in SUPPORTED_VERSIONS
            member_id = body["agent_id"]
            assert registry.wait_for(1, timeout=5.0) == [member_id]
            health = registry.health()
            assert health["liveness"][member_id]["state"] == "ready"
            # Silence past 2x heartbeat_timeout_s must kill the member.
            deadline = time.monotonic() + 5.0
            while registry.alive_members() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert registry.alive_members() == []
            conn.close()
        finally:
            registry.drain()


# ---------------------------------------------------------------------- #
# TcpTransport primitives (one shared loopback cluster for the class)
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def tcp():
    transport = TcpTransport(
        max_workers=2, heartbeat_interval_s=0.2, heartbeat_timeout_s=2.0
    )
    transport.warm_up()
    yield transport
    transport.close()


def _run_rounds(transport, session, *, nodes=4, rounds=2, seed=17, bias=2.0):
    """The reference interaction: share + per-node init + task rounds."""
    transport.init_shared(session, "bias", bias)
    for node_id in range(nodes):
        transport.init_node(
            session,
            node_id,
            {"count": node_id, "rng": np.random.default_rng(seed + node_id)},
        )
    outputs = []
    for round_index in range(rounds):
        outputs.append(
            transport.run_nodes(
                session,
                list(range(nodes)),
                counter_task,
                [(round_index + 1,)] * nodes,
            )
        )
    return outputs


class TestTcpTransportPrimitives:
    def test_round_trip_matches_in_process(self, tcp):
        reference = InProcessTransport()
        assert _run_rounds(tcp, "prim-a") == _run_rounds(reference, "prim-a")
        tcp.release("prim-a")
        reference.release("prim-a")

    def test_health_exposes_the_cluster(self, tcp):
        tcp.warm_up()
        health = tcp.health()
        assert health["kind"] == "tcp"
        assert health["supervised"] is True
        assert health["degraded"] is False
        cluster = health["cluster"]
        assert cluster["ready"] == 2
        assert [m["state"] for m in cluster["liveness"].values()] == ["ready", "ready"]
        assert set(cluster["slots"]) == {"0", "1"}

    def test_ping(self, tcp):
        assert tcp.ping() == [True, True]

    def test_release_forgets_node_state(self, tcp):
        tcp.init_node("prim-gone", 0, {"count": 0, "rng": np.random.default_rng(1)})
        tcp.release("prim-gone")
        with pytest.raises(CommunicationError):
            tcp.run_nodes("prim-gone", [0], counter_task, [(1,)])

    def test_unknown_session_is_a_typed_error(self, tcp):
        with pytest.raises(CommunicationError):
            tcp.run_nodes("never-initialised", [0], counter_task, [(1,)])


# ---------------------------------------------------------------------- #
# Failure handling: SIGKILL recovery, respawn, degrade
# ---------------------------------------------------------------------- #


class TestTcpRecovery:
    def test_sigkilled_agent_replays_bit_identically(self):
        """Kill an agent between rounds; the journal replay onto the
        surviving/respawned member must reproduce the exact RNG streams."""
        reference = InProcessTransport()
        expected = _run_rounds(reference, "chaos", rounds=3)
        transport = TcpTransport(
            max_workers=2, heartbeat_interval_s=0.2, heartbeat_timeout_s=2.0
        )
        try:
            transport.init_shared("chaos", "bias", 2.0)
            for node_id in range(4):
                transport.init_node(
                    "chaos",
                    node_id,
                    {"count": node_id, "rng": np.random.default_rng(17 + node_id)},
                )
            outputs = [
                transport.run_nodes("chaos", list(range(4)), counter_task, [(1,)] * 4)
            ]
            transport.kill_agent(0)
            for round_index in (1, 2):
                outputs.append(
                    transport.run_nodes(
                        "chaos",
                        list(range(4)),
                        counter_task,
                        [(round_index + 1,)] * 4,
                    )
                )
            assert outputs == expected
            assert transport.total_restarts >= 1
            assert not transport.degraded
        finally:
            transport.close()
            reference.close()

    def test_losing_every_agent_degrades_to_a_local_pool(self):
        reference = InProcessTransport()
        expected = _run_rounds(reference, "degrade", rounds=2)
        transport = TcpTransport(
            max_workers=2,
            heartbeat_interval_s=0.2,
            heartbeat_timeout_s=2.0,
            max_restarts=0,
        )
        try:
            transport.init_shared("degrade", "bias", 2.0)
            for node_id in range(4):
                transport.init_node(
                    "degrade",
                    node_id,
                    {"count": node_id, "rng": np.random.default_rng(17 + node_id)},
                )
            first = transport.run_nodes(
                "degrade", list(range(4)), counter_task, [(1,)] * 4
            )
            transport.kill_agent(0)
            transport.kill_agent(1)
            second = transport.run_nodes(
                "degrade", list(range(4)), counter_task, [(2,)] * 4
            )
            assert [first, second] == expected
            assert transport.degraded is True
            assert transport.health()["degraded"] is True
        finally:
            transport.close()
            reference.close()


# ---------------------------------------------------------------------- #
# The full solve path: cross-transport bit-identity grid + chaos cells
# ---------------------------------------------------------------------- #

TCP = TransportConfig(kind="tcp", max_workers=2)


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("family", PROBLEMS)
def test_tcp_transport_is_bit_identical(model, family):
    problem = _build_problem(family)
    inproc = _solve(problem, model, None)
    over_tcp = _solve(problem, model, TCP)
    assert inproc.metadata["transport"] == "inprocess"
    assert over_tcp.metadata["transport"] == "tcp"
    assert_bit_identical(inproc, over_tcp)


def _tcp_session(model: str = "coordinator", **transport_overrides):
    cfg = {"kind": "tcp", "max_workers": 2, "reuse_pool": False, **transport_overrides}
    return Session(
        model=model, transport=cfg, **SOLVE_KWARGS, **_model_overrides(model)
    )


class TestTcpSolveChaos:
    def test_sigkill_mid_solve_is_bit_identical(self):
        problem = _build_problem("lp")
        baseline = _solve(problem, "coordinator", None)
        session = _tcp_session()
        try:
            transport = session._transport
            plan = FaultPlan([FaultSpec(kind="worker_crash", at=1, node=1)])
            transport.attach_fault_plan(plan)
            result = session.solve(problem)
            assert_bit_identical(result, baseline)
            assert ("dispatch", 1, "worker_crash") in plan.fired
            assert transport.total_restarts >= 1
            assert not transport.degraded
            assert result.resources.transport_retries >= 1
            # The healed cluster keeps serving bit-identical results.
            transport.attach_fault_plan(None)
            session.reset()
            assert_bit_identical(session.solve(problem), baseline)
        finally:
            session.close()

    def test_exhausted_cluster_degrades_and_flags_metadata(self):
        problem = _build_problem("meb")
        baseline = _solve(problem, "coordinator", None)
        session = _tcp_session(max_workers=1, max_restarts=0)
        try:
            transport = session._transport
            plan = FaultPlan([FaultSpec(kind="worker_crash", at=1)])
            transport.attach_fault_plan(plan)
            result = session.solve(problem)
            assert_bit_identical(result, baseline)
            assert transport.degraded
            assert result.metadata.get("transport_degraded") is True
            assert session.transport_health()["degraded"] is True
        finally:
            session.close()


# ---------------------------------------------------------------------- #
# External agents: --listen mode dialed by addresses=
# ---------------------------------------------------------------------- #


def test_listen_agent_serves_a_dialing_coordinator(tmp_path):
    src_root = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    paths = [str(src_root), str(Path(__file__).resolve().parent)]
    if env.get("PYTHONPATH"):
        paths.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "node", "--listen", "127.0.0.1:0"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    transport = None
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("listening on ")
        address = parse_address(banner.removeprefix("listening on "))
        transport = TcpTransport(addresses=[address])
        reference = InProcessTransport()
        assert _run_rounds(transport, "dial", nodes=2) == _run_rounds(
            reference, "dial", nodes=2
        )
        transport.close()
        transport = None
        assert proc.wait(timeout=10.0) == 0  # drain sends a clean stop
    finally:
        if transport is not None:
            transport.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=5.0)
