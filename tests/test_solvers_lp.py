"""Tests for the LP solving substrate: HiGHS wrapper, lexicographic solve, Seidel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import InfeasibleProblemError, UnboundedProblemError
from repro.problems.seidel import seidel_solve
from repro.problems.solvers import lexicographic_minimum, solve_lp
from repro.workloads import random_feasible_lp, random_polytope_lp


class TestSolveLP:
    def test_simple_two_dimensional(self):
        # min x + y s.t. x >= 1, y >= 2  (as -x <= -1, -y <= -2)
        solution = solve_lp(
            c=[1.0, 1.0],
            a_ub=[[-1.0, 0.0], [0.0, -1.0]],
            b_ub=[-1.0, -2.0],
            bounds=(-100.0, 100.0),
        )
        assert solution.objective == pytest.approx(3.0)
        assert solution.x == pytest.approx([1.0, 2.0])

    def test_no_constraints_hits_box(self):
        solution = solve_lp(c=[1.0, -1.0], bounds=(-5.0, 5.0))
        assert solution.objective == pytest.approx(-10.0)

    def test_equality_constraints(self):
        solution = solve_lp(
            c=[1.0, 0.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[4.0],
            bounds=(0.0, 10.0),
        )
        assert solution.x[0] == pytest.approx(0.0)
        assert solution.x[1] == pytest.approx(4.0)

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleProblemError):
            solve_lp(
                c=[1.0],
                a_ub=[[1.0], [-1.0]],
                b_ub=[-1.0, -1.0],
                bounds=(-10.0, 10.0),
            )

    def test_unbounded_raises(self):
        with pytest.raises(UnboundedProblemError):
            solve_lp(c=[1.0], a_ub=[[0.0]], b_ub=[1.0])


class TestLexicographicMinimum:
    def test_breaks_ties_lexicographically(self):
        # Objective ignores both coordinates on the segment x + y = 1,
        # x, y in [0, 1]; the lexicographically smallest optimum is (0, 1).
        solution = lexicographic_minimum(
            c=np.array([1.0, 1.0]),
            a_ub=np.array([[-1.0, -1.0]]),
            b_ub=np.array([-1.0]),
            bounds=(0.0, 1.0),
        )
        assert solution.x[0] == pytest.approx(0.0, abs=1e-6)
        assert solution.x[1] == pytest.approx(1.0, abs=1e-6)

    def test_matches_plain_solve_objective(self):
        instance = random_feasible_lp(200, 3, seed=5).problem
        plain = solve_lp(
            instance.c, a_ub=instance.a, b_ub=instance.b, bounds=(-1e6, 1e6)
        )
        lex = lexicographic_minimum(
            instance.c, a_ub=instance.a, b_ub=instance.b, bounds=(-1e6, 1e6)
        )
        assert lex.objective == pytest.approx(plain.objective, rel=1e-5, abs=1e-5)

    def test_lexicographic_point_is_feasible(self):
        instance = random_polytope_lp(150, 2, seed=9).problem
        lex = lexicographic_minimum(
            instance.c, a_ub=instance.a, b_ub=instance.b, bounds=(-1e6, 1e6)
        )
        assert np.all(instance.a @ lex.x <= instance.b + 1e-6)


class TestSeidel:
    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_matches_highs_on_random_instances(self, dimension):
        for seed in range(4):
            instance = random_feasible_lp(120, dimension, seed=seed).problem
            seidel = seidel_solve(instance.c, instance.a, instance.b, box=1e6, rng=seed)
            highs = solve_lp(
                instance.c, a_ub=instance.a, b_ub=instance.b, bounds=(-1e6, 1e6)
            )
            assert seidel.objective == pytest.approx(highs.objective, rel=1e-5, abs=1e-5)

    def test_no_constraints_box_corner(self):
        result = seidel_solve(np.array([1.0, -2.0]), None, None, box=10.0, rng=0)
        assert result.objective == pytest.approx(-30.0)

    def test_one_dimensional(self):
        result = seidel_solve(
            np.array([-1.0]), np.array([[1.0]]), np.array([3.0]), box=10.0, rng=0
        )
        assert result.objective == pytest.approx(-3.0)

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleProblemError):
            seidel_solve(
                np.array([1.0]),
                np.array([[1.0], [-1.0]]),
                np.array([-1.0, -1.0]),
                box=10.0,
                rng=0,
            )

    def test_feasible_point_returned(self):
        instance = random_polytope_lp(200, 3, seed=2).problem
        result = seidel_solve(instance.c, instance.a, instance.b, box=1e6, rng=3)
        assert np.all(instance.a @ result.x <= instance.b + 1e-6)

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            seidel_solve(np.array([1.0]), None, None, box=0.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), dimension=st.integers(2, 3))
def test_seidel_agrees_with_highs_property(seed, dimension):
    """Property: on random feasible LPs the two backends agree on the optimum."""
    instance = random_feasible_lp(60, dimension, seed=seed).problem
    seidel = seidel_solve(instance.c, instance.a, instance.b, box=1e6, rng=seed + 1)
    highs = solve_lp(instance.c, a_ub=instance.a, b_ub=instance.b, bounds=(-1e6, 1e6))
    assert abs(seidel.objective - highs.objective) <= 1e-4 * max(1.0, abs(highs.objective))
