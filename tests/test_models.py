"""Tests for the computation-model substrates: streaming, coordinator, MPC, partition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import CommunicationError
from repro.models.coordinator import CoordinatorNetwork, Message
from repro.models.mpc import MPCCluster
from repro.models.partition import partition_indices
from repro.models.streaming import MultiPassStream, StreamingMemory


class TestMultiPassStream:
    def test_scan_yields_all_items_in_order(self):
        stream = MultiPassStream(5)
        assert list(stream.scan()) == [0, 1, 2, 3, 4]

    def test_custom_order(self):
        stream = MultiPassStream(4, order=[3, 1, 0, 2])
        assert list(stream.scan()) == [3, 1, 0, 2]

    def test_pass_counter(self):
        stream = MultiPassStream(3)
        assert stream.passes == 0
        list(stream.scan())
        list(stream.scan())
        assert stream.passes == 2

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            MultiPassStream(3, order=[0, 1])
        with pytest.raises(ValueError):
            MultiPassStream(3, order=[0, 1, 1])
        with pytest.raises(ValueError):
            MultiPassStream(3, order=[0, 1, 5])

    def test_empty_stream(self):
        stream = MultiPassStream(0)
        assert list(stream.scan()) == []

    def test_order_returns_copy(self):
        stream = MultiPassStream(3)
        order = stream.order()
        order[0] = 99
        assert list(stream.scan()) == [0, 1, 2]


class TestStreamingMemory:
    def test_peak_tracking(self):
        memory = StreamingMemory()
        memory.set_usage(items=10, bits=640)
        memory.set_usage(items=4, bits=256)
        assert memory.peak_items == 10
        assert memory.peak_bits == 640


class TestCoordinatorNetwork:
    @staticmethod
    def _network(k=3, per_site=4):
        parts = [np.arange(i * per_site, (i + 1) * per_site) for i in range(k)]
        return CoordinatorNetwork(parts)

    def test_round_and_bit_accounting(self):
        network = self._network()
        network.begin_round()
        network.coordinator_to_site(0, Message("hello", 100))
        network.site_to_coordinator(0, Message("reply", 50))
        network.end_round()
        assert network.rounds == 1
        assert network.total_bits == 150
        assert network.max_message_bits == 100
        assert network.ledger.total("bits_down") == 100
        assert network.ledger.total("bits_up") == 50

    def test_broadcast_counts_per_site(self):
        network = self._network(k=4)
        network.begin_round()
        network.broadcast(Message("basis", 64))
        network.end_round()
        assert network.total_bits == 4 * 64

    def test_message_outside_round_rejected(self):
        network = self._network()
        with pytest.raises(CommunicationError):
            network.coordinator_to_site(0, Message("x", 1))

    def test_double_begin_rejected(self):
        network = self._network()
        network.begin_round()
        with pytest.raises(CommunicationError):
            network.begin_round()

    def test_end_without_begin_rejected(self):
        with pytest.raises(CommunicationError):
            self._network().end_round()

    def test_unknown_site_rejected(self):
        network = self._network(k=2)
        network.begin_round()
        with pytest.raises(CommunicationError):
            network.coordinator_to_site(5, Message("x", 1))

    def test_negative_message_size_rejected(self):
        with pytest.raises(ValueError):
            Message("x", -1)

    def test_sites_hold_their_indices(self):
        network = self._network(k=2, per_site=3)
        assert network.sites[1].num_local == 3
        assert list(network.sites[1].local_indices) == [3, 4, 5]


class TestMPCCluster:
    @staticmethod
    def _cluster(k=4, per_machine=3):
        parts = [np.arange(i * per_machine, (i + 1) * per_machine) for i in range(k)]
        return MPCCluster(parts)

    def test_load_is_max_sent_or_received(self):
        cluster = self._cluster(k=3)
        cluster.begin_round()
        cluster.send(0, 1, 100)
        cluster.send(0, 2, 50)
        cluster.end_round()
        # Machine 0 sent 150 bits; the heaviest receiver got 100.
        assert cluster.max_load_bits == 150
        assert cluster.total_bits == 150

    def test_rounds_counted(self):
        cluster = self._cluster()
        for _ in range(3):
            cluster.begin_round()
            cluster.send(0, 1, 1)
            cluster.end_round()
        assert cluster.rounds == 3

    def test_send_outside_round_rejected(self):
        cluster = self._cluster()
        with pytest.raises(CommunicationError):
            cluster.send(0, 1, 10)

    def test_unknown_machine_rejected(self):
        cluster = self._cluster(k=2)
        cluster.begin_round()
        with pytest.raises(CommunicationError):
            cluster.send(0, 9, 10)

    def test_broadcast_tree_reaches_everyone_with_bounded_load(self):
        cluster = self._cluster(k=16, per_machine=1)
        rounds = cluster.broadcast_tree(root=0, message_bits=10, fanout=4)
        # 16 machines with fanout 4: 2 rounds suffice.
        assert rounds == 2
        assert cluster.rounds == 2
        # No machine ever sends more than fanout * message_bits per round.
        assert cluster.max_load_bits <= 4 * 10

    def test_broadcast_tree_single_machine_is_free(self):
        cluster = MPCCluster([np.arange(3)])
        assert cluster.broadcast_tree(root=0, message_bits=10, fanout=2) == 0
        assert cluster.total_bits == 0

    def test_aggregate_tree_combines_values(self):
        cluster = self._cluster(k=9, per_machine=1)
        values = [float(i) for i in range(9)]
        rounds, total = cluster.aggregate_tree(
            root=0, value_bits=8, fanout=3, values=values, combine=lambda a, b: (a or 0) + (b or 0)
        )
        assert total == pytest.approx(sum(values))
        assert rounds >= 2
        assert cluster.max_load_bits <= 3 * 8

    def test_aggregate_tree_invalid_fanout(self):
        cluster = self._cluster()
        with pytest.raises(ValueError):
            cluster.aggregate_tree(root=0, value_bits=1, fanout=1)
        with pytest.raises(ValueError):
            cluster.broadcast_tree(root=0, message_bits=1, fanout=1)


class TestPartition:
    @pytest.mark.parametrize("method", ["round_robin", "contiguous", "random", "skewed"])
    def test_partition_is_disjoint_and_complete(self, method):
        parts = partition_indices(100, 7, method=method, seed=0)
        assert len(parts) == 7
        union = np.concatenate(parts)
        assert sorted(union.tolist()) == list(range(100))

    def test_round_robin_balance(self):
        parts = partition_indices(100, 4, method="round_robin")
        assert all(p.size == 25 for p in parts)

    def test_contiguous_blocks(self):
        parts = partition_indices(10, 2, method="contiguous")
        assert list(parts[0]) == list(range(5))
        assert list(parts[1]) == list(range(5, 10))

    def test_skewed_is_imbalanced(self):
        parts = partition_indices(2000, 8, method="skewed", seed=1, skew=4.0)
        sizes = sorted(p.size for p in parts)
        assert sizes[-1] > sizes[0]

    def test_parts_are_sorted(self):
        for method in ("round_robin", "random", "skewed"):
            for part in partition_indices(50, 5, method=method, seed=2):
                assert np.all(np.diff(part) > 0) or part.size <= 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_indices(10, 0)
        with pytest.raises(ValueError):
            partition_indices(-1, 2)
        with pytest.raises(ValueError):
            partition_indices(10, 2, method="nope")
