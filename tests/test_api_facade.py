"""Facade-vs-legacy parity: ``repro.solve()`` equals the old entry points.

The acceptance bar of the API redesign: for every model and every problem
family, ``solve(problem, model=m, ...)`` and ``solve_many([problem],
model=m, ...)[0]`` must return results *identical* to the corresponding
legacy entry point under the same seed — same optimum, same witness, same
basis, and the same resource accounting — while the legacy entry points
keep working but emit ``DeprecationWarning``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import compare_models, solve, solve_many
from repro.algorithms import (
    coordinator_clarkson_solve,
    mpc_clarkson_solve,
    streaming_clarkson_solve,
)
from repro.core.clarkson import clarkson_solve
from repro.problems import ConvexQuadraticProgram, MinimumEnclosingBall
from repro.workloads import (
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

from tests.conftest import assert_objective_close, fast_params

SEED = 0
FAST = dict(sample_size=400, success_threshold=0.02, max_iterations=500)


def _lp_instance():
    return random_polytope_lp(1000, 2, seed=41).problem


def _meb_instance():
    return MinimumEnclosingBall(points=uniform_ball_points(1000, 2, radius=2.0, seed=42))


def _svm_instance():
    data = make_separable_classification(900, 2, seed=43, margin=0.4)
    return svm_problem(data)


def _qp_instance():
    rng = np.random.default_rng(44)
    d = 2
    g = rng.normal(size=(900, d))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    h = g.sum(axis=1) * 5.0 - rng.uniform(0.5, 4.0, size=900)
    return ConvexQuadraticProgram(
        q_matrix=np.eye(d) * 2.0, q_vector=np.ones(d), g_matrix=g, h_vector=h
    )


PROBLEMS = {
    "lp": _lp_instance,
    "meb": _meb_instance,
    "svm": _svm_instance,
    "qp": _qp_instance,
}


def _legacy(entry_point, problem, **kwargs):
    """Run a deprecated entry point with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return entry_point(problem, params=fast_params(), rng=SEED, **kwargs)


LEGACY_CALLS = {
    "sequential": lambda problem: _legacy(clarkson_solve, problem),
    "streaming": lambda problem: _legacy(streaming_clarkson_solve, problem, r=2),
    "coordinator": lambda problem: _legacy(
        coordinator_clarkson_solve, problem, num_sites=4, r=2
    ),
    "mpc": lambda problem: _legacy(mpc_clarkson_solve, problem, delta=0.5),
}

FACADE_KWARGS = {
    "sequential": dict(),
    "streaming": dict(r=2),
    "coordinator": dict(r=2, num_sites=4),
    "mpc": dict(delta=0.5),
}


def _scalar(value):
    for attr in ("objective", "radius", "squared_norm"):
        if hasattr(value, attr):
            return float(getattr(value, attr))
    return float(value)


def _witness_vector(witness):
    """Flatten any witness (array, lexicographic point, Ball) for comparison."""
    if witness is None:
        return np.empty(0)
    if hasattr(witness, "center"):  # MEB Ball
        return np.concatenate(
            [np.asarray(witness.center, dtype=float).ravel(), [float(witness.radius)]]
        )
    return np.asarray(witness, dtype=float).ravel()


def assert_results_identical(facade_result, legacy_result):
    """Same optimum, same certificate, same resource semantics."""
    assert _scalar(facade_result.value) == _scalar(legacy_result.value)
    assert facade_result.basis_indices == legacy_result.basis_indices
    assert np.allclose(
        _witness_vector(facade_result.witness), _witness_vector(legacy_result.witness)
    )
    assert facade_result.iterations == legacy_result.iterations
    assert facade_result.successful_iterations == legacy_result.successful_iterations
    assert facade_result.resources == legacy_result.resources
    assert facade_result.metadata == legacy_result.metadata


@pytest.mark.parametrize("model", sorted(LEGACY_CALLS))
@pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
def test_solve_matches_legacy_entry_point(model, problem_name):
    problem = PROBLEMS[problem_name]()
    facade_result = solve(problem, model=model, seed=SEED, **FAST, **FACADE_KWARGS[model])
    legacy_result = LEGACY_CALLS[model](problem)
    assert_results_identical(facade_result, legacy_result)


@pytest.mark.parametrize("model", sorted(LEGACY_CALLS))
def test_solve_many_single_instance_matches_legacy(model):
    problem = _lp_instance()
    root_seed = 123
    batch = solve_many(
        [problem], model=model, root_seed=root_seed, **FAST, **FACADE_KWARGS[model]
    )
    assert len(batch) == 1
    # solve_many derives the instance seed as SeedSequence(root).spawn(1)[0];
    # the legacy entry point fed the same child seed must agree exactly.
    child = np.random.SeedSequence(root_seed).spawn(1)[0]
    facade_result = batch[0]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_entry = {
            "sequential": clarkson_solve,
            "streaming": streaming_clarkson_solve,
            "coordinator": coordinator_clarkson_solve,
            "mpc": mpc_clarkson_solve,
        }[model]
        kwargs = {
            "sequential": dict(),
            "streaming": dict(r=2),
            "coordinator": dict(num_sites=4, r=2),
            "mpc": dict(delta=0.5),
        }[model]
        legacy_result = legacy_entry(problem, params=fast_params(), rng=child, **kwargs)
    assert_results_identical(facade_result, legacy_result)


@pytest.mark.parametrize(
    "entry_point, kwargs",
    [
        (clarkson_solve, dict()),
        (streaming_clarkson_solve, dict(r=2)),
        (coordinator_clarkson_solve, dict(num_sites=2, r=2)),
        (mpc_clarkson_solve, dict(delta=0.5)),
    ],
)
def test_legacy_entry_points_emit_deprecation_warning(tiny_lp, entry_point, kwargs):
    with pytest.warns(DeprecationWarning, match="repro.solve"):
        result = entry_point(tiny_lp, rng=0, **kwargs)
    assert result.basis_indices  # still fully functional


def test_compare_models_runs_the_four_theorem_models(medium_lp):
    results = compare_models(
        medium_lp, seed=SEED, num_sites=3, delta=0.5, **FAST
    )
    assert sorted(results) == ["coordinator", "mpc", "sequential", "streaming"]
    reference = results["sequential"]
    for name, result in results.items():
        assert_objective_close(result.value, reference.value)
    # each model reports costs in its own currency
    assert results["streaming"].resources.passes > 0
    assert results["coordinator"].resources.total_communication_bits > 0
    assert results["mpc"].resources.max_machine_load_bits > 0


def test_compare_models_with_explicit_model_list(medium_lp):
    results = compare_models(
        medium_lp,
        models=("exact", "streaming"),
        seed=SEED,
        **FAST,
    )
    assert sorted(results) == ["exact", "streaming"]
    assert_objective_close(results["exact"].value, results["streaming"].value)


def test_compare_models_rejects_key_unknown_to_all(medium_lp):
    from repro.core.exceptions import InvalidConfigError

    with pytest.raises(InvalidConfigError, match="bogus"):
        compare_models(medium_lp, models=("sequential", "streaming"), bogus=1)


def test_base_config_coerces_to_model_config(medium_lp):
    """One base SolverConfig seeds models with richer config classes."""
    from repro import SolverConfig

    base = SolverConfig(r=2, seed=SEED, **{k: v for k, v in FAST.items()})
    result = solve(medium_lp, model="coordinator", config=base, num_sites=3)
    direct = solve(medium_lp, model="coordinator", seed=SEED, num_sites=3, **FAST)
    assert_results_identical(result, direct)


def test_subclass_config_coerces_to_narrower_model_config(medium_lp):
    """A richer config seeds a model with a narrower config class: the
    subclass-only fields are dropped instead of raising (regression)."""
    from repro import StreamingConfig

    cfg = StreamingConfig(r=2, seed=SEED, **FAST)
    result = solve(medium_lp, model="sequential", config=cfg, max_iterations=400)
    direct = solve(medium_lp, model="sequential", seed=SEED, max_iterations=400,
                   **{k: v for k, v in FAST.items() if k != "max_iterations"})
    assert_results_identical(result, direct)
    results = compare_models(medium_lp, config=cfg, num_sites=3, delta=0.5)
    assert sorted(results) == ["coordinator", "mpc", "sequential", "streaming"]


def test_dropped_config_fields_warn_by_name(medium_lp):
    """Seeding a narrower config from a richer one no longer drops fields
    silently: a ConfigFieldDroppedWarning names every non-default field the
    target class cannot carry over (regression: ISSUE 5 satellite)."""
    from repro import StreamingConfig
    from repro.core.exceptions import ConfigFieldDroppedWarning

    order = list(range(medium_lp.num_constraints))
    cfg = StreamingConfig(r=2, seed=SEED, order=order, **FAST)
    with pytest.warns(ConfigFieldDroppedWarning, match="'order'"):
        result = solve(medium_lp, model="sequential", config=cfg)
    assert result.basis_indices  # the solve itself still runs


def test_default_valued_fields_drop_without_warning(medium_lp, recwarn):
    """Carrying a richer config whose extra fields are all defaults stays
    silent — only genuinely-set fields are worth warning about."""
    import warnings as _warnings

    from repro import StreamingConfig
    from repro.core.exceptions import ConfigFieldDroppedWarning

    cfg = StreamingConfig(r=2, seed=SEED, **FAST)
    with _warnings.catch_warnings():
        _warnings.simplefilter("error", ConfigFieldDroppedWarning)
        solve(medium_lp, model="sequential", config=cfg)


def test_compare_models_suppresses_drop_warnings(medium_lp):
    """Cross-model seeding is compare_models' documented contract, so the
    drop warning stays quiet there."""
    import warnings as _warnings

    from repro import CoordinatorConfig
    from repro.core.exceptions import ConfigFieldDroppedWarning

    cfg = CoordinatorConfig(r=2, seed=SEED, num_sites=3, **FAST)
    with _warnings.catch_warnings():
        _warnings.simplefilter("error", ConfigFieldDroppedWarning)
        results = compare_models(
            medium_lp, models=("sequential", "streaming"), config=cfg
        )
    assert sorted(results) == ["sequential", "streaming"]


def test_baseline_models_reachable_from_facade(medium_lp):
    exact = solve(medium_lp, model="exact")
    ship = solve(medium_lp, model="ship_all_coordinator", num_sites=4)
    single = solve(medium_lp, model="single_pass_streaming")
    assert_objective_close(exact.value, ship.value)
    assert_objective_close(exact.value, single.value)
    assert ship.resources.total_communication_bits > 0
    assert single.resources.passes == 1
    classic = solve(medium_lp, model="classic_reweighting", seed=SEED, **FAST)
    assert classic.metadata["algorithm"] == "clarkson_classic_reweighting"
    assert classic.metadata["boost"] == 2.0  # the baseline's defining knob
    assert_objective_close(exact.value, classic.value)
