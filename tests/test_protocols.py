"""Tests for the two-party communication protocols for TCI."""

from __future__ import annotations

import pytest

from repro.core.accounting import BitCostModel
from repro.core.exceptions import ProtocolError
from repro.lower_bounds.aug_index import aug_index_to_tci, random_aug_index
from repro.lower_bounds.hard_distribution import sample_hard_instance
from repro.lower_bounds.protocols import (
    Transcript,
    interactive_tci_protocol,
    one_round_tci_protocol,
)


class TestTranscript:
    def test_bit_and_message_counting(self):
        transcript = Transcript()
        transcript.send("alice", "msg1", 100)
        transcript.send("alice", "msg2", 50)
        transcript.send("bob", "reply", 10)
        assert transcript.total_bits == 160
        assert transcript.num_messages == 3
        assert transcript.rounds == 2  # alice block, then bob block

    def test_invalid_sender(self):
        with pytest.raises(ProtocolError):
            Transcript().send("carol", "msg", 1)

    def test_negative_bits(self):
        with pytest.raises(ProtocolError):
            Transcript().send("alice", "msg", -1)


class TestOneRoundProtocol:
    def test_answer_and_cost(self):
        hard = sample_hard_instance(branching=6, rounds=2, seed=0)
        result = one_round_tci_protocol(hard.instance)
        assert result.answer == hard.answer
        assert result.total_bits == hard.instance.length * 64
        assert result.rounds == 1

    def test_custom_cost_model(self):
        hard = sample_hard_instance(branching=4, rounds=2, seed=1)
        result = one_round_tci_protocol(hard.instance, cost_model=BitCostModel(bits_per_coefficient=32))
        assert result.total_bits == hard.instance.length * 32


class TestInteractiveProtocol:
    @pytest.mark.parametrize("rounds", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", range(3))
    def test_correct_on_hard_instances(self, rounds, seed):
        hard = sample_hard_instance(branching=6, rounds=2, seed=seed)
        result = interactive_tci_protocol(hard.instance, rounds=rounds)
        assert result.answer == hard.answer

    @pytest.mark.parametrize("seed", range(3))
    def test_correct_on_aug_index_instances(self, seed):
        instance = aug_index_to_tci(random_aug_index(40, seed=seed), sigma=3.0)
        expected = instance.solve()
        for rounds in (1, 2, 3):
            assert interactive_tci_protocol(instance, rounds=rounds).answer == expected

    def test_more_rounds_means_less_communication(self):
        """The r-round protocol communicates ~ r * n^{1/r} values: decreasing in r."""
        hard = sample_hard_instance(branching=9, rounds=3, seed=2)  # n = 729
        bits = [
            interactive_tci_protocol(hard.instance, rounds=r).total_bits for r in (1, 2, 3)
        ]
        assert bits[0] > bits[1] > bits[2]

    def test_communication_scales_like_n_to_one_over_r(self):
        small = sample_hard_instance(branching=5, rounds=2, seed=3)   # n = 25
        large = sample_hard_instance(branching=15, rounds=2, seed=3)  # n = 225
        small_bits = interactive_tci_protocol(small.instance, rounds=2).total_bits
        large_bits = interactive_tci_protocol(large.instance, rounds=2).total_bits
        # A 9x larger instance should cost roughly 3x (sqrt growth), certainly
        # far less than 9x.
        assert large_bits < 6 * small_bits

    def test_rounds_bounded_by_two_r_plus_final_exchange(self):
        hard = sample_hard_instance(branching=6, rounds=2, seed=4)
        result = interactive_tci_protocol(hard.instance, rounds=3)
        assert result.rounds <= 2 * 3 + 2

    def test_invalid_rounds(self):
        hard = sample_hard_instance(branching=4, rounds=1, seed=5)
        with pytest.raises(ValueError):
            interactive_tci_protocol(hard.instance, rounds=0)
