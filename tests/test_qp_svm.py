"""Tests for the QP backend and the hard-margin linear SVM problem (Section 4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InfeasibleProblemError, InvalidInstanceError
from repro.problems.qp import minimize_convex_qp
from repro.problems.svm import LinearSVM, SVMValue
from repro.workloads import make_separable_classification, svm_problem


class TestMinimizeConvexQP:
    def test_unconstrained_quadratic(self):
        solution = minimize_convex_qp(np.eye(2), np.array([-2.0, -4.0]))
        assert solution.x == pytest.approx([2.0, 4.0], abs=1e-5)

    def test_constrained_projection(self):
        # min ||x||^2 / 2 s.t. x_0 + x_1 >= 2  -> x = (1, 1).
        solution = minimize_convex_qp(
            np.eye(2), np.zeros(2), g_matrix=[[1.0, 1.0]], h_vector=[2.0]
        )
        assert solution.x == pytest.approx([1.0, 1.0], abs=1e-5)

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleProblemError):
            minimize_convex_qp(
                np.eye(1),
                np.zeros(1),
                g_matrix=[[1.0], [-1.0]],
                h_vector=[1.0, 1.0],  # x >= 1 and -x >= 1: impossible
            )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            minimize_convex_qp(np.eye(3), np.zeros(2))
        with pytest.raises(ValueError):
            minimize_convex_qp(np.eye(2), np.zeros(2), g_matrix=[[1.0, 0.0]], h_vector=[1.0, 2.0])


class TestSVMValue:
    def test_ordering(self):
        small = SVMValue(squared_norm=1.0)
        large = SVMValue(squared_norm=2.0)
        top = SVMValue(squared_norm=float("inf"), infeasible=True)
        assert small < large < top
        assert small == SVMValue(squared_norm=1.0 + 1e-9)

    def test_infeasible_equality(self):
        assert SVMValue(float("inf"), infeasible=True) == SVMValue(float("inf"), infeasible=True)


class TestLinearSVM:
    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            LinearSVM(points=[[1.0, 2.0]], labels=[0])
        with pytest.raises(InvalidInstanceError):
            LinearSVM(points=[[1.0, 2.0], [2.0, 1.0]], labels=[1])
        with pytest.raises(InvalidInstanceError):
            LinearSVM(points=np.ones(4), labels=[1, 1, -1, -1])

    def test_two_point_analytic_solution(self):
        # Points (1, 0) with label +1 and (-1, 0) with label -1: the optimal
        # hyperplane through the origin is u = (1, 0).
        svm = LinearSVM(points=[[1.0, 0.0], [-1.0, 0.0]], labels=[1, -1])
        result = svm.solve()
        assert result.witness == pytest.approx([1.0, 0.0], abs=1e-4)
        assert result.value.squared_norm == pytest.approx(1.0, abs=1e-4)

    def test_margin_constraints_satisfied_at_optimum(self):
        data = make_separable_classification(200, 3, seed=0, margin=0.4)
        svm = svm_problem(data)
        result = svm.solve()
        margins = (svm.points * svm.labels[:, None]) @ result.witness
        assert np.all(margins >= 1.0 - 1e-4)

    def test_optimum_margin_at_least_planted_margin(self):
        # The planted direction separates with functional margin >= margin,
        # so the optimal ||u|| is at most 1/margin and the geometric margin
        # at least the planted one.
        data = make_separable_classification(300, 2, seed=1, margin=0.5)
        svm = svm_problem(data)
        result = svm.solve()
        assert svm.margin(result.witness) >= 0.5 - 1e-3

    def test_empty_subset_gives_zero(self):
        data = make_separable_classification(50, 2, seed=2)
        svm = svm_problem(data)
        result = svm.solve_subset([])
        assert result.value.squared_norm == pytest.approx(0.0)
        assert np.allclose(result.witness, 0.0)

    def test_monotonicity_of_objective(self):
        data = make_separable_classification(100, 2, seed=3)
        svm = svm_problem(data)
        small = svm.solve_subset(range(20)).value
        large = svm.solve_subset(range(100)).value
        assert not large < small

    def test_violation_test_matches_margin(self):
        data = make_separable_classification(100, 3, seed=4)
        svm = svm_problem(data)
        u = np.array([0.2, -0.1, 0.3])
        expected = {
            i
            for i in range(100)
            if data.labels[i] * float(data.points[i] @ u) < 1.0 - 1e-6
        }
        got = set(svm.violating_indices(u, range(100)).tolist())
        assert got == expected

    def test_optimum_violates_nothing(self):
        data = make_separable_classification(150, 2, seed=5)
        svm = svm_problem(data)
        result = svm.solve()
        assert svm.violating_indices(result.witness, svm.all_indices()).size == 0

    def test_basis_has_few_support_vectors(self):
        data = make_separable_classification(200, 2, seed=6)
        svm = svm_problem(data)
        result = svm.solve()
        assert 1 <= len(result.indices) <= svm.combinatorial_dimension

    def test_non_separable_is_infeasible(self):
        # Identical point with opposite labels cannot be separated.
        svm = LinearSVM(points=[[1.0, 1.0], [1.0, 1.0]], labels=[1, -1])
        result = svm.solve()
        assert result.value.infeasible

    def test_classify(self):
        data = make_separable_classification(100, 2, seed=7, margin=0.5)
        svm = svm_problem(data)
        result = svm.solve()
        predictions = svm.classify(result.witness, data.points)
        assert np.all(predictions == data.labels)
