"""The stateful session API: lifecycle, warm-start determinism, ingestion.

The central contract (ISSUE 5): a warm re-solve —
``session.resolve_with(added=...)`` — certifies the *same basis* as a cold
solve of the union instance, for all four problem families and all four
models, including on the real-multiprocess ``ProcessPoolTransport``; and
``SolveResult.warm`` records the reuse.  One-shot ``repro.solve`` stays
bit-identical to a session's cold solve.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    BudgetExceededError,
    ResourceBudget,
    SessionError,
    TransportConfig,
    solve,
)
from repro.api.session import extend_problem
from repro.problems import (
    ConvexQuadraticProgram,
    LinearSVM,
    MinimumEnclosingBall,
)
from repro.workloads import (
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

FAST = dict(sample_size=400, success_threshold=0.02, max_iterations=500, seed=0)

MODELS = ("sequential", "streaming", "coordinator", "mpc")
MODEL_KWARGS = {
    "sequential": dict(),
    "streaming": dict(r=2),
    "coordinator": dict(r=2, num_sites=3),
    "mpc": dict(delta=0.5),
}

_QP_ANCHOR = {}


def _lp_instance():
    return random_polytope_lp(1600, 2, seed=21).problem


def _meb_instance():
    return MinimumEnclosingBall(points=uniform_ball_points(1500, 2, radius=2.0, seed=22))


def _svm_instance():
    return svm_problem(make_separable_classification(1200, 2, seed=23, margin=0.4))


def _qp_instance():
    rng = np.random.default_rng(24)
    d = 2
    g = rng.normal(size=(1200, d))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    anchor = np.full(d, 5.0)
    h = g @ anchor - rng.uniform(0.5, 4.0, size=1200)
    problem = ConvexQuadraticProgram(
        q_matrix=np.eye(d) * 2.0, q_vector=np.ones(d), g_matrix=g, h_vector=h
    )
    _QP_ANCHOR[id(problem)] = anchor
    return problem


def _cut_lp(problem, result):
    """A halfspace cutting off the LP optimum but keeping feasibility.

    The cut direction is the objective *tilted* by an orthogonal component,
    so the cut's face is not an objective level set — the new optimum is a
    nondegenerate vertex with a unique basis (a cut along ``-c`` would tie
    every point of the cut face and leave the basis to tie-breaking)."""
    witness = np.asarray(result.witness, dtype=float)
    direction = -(problem.c + 0.37 * np.array([-problem.c[1], problem.c[0]]))
    rhs = float(direction @ witness) - 0.05
    return (direction.reshape(1, -1), np.array([rhs]))


def _cut_meb(problem, result):
    """Points outside the current minimum enclosing ball."""
    ball = result.witness
    direction = np.zeros(problem.dimension)
    direction[0] = 1.0
    return ball.center + direction * (ball.radius * 1.5)


def _cut_svm(problem, result):
    """A correctly-labelled point strictly inside the current margin: it
    violates the margin-1 constraint under the current witness, but scaling
    that witness still separates — the instance stays feasible."""
    u = np.asarray(result.witness, dtype=float)
    point = u * (0.5 / float(u @ u))
    return (point.reshape(1, -1), np.array([1.0]))


def _cut_qp(problem, result):
    """A halfspace ``g.x >= h`` violated at the QP optimum but satisfied at
    the instance's known interior anchor."""
    anchor = _QP_ANCHOR[id(problem)]
    x_star = np.asarray(result.witness, dtype=float)
    g = anchor - x_star
    g = g / np.linalg.norm(g)
    h = float(g @ x_star) + 0.5 * float(g @ (anchor - x_star))
    return (g.reshape(1, -1), np.array([h]))


INSTANCES = {
    "lp": _lp_instance,
    "meb": _meb_instance,
    "svm": _svm_instance,
    "qp": _qp_instance,
}
CUTTERS = {"lp": _cut_lp, "meb": _cut_meb, "svm": _cut_svm, "qp": _cut_qp}


def _scalar(value):
    for attr in ("objective", "radius", "squared_norm"):
        if hasattr(value, attr):
            return float(getattr(value, attr))
    return float(value)


# ---------------------------------------------------------------------- #
# One-shot parity: solve() is an ephemeral session
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("model", MODELS)
def test_session_cold_solve_matches_one_shot(model):
    problem = _lp_instance()
    one_shot = solve(problem, model=model, **FAST, **MODEL_KWARGS[model])
    with repro.session(model=model, **FAST, **MODEL_KWARGS[model]) as sess:
        in_session = sess.solve(problem)
    assert _scalar(in_session.value) == _scalar(one_shot.value)
    assert in_session.basis_indices == one_shot.basis_indices
    assert in_session.iterations == one_shot.iterations
    assert in_session.resources == one_shot.resources
    assert in_session.metadata == one_shot.metadata
    # The one-shot facade never tracks warm state; the session always does.
    assert one_shot.warm is None
    assert in_session.warm is not None and not in_session.warm.warm_start


# ---------------------------------------------------------------------- #
# Warm-start determinism: the 4 problems x 4 models grid
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("family", sorted(INSTANCES))
def test_warm_resolve_agrees_with_cold_union_solve(family, model):
    problem = INSTANCES[family]()
    kwargs = MODEL_KWARGS[model]
    with repro.session(model=model, **FAST, **kwargs) as sess:
        first = sess.solve(problem)
        added = CUTTERS[family](problem, first)
        union, keep = extend_problem(problem, added=added)
        assert keep.size == problem.num_constraints
        # The cut genuinely invalidates the prior optimum, so the engine
        # (not the fast path) must run.
        assert union.violation_mask(
            first.witness, union.all_indices()
        ).any(), "test constraint does not cut the prior optimum"
        warm = sess.resolve_with(added=added)

    cold = solve(union, model=model, **FAST, **kwargs)
    assert warm.warm is not None and not warm.warm.fast_path
    assert warm.warm.reused_bases == first.warm.new_bases
    # The determinism contract: same certified basis, same optimum.
    assert warm.basis_indices == cold.basis_indices
    assert _scalar(warm.value) == pytest.approx(
        _scalar(cold.value), rel=1e-6, abs=1e-9
    )
    # The cut moved the optimum.
    assert _scalar(warm.value) != pytest.approx(
        _scalar(first.value), rel=1e-9, abs=1e-12
    )


@pytest.mark.parametrize("model", ("streaming", "coordinator", "mpc"))
def test_warm_resolve_process_transport_bit_identical(model):
    """The warm grid on real worker processes: results match in-process."""
    problem = random_polytope_lp(900, 2, seed=31).problem
    kwargs = dict(MODEL_KWARGS[model])
    transport = TransportConfig(kind="process", max_workers=2)

    outcomes = {}
    for label, extra in (("inprocess", {}), ("process", {"transport": transport})):
        with repro.session(model=model, **FAST, **kwargs, **extra) as sess:
            first = sess.solve(problem)
            added = _cut_lp(problem, first)
            warm = sess.resolve_with(added=added)
            outcomes[label] = (first, warm)

    for index in range(2):
        a = outcomes["inprocess"][index]
        b = outcomes["process"][index]
        assert a.basis_indices == b.basis_indices
        assert _scalar(a.value) == _scalar(b.value)
        assert a.iterations == b.iterations
    # And the process-side warm result agrees with a cold union solve.
    union, _ = extend_problem(problem, added=_cut_lp(problem, outcomes["process"][0]))
    cold = solve(union, model=model, **FAST, **kwargs)
    assert outcomes["process"][1].basis_indices == cold.basis_indices


# ---------------------------------------------------------------------- #
# Fast path, removals, errors
# ---------------------------------------------------------------------- #


def test_fast_path_certifies_satisfied_additions_in_one_sweep():
    problem = _lp_instance()
    with repro.session(model="streaming", **FAST, r=2) as sess:
        first = sess.solve(problem)
        witness = np.asarray(first.witness, dtype=float)
        row = np.ones((1, problem.dimension))
        rhs = np.array([float((row @ witness)[0]) + 1.0])  # satisfied at the optimum
        result = sess.resolve_with(added=(row, rhs))
    assert result.warm.fast_path
    assert result.iterations == 0
    assert result.resources.passes == 1  # the certification sweep
    assert result.basis_indices == first.basis_indices
    assert _scalar(result.value) == _scalar(first.value)


def test_resolve_without_changes_is_a_warm_recertification():
    problem = _lp_instance()
    with repro.session(model="sequential", **FAST) as sess:
        first = sess.solve(problem)
        again = sess.resolve_with()
    assert again.warm.fast_path
    assert _scalar(again.value) == _scalar(first.value)


def test_removal_reruns_engine_and_matches_cold_solve():
    problem = _lp_instance()
    with repro.session(model="sequential", **FAST) as sess:
        first = sess.solve(problem)
        removed = [int(i) for i in first.basis_indices[:1]]
        warm = sess.resolve_with(removed=removed)
    shrunk, keep = extend_problem(problem, removed=removed)
    assert keep.size == problem.num_constraints - 1
    cold = solve(shrunk, model="sequential", **FAST)
    assert not warm.warm.fast_path  # removals never take the fast path
    assert warm.basis_indices == cold.basis_indices
    assert _scalar(warm.value) == pytest.approx(_scalar(cold.value), rel=1e-6)
    # Dropping a basis constraint can only improve (or keep) the optimum.
    assert _scalar(warm.value) <= _scalar(first.value) + 1e-9


def test_warm_state_accumulates_across_resolves():
    problem = _lp_instance()
    with repro.session(model="streaming", **FAST, r=2) as sess:
        first = sess.solve(problem)
        result = first
        total = first.warm.new_bases
        for step in range(2):
            added = _cut_lp(problem, result)
            problem, _ = extend_problem(problem, added=added)
            result = sess.resolve_with(added=added)
            assert result.warm.reused_bases == total
            total += result.warm.new_bases
        assert sess.describe()["warm_bases"] == total


def test_resolve_with_requires_prior_solve_and_capability(medium_lp):
    with repro.session(model="streaming", **FAST) as sess:
        with pytest.raises(SessionError, match="prior solve"):
            sess.resolve_with(removed=[0])
    with repro.session(model="exact") as sess:
        sess.solve(medium_lp)
        with pytest.raises(SessionError, match="warm restart"):
            sess.resolve_with(removed=[0])


def test_closed_session_rejects_solves(medium_lp):
    sess = repro.session(model="sequential", **FAST)
    sess.close()
    with pytest.raises(SessionError, match="closed"):
        sess.solve(medium_lp)


def test_session_validates_transport_kind_against_model():
    """A model whose driver only runs in-process rejects a process config."""
    from repro.api import register_model, unregister_model
    from repro.api.config import StreamingConfig
    from repro.core.exceptions import InvalidConfigError

    register_model(
        "inprocess-only",
        lambda problem, config: None,
        config_cls=StreamingConfig,
        transports=("inprocess",),
    )
    try:
        with pytest.raises(InvalidConfigError, match="does not run on transport"):
            repro.session(
                model="inprocess-only", transport=TransportConfig(kind="process")
            )
    finally:
        unregister_model("inprocess-only")


def test_fast_path_skipped_when_overrides_or_budget_given():
    """Per-call overrides demand a real solve: the fast path never swallows
    them (regression: it used to return the cached prior certificate)."""
    problem = _lp_instance()
    with repro.session(model="streaming", **FAST, r=2) as sess:
        first = sess.solve(problem)
        witness = np.asarray(first.witness, dtype=float)
        row = np.ones((1, problem.dimension))
        rhs = np.array([float((row @ witness)[0]) + 1.0])
        overridden = sess.resolve_with(added=(row, rhs), r=3)
    assert not overridden.warm.fast_path
    assert overridden.metadata["r"] == 3


def test_facade_keeps_accepting_transports_runners_ignore(medium_lp):
    """Baseline runners ignore the config's transport field; one-shot calls
    with such configs must keep working (pre-session behaviour), while an
    explicit session enforces the model's declared transports."""
    from repro import CoordinatorConfig

    config = CoordinatorConfig(
        num_sites=2, transport=TransportConfig(kind="process"), seed=0
    )
    result = solve(medium_lp, model="ship_all_coordinator", config=config)
    assert result.basis_indices
    with pytest.raises(SessionError, match="removed indices"):
        extend_problem(medium_lp, removed=[medium_lp.num_constraints + 5])


def test_extend_problem_rejects_unknown_problem_types():
    class Opaque:
        num_constraints = 3
        dimension = 2

    with pytest.raises(SessionError, match="with_constraint_changes"):
        extend_problem(Opaque())


# ---------------------------------------------------------------------- #
# Budgets through the session
# ---------------------------------------------------------------------- #


def test_iteration_budget_aborts_with_partial_usage():
    problem = _lp_instance()
    with repro.session(model="sequential", **FAST) as sess:
        reference = sess.solve(problem)
        assert reference.iterations > 1, "instance too easy to exercise budgets"
        with pytest.raises(BudgetExceededError) as excinfo:
            sess.run_cold(problem, budget=ResourceBudget(iterations=1))
    assert excinfo.value.reason == "iterations"
    assert excinfo.value.iterations == 1
    assert excinfo.value.usage is not None


def test_communication_budget_aborts_coordinator_solve():
    problem = _lp_instance()
    with repro.session(model="coordinator", **FAST, num_sites=3) as sess:
        with pytest.raises(BudgetExceededError) as excinfo:
            sess.run_cold(problem, budget=ResourceBudget(communication_bits=64))
    assert excinfo.value.reason == "communication_bits"
    assert excinfo.value.communication_bits > 64
    assert excinfo.value.usage.total_communication_bits > 64


# ---------------------------------------------------------------------- #
# Ingestion handles
# ---------------------------------------------------------------------- #


def test_ingest_builds_fresh_instance_from_chunks():
    rng = np.random.default_rng(5)
    with repro.session(model="sequential", **FAST) as sess:
        handle = sess.ingest(family="meb")
        for _ in range(4):
            handle.feed(rng.normal(size=(300, 3)))
        result = handle.finalize()
        assert sess.problem.num_constraints == 1200
    direct = solve(sess.problem, model="sequential", **FAST)
    assert result.basis_indices == direct.basis_indices


def test_ingest_extends_current_problem_warm():
    problem = _meb_instance()
    with repro.session(model="streaming", **FAST, r=2) as sess:
        first = sess.solve(problem)
        handle = sess.ingest()
        ball = first.witness
        outside = ball.center + np.array([ball.radius * 2.0, 0.0])
        handle.feed(outside)
        result = handle.finalize()
        assert sess.problem.num_constraints == problem.num_constraints + 1
    assert result.warm is not None and not result.warm.fast_path
    # warm_start reflects whether the prior run left any weight state to
    # carry (a run that terminates on its first sample leaves none).
    assert result.warm.warm_start == (first.warm.new_bases > 0)
    assert result.warm.reused_bases == first.warm.new_bases
    assert _scalar(result.value) > _scalar(first.value)  # the ball grew


def test_ingest_lp_requires_objective_and_validates_usage():
    with repro.session(model="sequential", **FAST) as sess:
        with pytest.raises(SessionError, match="family"):
            sess.ingest()  # no current problem, no family
        handle = sess.ingest(family="lp", c=np.array([1.0, 1.0]))
        with pytest.raises(SessionError, match="constraint block"):
            handle.feed()
        handle.feed(np.array([[1.0, 0.0, 5.0]]))  # (rows | rhs) form
        handle.feed((np.array([[0.0, 1.0]]), np.array([5.0])))
        problem = handle.finalize(solve=False)
        assert problem.num_constraints == 2
        with pytest.raises(SessionError, match="finalised"):
            handle.feed(np.array([[1.0, 1.0, 1.0]]))
        bad = sess.ingest(family="lp")
        bad.feed(np.array([[1.0, 0.0, 5.0]]))
        with pytest.raises(SessionError, match="objective"):
            bad.finalize(solve=False)


def test_ingest_unknown_family_fails_loudly():
    with repro.session(model="sequential", **FAST) as sess:
        handle = sess.ingest(family="nope")
        handle.feed(np.zeros((1, 2)))
        with pytest.raises(SessionError, match="unknown ingestion family"):
            handle.finalize(solve=False)


# ---------------------------------------------------------------------- #
# Batches and the registry's session introspection
# ---------------------------------------------------------------------- #


def test_session_solve_many_matches_plain_solve_many():
    problems = [random_polytope_lp(700, 2, seed=40 + i).problem for i in range(3)]
    plain = repro.solve_many(problems, model="streaming", root_seed=7, **FAST)
    with repro.session(model="streaming", **FAST) as sess:
        in_session = sess.solve_many(problems, root_seed=7)
    assert [r.basis_indices for r in plain] == [r.basis_indices for r in in_session]
    assert [_scalar(r.value) for r in plain] == [_scalar(r.value) for r in in_session]


def test_session_amortizes_process_pool_spinup():
    """A reused session beats one-shot calls on a dedicated worker pool.

    With ``reuse_pool=False`` every one-shot ``solve()`` spawns (and tears
    down) its own worker process; a session spawns once.  Worker start-up
    under ``spawn`` costs hundreds of milliseconds (a fresh interpreter plus
    imports), so even a 3-instance batch shows the gap decisively — the
    canonical k=1 vs k=16 numbers live in ``BENCH.json``
    (``run_suite.py --session-bench``).
    """
    import time

    problems = [random_polytope_lp(600, 2, seed=70 + i).problem for i in range(3)]
    transport = TransportConfig(kind="process", reuse_pool=False, max_workers=1)

    start = time.perf_counter()
    one_shot = [
        solve(p, model="streaming", r=2, transport=transport, **FAST)
        for p in problems
    ]
    one_shot_wall = time.perf_counter() - start

    start = time.perf_counter()
    with repro.session(model="streaming", r=2, transport=transport, **FAST) as sess:
        in_session = [sess.run_cold(p) for p in problems]
    session_wall = time.perf_counter() - start

    # Same work, same results ...
    assert [r.basis_indices for r in one_shot] == [
        r.basis_indices for r in in_session
    ]
    # ... but the session pays worker spin-up once instead of three times.
    assert session_wall < one_shot_wall


def test_describe_model_exposes_session_capabilities():
    for model in MODELS:
        info = repro.describe_model(model)
        assert info["session"]["warm_restart"] is True
        assert info["session"]["ingest"] is True
        assert "inprocess" in info["session"]["transports"]
    assert repro.describe_model("exact")["session"]["warm_restart"] is False


def test_session_pool_pins_one_session_per_model():
    from repro import SessionPool

    with SessionPool(r=2, **FAST) as pool:
        streaming = pool.get("streaming")
        assert pool.get("streaming") is streaming  # cached, not rebuilt
        sequential = pool.get("sequential")
        assert sequential is not streaming
        assert len(pool) == 2
        assert "streaming" in pool and "mpc" not in pool
        assert sorted(pool.keys()) == ["sequential", "streaming"]

        problem = random_polytope_lp(800, 2, seed=50).problem
        pooled = streaming.run_cold(problem)
        direct = repro.solve(problem, model="streaming", r=2, **FAST)
        assert pooled.basis_indices == direct.basis_indices

    # close() closed every pooled session and sealed the pool.
    with pytest.raises(SessionError):
        pool.get("streaming")


def test_session_pool_discard_closes_one_session():
    from repro import SessionPool

    pool = SessionPool(**FAST)
    session = pool.get("sequential")
    pool.discard("sequential")
    assert "sequential" not in pool
    with pytest.raises(SessionError):
        session.solve(random_polytope_lp(200, 2, seed=50).problem)
    # A fresh session replaces the discarded one on the next get().
    assert pool.get("sequential") is not session
    pool.close()


def test_session_pool_custom_factory():
    from repro import SessionPool

    built: list[str] = []

    def factory(key: str):
        built.append(key)
        return repro.session(model=key, **FAST)

    with SessionPool(factory=factory) as pool:
        pool.get("sequential")
        pool.get("sequential")
    assert built == ["sequential"]
