"""Fault tolerance for the fabric, the session layer, and the service.

Four pieces, spanning the stack:

* :mod:`~repro.resilience.faults` — seeded, deterministic fault injection
  (:class:`FaultPlan`) consulted by transports and topologies through the
  same contextvar pattern as budget meters and progress taps, plus the
  :class:`RecoveryNotes` scope that reports what recovery did.
* :mod:`~repro.resilience.supervisor` — the supervised
  :class:`SupervisedProcessPoolTransport`: crash detection, bounded restart
  with backoff + jitter, journal-replay state re-establishment, and graceful
  degradation to in-process execution.
* :mod:`~repro.resilience.retry` — the shared :class:`RetryPolicy`.
* :mod:`~repro.resilience.circuit` — the per-model :class:`CircuitBreaker`
  behind the service's structured 503s.

Checkpointing (:class:`CheckpointStore`) lives in :mod:`repro.core.budget`
next to its sibling contextvar concerns and is re-exported here.

See ``docs/resilience.md`` for the fault model and recovery guarantees.
"""

from ..core.budget import (
    Checkpoint,
    CheckpointStore,
    active_checkpoint,
    checkpointing,
)
from .circuit import CircuitBreaker
from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    RecoveryNotes,
    active_fault_plan,
    active_recovery_notes,
    fault_injection,
    faulted_delivery,
    recovery_scope,
)
from .retry import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "Checkpoint",
    "CheckpointStore",
    "CircuitBreaker",
    "FaultPlan",
    "FaultSpec",
    "RecoveryNotes",
    "RetryPolicy",
    "SupervisedProcessPoolTransport",
    "active_checkpoint",
    "active_fault_plan",
    "active_recovery_notes",
    "checkpointing",
    "fault_injection",
    "faulted_delivery",
    "recovery_scope",
]


def __getattr__(name: str):
    # The supervisor subclasses the fabric's ProcessPoolTransport while the
    # fabric consults this package's fault plans — importing it lazily keeps
    # the package import acyclic.
    if name == "SupervisedProcessPoolTransport":
        from .supervisor import SupervisedProcessPoolTransport

        return SupervisedProcessPoolTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
