"""Seeded, deterministic fault injection for the fabric.

A :class:`FaultPlan` is a scripted sequence of infrastructure failures —
worker crashes, dropped / delayed / corrupted messages, slow nodes — that
the transports and topologies consult at well-defined *probe points*.  Plans
travel in a :mod:`contextvars` context variable (the same pattern as
:class:`~repro.core.budget.BudgetMeter` and
:class:`~repro.core.budget.ProgressTap`), so chaos tests inject faults
without the drivers knowing, and the whole scenario is reproducible from a
seed: :meth:`FaultPlan.seeded` derives the fault script deterministically.

Probe points
------------

``"dispatch"``
    Consulted by the supervised process transport once per worker per task
    batch, *before* the batch is shipped.  A matching ``worker_crash`` spec
    SIGKILLs that worker's process, exercising the real crash-detection and
    recovery path.
``"deliver"``
    Consulted by every transport's ``deliver`` (the measured wire hop).  A
    matching ``message_drop`` / ``message_delay`` / ``payload_corruption``
    spec perturbs the delivery; the fabric's detect-and-retransmit semantics
    (see :func:`faulted_delivery`) keep the delivered payload canonical, so
    faulted solves stay bit-identical.
``"node"``
    Consulted by :meth:`repro.fabric.topology.Topology.run_all` once per
    node per round.  A matching ``slow_node`` spec stalls that node's
    dispatch by ``delay_s`` (latency, not divergence).

Because each probe point is hit in a deterministic order for a fixed solve,
the pair (solver seed, fault seed) pins the entire chaos scenario.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Iterator, Optional, Sequence

from ..core.exceptions import InvalidConfigError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "RecoveryNotes",
    "active_fault_plan",
    "active_recovery_notes",
    "fault_injection",
    "faulted_delivery",
    "recovery_scope",
]

#: kind -> probe point that enacts it.
FAULT_KINDS = {
    "worker_crash": "dispatch",
    "message_drop": "deliver",
    "message_delay": "deliver",
    "payload_corruption": "deliver",
    "slow_node": "node",
}


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        1-based occurrence of the probe point at which the fault fires
        (counted per probe point; per ``(probe, node)`` when ``node`` is
        pinned, globally per probe otherwise).
    node:
        Restrict the fault to one worker index (``"dispatch"``) or node id
        (``"node"``); ``None`` matches any.
    count:
        How many consecutive occurrences fire, starting at ``at``.
    delay_s:
        Stall duration for ``message_delay`` / ``slow_node`` (and the
        retransmission pause modelled for drops).
    """

    kind: str
    at: int = 1
    node: Optional[int] = None
    count: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidConfigError(
                f"FaultSpec.kind must be one of {sorted(FAULT_KINDS)}, "
                f"got {self.kind!r}"
            )
        if self.at < 1:
            raise InvalidConfigError(f"FaultSpec.at must be >= 1, got {self.at!r}")
        if self.count < 1:
            raise InvalidConfigError(
                f"FaultSpec.count must be >= 1, got {self.count!r}"
            )
        if self.delay_s < 0:
            raise InvalidConfigError(
                f"FaultSpec.delay_s must be >= 0, got {self.delay_s!r}"
            )

    @property
    def probe(self) -> str:
        return FAULT_KINDS[self.kind]


class FaultPlan:
    """A deterministic script of faults, consulted at probe points.

    Thread-safe: occurrence counters are guarded by a lock so concurrent
    ``solve_many`` batches can share one plan.  Every fault that actually
    fires is recorded in :attr:`fired` (``(probe, node, kind)`` triples) so
    tests can assert the scenario they scripted really happened.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *, seed: Optional[int] = None):
        self.specs = tuple(specs)
        self.seed = seed
        self.fired: list[tuple[str, Optional[int], str]] = []
        self._lock = threading.Lock()
        self._global_counts: dict[str, int] = {}
        self._node_counts: dict[tuple[str, Optional[int]], int] = {}

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        kinds: Sequence[str] = tuple(FAULT_KINDS),
        num_faults: int = 3,
        max_at: int = 8,
        max_nodes: int = 4,
        delay_s: float = 0.001,
    ) -> "FaultPlan":
        """Derive a reproducible fault script from ``seed``.

        The same seed always yields the same specs, so a failing chaos run
        is replayed exactly by re-running with its seed.
        """
        rng = Random(seed)
        specs = []
        for _ in range(num_faults):
            kind = kinds[rng.randrange(len(kinds))]
            node = rng.randrange(max_nodes) if rng.random() < 0.5 else None
            specs.append(
                FaultSpec(
                    kind=kind,
                    at=rng.randrange(1, max_at + 1),
                    node=node,
                    delay_s=delay_s if kind in ("message_delay", "slow_node") else 0.0,
                )
            )
        return cls(specs, seed=seed)

    def take(self, probe: str, node: Optional[int] = None) -> Optional[FaultSpec]:
        """Advance the probe's counters; return the spec that fires, if any.

        Specs pinned to a node are matched against the per-``(probe, node)``
        occurrence count; unpinned specs against the global per-probe count.
        The first matching spec wins and is logged in :attr:`fired`.
        """
        with self._lock:
            global_n = self._global_counts.get(probe, 0) + 1
            self._global_counts[probe] = global_n
            node_key = (probe, node)
            node_n = self._node_counts.get(node_key, 0) + 1
            self._node_counts[node_key] = node_n
            for spec in self.specs:
                if spec.probe != probe:
                    continue
                if spec.node is not None:
                    if spec.node != node:
                        continue
                    occurrence = node_n
                else:
                    occurrence = global_n
                if spec.at <= occurrence < spec.at + spec.count:
                    self.fired.append((probe, node, spec.kind))
                    return spec
        return None

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [
                {
                    "kind": s.kind,
                    "at": s.at,
                    "node": s.node,
                    "count": s.count,
                    "delay_s": s.delay_s,
                }
                for s in self.specs
            ],
            "fired": list(self.fired),
        }


_ACTIVE_FAULT_PLAN: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_fault_plan", default=None
)


def active_fault_plan() -> Optional[FaultPlan]:
    """The fault plan of the enclosing chaos scenario, if any."""
    return _ACTIVE_FAULT_PLAN.get()


@contextmanager
def fault_injection(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install a fault plan for the duration of one scenario.

    ``None`` installs nothing (the fault-free hot path stays a single
    ``None`` check per probe).  Note that context variables do not cross
    thread-pool boundaries: to reach ``solve_many(max_workers > 1)`` worker
    threads, attach the plan to the shared transport with
    ``transport.attach_fault_plan(plan)`` instead.
    """
    if plan is None:
        yield None
        return
    token = _ACTIVE_FAULT_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_FAULT_PLAN.reset(token)


def faulted_delivery(
    plan: FaultPlan, payload: Any, deliver_once: Callable[[Any], Any]
) -> Any:
    """Deliver ``payload`` through the plan's ``"deliver"`` probe.

    The fabric models a reliable link: a dropped first transmission is
    detected (missing acknowledgement) and retransmitted from the sender's
    pristine copy; a corrupted transmission is detected by checksum mismatch
    over the canonical wire bytes and likewise retransmitted.  Either way
    the *delivered* payload is canonical — latency changes, bits do not —
    which is what keeps faulted solves bit-identical to fault-free runs.
    """
    spec = plan.take("deliver")
    if spec is None:
        return deliver_once(payload)
    if spec.kind == "message_delay":
        if spec.delay_s > 0:
            time.sleep(spec.delay_s)
        return deliver_once(payload)
    if spec.kind == "message_drop":
        # First transmission lost; the sender notices the missing ack and
        # retransmits after a pause.
        if spec.delay_s > 0:
            time.sleep(spec.delay_s)
        return deliver_once(payload)
    if spec.kind == "payload_corruption":
        raw = payload.to_bytes()
        garbled = bytearray(raw)
        if garbled:
            garbled[len(garbled) // 2] ^= 0xFF
        if zlib.crc32(bytes(garbled)) == zlib.crc32(raw):  # pragma: no cover
            raise AssertionError("corruption went undetected by the checksum")
        # Mismatch detected -> the receiver discards the garbled frame and
        # the sender retransmits the pristine payload.
        return deliver_once(payload)
    return deliver_once(payload)


@dataclass
class RecoveryNotes:
    """What the resilience layer did during one solve.

    The supervised transport increments :attr:`restarts` per worker restart
    and flips :attr:`degraded` when it falls back to in-process execution;
    the session folds the notes into the result's
    :attr:`~repro.core.result.ResourceUsage.transport_retries` and metadata
    after the run.
    """

    restarts: int = 0
    degraded: bool = False
    events: list[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.events.append(message)


_ACTIVE_RECOVERY_NOTES: ContextVar[Optional[RecoveryNotes]] = ContextVar(
    "repro_recovery_notes", default=None
)


def active_recovery_notes() -> Optional[RecoveryNotes]:
    """The recovery notes of the enclosing solve, if any."""
    return _ACTIVE_RECOVERY_NOTES.get()


@contextmanager
def recovery_scope() -> Iterator[RecoveryNotes]:
    """Install a fresh :class:`RecoveryNotes` for the duration of one solve."""
    notes = RecoveryNotes()
    token = _ACTIVE_RECOVERY_NOTES.set(notes)
    try:
        yield notes
    finally:
        _ACTIVE_RECOVERY_NOTES.reset(token)
