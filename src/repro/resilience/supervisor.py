"""A supervised process-pool transport: crash detection, restart, replay.

:class:`SupervisedProcessPoolTransport` wraps the bare
:class:`~repro.fabric.transport.ProcessPoolTransport` with the fault
tolerance the service path needs:

* **Liveness**: a ``ping`` round-trip per worker (:meth:`ping`) and a
  structured :meth:`health` summary (surfaced by ``/v1/healthz``).
* **Crash detection**: pipe-level failures surface as retryable
  :class:`~repro.core.exceptions.TransportFailure` instead of hangs or raw
  ``BrokenProcessPool``-style errors.
* **Bounded restart**: a dead worker is respawned under an exponential
  backoff + jitter :class:`~repro.resilience.retry.RetryPolicy` (jitter from
  a seeded RNG, so chaos runs stay reproducible).
* **State re-establishment**: every state-changing message is journaled per
  session — shared objects (the ``SharedRef``'d problem), node init states
  (which carry each node's RNG, derived from the run's root
  ``SeedSequence`` path), and every *completed* task batch.  A respawned
  worker replays its journal, which reconstructs exactly the pre-failure
  states; re-running the in-flight batch then yields bit-identical results,
  because task functions are pure state transformers with their randomness
  inside the shipped state.  With shared memory enabled, journaled shares
  are pickled :class:`~repro.fabric.shm.ShippedObject` handles — segment
  *references* — so replay re-maps the original pages instead of holding a
  second copy of the constraint arrays.
* **Graceful degradation**: when the restart budget is exhausted the pool
  degrades to an :class:`~repro.fabric.transport.InProcessTransport` built
  by replaying *all* journals, and the solve continues in-process — still
  bit-identical.  With ``degrade=False`` the transport instead raises a
  terminal (``retryable=False``) failure, which the server treats as a
  poisoned session.

Known caveat: task batches are journaled only after the *whole* batch
succeeded.  A task-level error (user code raising inside a worker) leaves
worker-side states ahead of the journal for that batch — acceptable because
a task error aborts the solve and releases the session anyway.

The transport keeps ``name = "process"`` on purpose: pinning, driver
metadata, and the cross-transport bit-identity contract are unchanged.
"""

from __future__ import annotations

import pickle
import threading
import time
from random import Random
from typing import Any, Optional, Sequence

from ..core.exceptions import CommunicationError, TransportFailure
from ..fabric import shm, wirecodec
from ..fabric.transport import (
    InProcessTransport,
    ProcessPoolTransport,
    _worker_main,
)
from .faults import active_recovery_notes
from .retry import RetryPolicy

__all__ = ["SupervisedProcessPoolTransport"]


class _SessionJournal:
    """Everything needed to rebuild one session's worker-side state.

    ``ops`` is the ordered log of shares and node inits (order matters:
    a ``SharedRef`` is resolved against the shares installed before the
    init); ``tasks`` maps ``node_id`` to the ordered list of completed task
    triples since that node's most recent init.
    """

    __slots__ = ("ops", "tasks")

    def __init__(self) -> None:
        self.ops: list[tuple] = []  # ("share", key, bytes) | ("init", node_id, bytes)
        self.tasks: dict[int, list[tuple[int, bytes, bytes]]] = {}


class SupervisedProcessPoolTransport(ProcessPoolTransport):
    """A :class:`ProcessPoolTransport` that survives worker crashes."""

    name = "process"  # deliberately identical: same pinning, same metadata

    def __init__(
        self,
        max_workers: int = 2,
        start_method: str = "spawn",
        shared_memory: bool = True,
        *,
        restart_policy: Optional[RetryPolicy] = None,
        degrade: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(
            max_workers=max_workers,
            start_method=start_method,
            shared_memory=shared_memory,
        )
        self.restart_policy = restart_policy or RetryPolicy(
            max_attempts=3, backoff_s=0.02, backoff_factor=2.0, max_backoff_s=0.25
        )
        self.degrade_enabled = bool(degrade)
        self._rng = Random(seed)
        self._journal: dict[str, _SessionJournal] = {}
        self._journal_lock = threading.Lock()
        self.restarts_per_worker = [0] * self.max_workers
        self.total_restarts = 0
        self.degraded = False
        self._fallback: Optional[InProcessTransport] = None

    # ------------------------------------------------------------------ #
    # Liveness
    # ------------------------------------------------------------------ #

    def ping(self) -> list[bool]:
        """Round-trip probe per worker; a dead worker is healed in passing."""
        if self._fallback is not None:
            return [False] * self.max_workers
        self._ensure_started()
        alive = []
        for worker in range(self.max_workers):
            if self._fallback is not None:
                alive.append(False)
                continue
            try:
                reply = self._supervised_request(worker, ("ping",))
            except CommunicationError:
                alive.append(False)
                continue
            alive.append(reply == "pong" or (reply is None and self._fallback is None))
        return alive

    def health(self) -> dict:
        workers = []
        for index in range(self.max_workers):
            is_alive = False
            if self._started and not self.degraded and index < len(self._workers):
                is_alive = bool(self._workers[index][0].is_alive())
            workers.append(
                {"alive": is_alive, "restarts": self.restarts_per_worker[index]}
            )
        return {
            "kind": self.name,
            "supervised": True,
            "degraded": self.degraded,
            "total_restarts": self.total_restarts,
            "workers": workers,
        }

    def worker_pids(self) -> list[int]:
        """The worker process ids (chaos tests SIGKILL one externally)."""
        self._ensure_started()
        return [process.pid for process, _ in self._workers]

    def kill_worker(self, worker: int) -> None:
        """SIGKILL one worker process (deterministic fault injection)."""
        process, _ = self._workers[worker]
        process.kill()
        process.join(timeout=5)

    # ------------------------------------------------------------------ #
    # Recovery machinery (all helpers assume the worker's lock is held)
    # ------------------------------------------------------------------ #

    def _respawn_locked(self, worker: int) -> None:
        process, conn = self._workers[worker]
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if process.is_alive():
            process.terminate()
            process.join(timeout=2)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=2)
        try:
            parent_conn, child_conn = self._context.Pipe()
            replacement = self._context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            replacement.start()
            child_conn.close()
        except OSError as exc:  # pragma: no cover - resource exhaustion
            raise TransportFailure(
                f"could not respawn worker {worker}: {exc!r}",
                retryable=True,
                worker=worker,
            ) from exc
        self._workers[worker] = (replacement, parent_conn)
        self.restarts_per_worker[worker] += 1
        self.total_restarts += 1
        notes = active_recovery_notes()
        if notes is not None:
            notes.restarts += 1
            notes.note(f"worker {worker} restarted (pid {replacement.pid})")

    def _replay_locked(self, worker: int) -> None:
        """Re-establish the respawned worker's share of every session."""
        with self._journal_lock:
            snapshot = []
            for session, journal in self._journal.items():
                task_lists = [
                    list(triples)
                    for node_id, triples in journal.tasks.items()
                    if self._worker_for(node_id) == worker and triples
                ]
                snapshot.append((session, list(journal.ops), task_lists))
        for session, ops, task_lists in snapshot:
            for op in ops:
                if op[0] == "share":
                    self._send(worker, ("share", session, op[1], op[2]))
                    self._recv(worker)
                elif self._worker_for(op[1]) == worker:
                    self._send(worker, ("init", session, op[1], op[2]))
                    self._recv(worker)
            for triples in task_lists:
                # Re-run the completed tasks to advance the node state to the
                # pre-failure point; the results are discarded (they were
                # already returned to the caller before the crash).
                self._send(worker, ("run", session, triples))
                self._recv(worker)

    def _heal_locked(self, worker: int) -> bool:
        """Bounded restart + replay.  True on success, False after degrading.

        Raises a terminal :class:`TransportFailure` when the restart budget
        is exhausted and degradation is disabled.
        """
        policy = self.restart_policy
        last_exc: Optional[BaseException] = None
        for attempt in range(policy.max_attempts):
            time.sleep(policy.delay(attempt, self._rng))
            try:
                self._respawn_locked(worker)
                self._replay_locked(worker)
                return True
            except TransportFailure as exc:  # pragma: no cover - repeat crash
                last_exc = exc
                continue
        if self.degrade_enabled:
            self._degrade_locked()
            return False
        raise TransportFailure(
            f"worker {worker} is unrecoverable after {policy.max_attempts} "
            "restart attempts and degradation is disabled",
            retryable=False,
            worker=worker,
            attempts=policy.max_attempts,
        ) from last_exc

    def _degrade_locked(self) -> None:
        """Fall back to in-process execution, rebuilt from the journals."""
        fallback = InProcessTransport()
        with self._journal_lock:
            for session, journal in self._journal.items():
                for op in journal.ops:
                    if op[0] == "share":
                        # A shm-backed share is a pickled ShippedObject:
                        # loading it attaches the segment *in this process*
                        # and the fallback works over the same shared views.
                        fallback.init_shared(session, op[1], pickle.loads(op[2]))
                    else:
                        fallback.init_node(session, op[1], wirecodec.loads(op[2]))
                for node_id, triples in journal.tasks.items():
                    for _nid, fn_bytes, args_bytes in triples:
                        fallback.run_nodes(
                            session,
                            [node_id],
                            pickle.loads(fn_bytes),
                            [wirecodec.loads(args_bytes)],
                        )
            self._fallback = fallback
            self.degraded = True
        # Abandon the broken pool: tear the pipes down and terminate what is
        # still alive (joined later by close()).
        for process, conn in self._workers:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if process.is_alive():
                process.terminate()
        notes = active_recovery_notes()
        if notes is not None:
            notes.degraded = True
            notes.note("pool unrecoverable: degraded to in-process fallback")

    def _supervised_request(self, worker: int, message: tuple) -> Any:
        """One request with heal-on-failure.

        Only used for *idempotent-after-replay* messages (share / init /
        release / ping): the message is journaled before it is sent, so a
        successful heal has already re-applied it and the request does not
        need to be re-sent (``None`` is returned in that case).
        """
        with self._locks[worker]:
            try:
                self._send(worker, message)
                return self._recv(worker)
            except TransportFailure:
                self._heal_locked(worker)
                return None

    # ------------------------------------------------------------------ #
    # Transport API
    # ------------------------------------------------------------------ #

    def init_shared(self, session: str, key: str, value: Any) -> None:
        if self._fallback is not None:
            self._fallback.init_shared(session, key, value)
            return
        self._ensure_started()
        if self.shared_memory:
            # The journal then records the pickled ShippedObject — a tiny
            # segment *reference*, not an array copy — and replay after a
            # worker crash re-maps the same shared pages.
            value = shm.store().export(value, owner=session)
        value_bytes = pickle.dumps(value)
        with self._journal_lock:
            journal = self._journal.setdefault(session, _SessionJournal())
            journal.ops.append(("share", key, value_bytes))
        for worker in range(self.max_workers):
            if self._fallback is not None:
                return
            self._supervised_request(worker, ("share", session, key, value_bytes))

    def init_node(self, session: str, node_id: int, state: Any) -> None:
        if self._fallback is not None:
            self._fallback.init_node(session, node_id, state)
            return
        self._ensure_started()
        state_bytes = wirecodec.dumps(state)
        with self._journal_lock:
            journal = self._journal.setdefault(session, _SessionJournal())
            journal.ops.append(("init", node_id, state_bytes))
            journal.tasks[node_id] = []  # a re-init resets the task log
        self._supervised_request(
            self._worker_for(node_id), ("init", session, node_id, state_bytes)
        )

    def run_nodes(self, session, node_ids, fn, args_list):
        if self._fallback is not None:
            return self._fallback.run_nodes(session, node_ids, fn, args_list)
        self._ensure_started()
        plan = self._active_plan()
        fn_bytes = self._fn_bytes(session, fn)
        per_worker: dict[int, list[tuple[int, bytes, bytes]]] = {}
        order: list[tuple[int, int]] = []
        for node_id, args in zip(node_ids, args_list):
            worker = self._worker_for(node_id)
            batch = per_worker.setdefault(worker, [])
            order.append((worker, len(batch)))
            batch.append((node_id, fn_bytes, wirecodec.dumps(tuple(args))))
        workers = sorted(per_worker)
        for worker in workers:
            self._locks[worker].acquire()
        try:
            if plan is not None:
                for worker in workers:
                    spec = plan.take("dispatch", node=worker)
                    if spec is not None and spec.kind == "worker_crash":
                        self.kill_worker(worker)
            raw: dict[int, list[bytes]] = {}
            infra_failed: list[int] = []
            task_errors: list[CommunicationError] = []
            sent: list[int] = []
            for worker in workers:
                try:
                    self._send(worker, ("run", session, per_worker[worker]))
                    sent.append(worker)
                except TransportFailure:
                    infra_failed.append(worker)
            for worker in sent:
                try:
                    raw[worker] = self._recv(worker)
                except TransportFailure:
                    infra_failed.append(worker)
                except CommunicationError as exc:
                    task_errors.append(exc)
            for worker in infra_failed:
                if self._fallback is not None:
                    break
                self._rerun_failed_locked(worker, session, per_worker[worker], raw)
            if task_errors:
                # User code raised inside a live worker: surface it exactly
                # like the unsupervised pool would.
                raise task_errors[0]
            if self._fallback is not None:
                # Unrecoverable mid-batch: the fallback was rebuilt from the
                # journal, which excludes this batch, so its states are the
                # pre-batch states — re-running the whole batch there yields
                # the same results the healthy pool would have produced.
                return self._fallback.run_nodes(session, node_ids, fn, args_list)
            self._commit_batch_locked(session, per_worker)
            return [wirecodec.loads(raw[worker][position]) for worker, position in order]
        finally:
            for worker in workers:
                self._locks[worker].release()

    def _rerun_failed_locked(
        self,
        worker: int,
        session: str,
        batch: Sequence[tuple],
        raw: dict,
    ) -> None:
        """Heal a crashed worker, then re-run its (unjournaled) batch."""
        rerun_attempts = 0
        while self._fallback is None:
            if not self._heal_locked(worker):
                return  # degraded; caller re-runs the whole batch in-process
            try:
                self._send(worker, ("run", session, list(batch)))
                raw[worker] = self._recv(worker)
                return
            except TransportFailure as exc:
                rerun_attempts += 1
                if rerun_attempts >= max(1, self.restart_policy.max_attempts):
                    if self.degrade_enabled:
                        self._degrade_locked()
                        return
                    raise TransportFailure(
                        f"worker {worker} kept crashing across "
                        f"{rerun_attempts} recovered re-runs",
                        retryable=False,
                        worker=worker,
                        attempts=rerun_attempts,
                    ) from exc

    def _commit_batch_locked(self, session: str, per_worker: dict) -> None:
        """Journal a fully-successful batch (the recovery baseline)."""
        with self._journal_lock:
            if self._fallback is not None:
                # A concurrent thread degraded the pool after this batch
                # completed on it: advance the fallback's states with the
                # same pure tasks so it stays consistent with the results
                # this thread already collected.
                for batch in per_worker.values():
                    for node_id, fn_bytes, args_bytes in batch:
                        self._fallback.run_nodes(
                            session,
                            [node_id],
                            pickle.loads(fn_bytes),
                            [wirecodec.loads(args_bytes)],
                        )
                return
            journal = self._journal.setdefault(session, _SessionJournal())
            for batch in per_worker.values():
                for triple in batch:
                    journal.tasks.setdefault(triple[0], []).append(triple)

    def release(self, session: str) -> None:
        with self._journal_lock:
            self._journal.pop(session, None)
        try:
            if self._fallback is not None:
                self._fallback.release(session)
                return
            if not self._started:
                return
            for worker in range(self.max_workers):
                if self._fallback is not None:
                    self._fallback.release(session)
                    return
                self._supervised_request(worker, ("release", session))
        finally:
            self._release_caches(session)

    def close(self) -> None:
        self._fallback = None
        with self._journal_lock:
            self._journal.clear()
        super().close()
