"""A per-model circuit breaker for the service front end.

Classic three-state breaker: ``closed`` admits everything; repeated
*infrastructure* failures (transport/communication errors — user errors
like infeasibility never count) within a sliding window trip it ``open``,
after which submissions are rejected immediately with a
:class:`~repro.core.exceptions.CircuitOpenError` carrying ``retry_after_s``
(the server maps this to a structured 503 + ``Retry-After``).  After the
cooldown the breaker goes ``half_open`` and admits exactly one probe
request: success closes it, failure re-opens it for another cooldown.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque

from ..core.exceptions import CircuitOpenError, InvalidConfigError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Sheds load after repeated infrastructure failures.

    Thread-safe; one breaker per (service, model).  ``clock`` is injectable
    for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        window_s: float = 60.0,
        cooldown_s: float = 5.0,
        *,
        model: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise InvalidConfigError(
                f"CircuitBreaker.failure_threshold must be >= 1, "
                f"got {failure_threshold!r}"
            )
        if window_s <= 0 or cooldown_s <= 0:
            raise InvalidConfigError(
                "CircuitBreaker.window_s and cooldown_s must be > 0"
            )
        self.failure_threshold = int(failure_threshold)
        self.window_s = float(window_s)
        self.cooldown_s = float(cooldown_s)
        self.model = str(model)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures: Deque[float] = deque()
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False
        self.rejected = 0

    def state(self) -> str:
        """Current state, advancing ``open`` -> ``half_open`` on cooldown."""
        with self._lock:
            self._advance(self._clock())
            return self._state

    def _advance(self, now: float) -> None:
        if self._state == "open" and now - self._opened_at >= self.cooldown_s:
            self._state = "half_open"
            self._probing = False

    def allow(self) -> None:
        """Admit one request or raise :class:`CircuitOpenError`."""
        with self._lock:
            now = self._clock()
            self._advance(now)
            if self._state == "open":
                self.rejected += 1
                remaining = max(0.0, self.cooldown_s - (now - self._opened_at))
                raise CircuitOpenError(
                    f"circuit breaker is open for model {self.model or '?'}: "
                    f"{self.failure_threshold} infrastructure failures within "
                    f"{self.window_s:g}s; retry in {remaining:.2f}s",
                    retry_after_s=max(remaining, 0.05),
                    model=self.model,
                )
            if self._state == "half_open":
                if self._probing:
                    self.rejected += 1
                    raise CircuitOpenError(
                        f"circuit breaker for model {self.model or '?'} is "
                        "half-open with a probe in flight",
                        retry_after_s=self.cooldown_s,
                        model=self.model,
                    )
                self._probing = True

    def record_success(self) -> None:
        """A solve completed: close the breaker and forget old failures."""
        with self._lock:
            self._state = "closed"
            self._probing = False
            self._failures.clear()

    def record_failure(self) -> None:
        """An infrastructure failure: count it; trip when the window fills."""
        with self._lock:
            now = self._clock()
            self._advance(now)
            if self._state == "half_open":
                # The probe failed: straight back to open.
                self._state = "open"
                self._opened_at = now
                self._probing = False
                self._failures.clear()
                return
            self._failures.append(now)
            while self._failures and now - self._failures[0] > self.window_s:
                self._failures.popleft()
            if len(self._failures) >= self.failure_threshold:
                self._state = "open"
                self._opened_at = now
                self._failures.clear()

    def describe(self) -> dict:
        with self._lock:
            self._advance(self._clock())
            return {
                "state": self._state,
                "recent_failures": len(self._failures),
                "failure_threshold": self.failure_threshold,
                "window_s": self.window_s,
                "cooldown_s": self.cooldown_s,
                "rejected": self.rejected,
            }
