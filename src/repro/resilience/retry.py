"""Bounded retry with exponential backoff and jitter.

One small policy object shared by every retry site in the resilience layer:
the supervised transport's worker-restart loop, the service's per-ticket
retry of retryable :class:`~repro.core.exceptions.TransportFailure`, and the
HTTP client's idempotent-GET retry.  Jitter is drawn from a caller-supplied
``random.Random`` so chaos tests stay deterministic from a seed.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from ..core.exceptions import InvalidConfigError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient failure.

    Attributes
    ----------
    max_attempts:
        Total attempts (``1`` = no retry; ``0`` = give up without trying,
        used to disable worker restarts entirely).
    backoff_s:
        Delay before the first retry.
    backoff_factor:
        Multiplier applied per subsequent retry (exponential backoff).
    max_backoff_s:
        Upper bound on any single delay.
    jitter:
        Fraction of the computed delay added as uniform random jitter
        (``0.25`` adds up to +25%), de-synchronising retry storms.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise InvalidConfigError(
                f"RetryPolicy.max_attempts must be >= 0, got {self.max_attempts!r}"
            )
        if self.backoff_s < 0:
            raise InvalidConfigError(
                f"RetryPolicy.backoff_s must be >= 0, got {self.backoff_s!r}"
            )
        if self.backoff_factor < 1:
            raise InvalidConfigError(
                f"RetryPolicy.backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.max_backoff_s < 0:
            raise InvalidConfigError(
                f"RetryPolicy.max_backoff_s must be >= 0, got {self.max_backoff_s!r}"
            )
        if self.jitter < 0:
            raise InvalidConfigError(
                f"RetryPolicy.jitter must be >= 0, got {self.jitter!r}"
            )

    def delay(self, attempt: int, rng: Optional[_random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based), with jitter.

        Passing a seeded ``rng`` makes the jitter deterministic; ``None``
        draws from the module-level generator.
        """
        base = min(
            self.max_backoff_s,
            self.backoff_s * self.backoff_factor ** max(0, int(attempt)),
        )
        if self.jitter > 0:
            draw = rng.random() if rng is not None else _random.random()
            base += base * self.jitter * draw
        return base
