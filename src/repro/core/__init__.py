"""Core machinery: LP-type problems, eps-nets, weights, and the meta-algorithm."""

from .accounting import BitCostModel, CostMeter, RoundLedger
from .clarkson import (
    ClarksonParameters,
    clarkson_solve,
    practical_parameters,
    resolve_sampling,
    solve_small_problem,
)
from .engine import (
    ClarksonEngine,
    EngineConfig,
    EngineOutcome,
    ExplicitWeightSubstrate,
    InMemorySampling,
    SamplingStrategy,
    ViolationOracle,
    ViolationStats,
    WeightSubstrate,
    iteration_budget,
)
from .epsnet import EpsNetSpec, algorithm_epsilon, epsnet_sample_size, is_eps_net
from .exceptions import (
    CommunicationError,
    InfeasibleProblemError,
    InvalidInstanceError,
    IterationLimitError,
    ProtocolError,
    ReproError,
    SolverError,
    UnboundedProblemError,
)
from .lptype import BasisResult, LPTypeProblem, check_locality, check_monotonicity
from .result import IterationRecord, ResourceUsage, SolveResult
from .rng import as_generator, derive_seed, spawn
from .sampling import (
    ExponentialKeyReservoir,
    WeightedReservoirSampler,
    multinomial_split,
    normalise_weights,
    stream_weighted_sample,
    weighted_sample_with_replacement,
    weighted_sample_without_replacement,
)
from .weights import ExplicitWeights, ImplicitWeights, boost_factor

__all__ = [
    "BitCostModel",
    "CostMeter",
    "RoundLedger",
    "ClarksonParameters",
    "clarkson_solve",
    "practical_parameters",
    "resolve_sampling",
    "solve_small_problem",
    "ClarksonEngine",
    "EngineConfig",
    "EngineOutcome",
    "ExplicitWeightSubstrate",
    "InMemorySampling",
    "SamplingStrategy",
    "ViolationOracle",
    "ViolationStats",
    "WeightSubstrate",
    "iteration_budget",
    "EpsNetSpec",
    "algorithm_epsilon",
    "epsnet_sample_size",
    "is_eps_net",
    "CommunicationError",
    "InfeasibleProblemError",
    "InvalidInstanceError",
    "IterationLimitError",
    "ProtocolError",
    "ReproError",
    "SolverError",
    "UnboundedProblemError",
    "BasisResult",
    "LPTypeProblem",
    "check_locality",
    "check_monotonicity",
    "IterationRecord",
    "ResourceUsage",
    "SolveResult",
    "as_generator",
    "derive_seed",
    "spawn",
    "ExponentialKeyReservoir",
    "WeightedReservoirSampler",
    "multinomial_split",
    "normalise_weights",
    "stream_weighted_sample",
    "weighted_sample_with_replacement",
    "weighted_sample_without_replacement",
    "ExplicitWeights",
    "ImplicitWeights",
    "boost_factor",
]
