"""Weighted sampling primitives.

Algorithm 1 samples constraints with probability proportional to their
weights.  Each computation model needs a slightly different realisation of
the same primitive:

* in memory (the sequential reference implementation) we can simply draw from
  the normalised weight vector;
* in the streaming model the weights are only known *on the fly*, so we use
  weighted reservoir sampling (Chao's procedure for a single slot and the
  Efraimidis-Spirakis exponential-key scheme for ``m`` slots in one pass);
* in the coordinator model the coordinator splits the ``m`` draws across the
  sites with a multinomial on the per-site total weights (Lemma 3.7) and each
  site then samples locally.

All of those are implemented here so that the model-specific drivers stay
thin and the statistical behaviour can be unit-tested in one place.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .. import kernels
from .rng import SeedLike, as_generator

__all__ = [
    "normalise_weights",
    "exponential_keys",
    "gumbel_keys",
    "gumbel_top_k",
    "weighted_sample_with_replacement",
    "weighted_sample_without_replacement",
    "multinomial_split",
    "WeightedReservoirSampler",
    "ExponentialKeyReservoir",
    "stream_weighted_sample",
    "iter_chunks",
]

#: Smallest positive double: ``Generator.random`` draws from ``[0, 1)`` and
#: can return exactly 0.0, whose logarithm would produce a degenerate
#: ``-inf`` exponential key.  Uniform draws are clamped to this value, which
#: changes no probability by more than 2^-53.
_TINY_UNIFORM = float(np.nextafter(0.0, 1.0))


def normalise_weights(weights: Sequence[float] | np.ndarray) -> np.ndarray:
    """Return ``weights`` normalised to sum to one.

    Raises
    ------
    ValueError
        If any weight is negative or all weights are zero.
    """
    arr = np.asarray(weights, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"weights must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("weights must be non-empty")
    if np.any(arr < 0):
        raise ValueError("weights must be non-negative")
    total = float(arr.sum())
    if total <= 0:
        raise ValueError("total weight must be positive")
    return arr / total


def weighted_sample_with_replacement(
    weights: Sequence[float] | np.ndarray,
    size: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Draw ``size`` i.i.d. indices with probability proportional to weights."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    gen = as_generator(rng)
    probs = normalise_weights(weights)
    return gen.choice(len(probs), size=size, replace=True, p=probs)


def exponential_keys(
    weights: Sequence[float] | np.ndarray,
    rng: SeedLike = None,
) -> np.ndarray:
    """Batch Efraimidis-Spirakis keys ``log(u_i) / w_i`` for positive weights.

    Consumes exactly one uniform per weight, in order, so a stream processed
    in chunks draws the same keys as a single batch evaluation (and as the
    one-at-a-time :class:`ExponentialKeyReservoir`).  The ``size`` largest
    keys form a weighted sample without replacement.
    """
    gen = as_generator(rng)
    arr = np.asarray(weights, dtype=float)
    log_u = np.log(np.maximum(gen.random(arr.size), _TINY_UNIFORM))
    return log_u / arr


def gumbel_keys(
    log_weights: Sequence[float] | np.ndarray,
    rng: SeedLike = None,
) -> np.ndarray:
    """Batch Gumbel keys ``log w_i + G_i`` for log-space weights.

    ``G_i = -log(-log u_i)`` are i.i.d. standard Gumbel perturbations; by the
    Gumbel-max trick the ``k`` largest keys form a weighted sample without
    replacement — the log-space twin of :func:`exponential_keys`, consuming
    one uniform per weight.  Operates directly on ``log w`` so callers never
    materialise an exponentiated weight vector (keys are shift-invariant, so
    un-normalised log weights are fine).
    """
    gen = as_generator(rng)
    arr = np.asarray(log_weights, dtype=float)
    u = np.maximum(gen.random(arr.size), _TINY_UNIFORM)
    return arr - np.log(-np.log(u))


def gumbel_top_k(
    log_weights: Sequence[float] | np.ndarray,
    size: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Draw ``min(size, n)`` distinct indices by Gumbel top-k on log weights.

    Equivalent in distribution to :func:`weighted_sample_without_replacement`
    on ``exp(log_weights)`` but without the ``O(n)`` exponentiation and with
    an ``O(n)`` ``argpartition`` selection instead of a full sort.  Entries of
    ``-inf`` encode zero weight and are never selected.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    gen = as_generator(rng)
    arr = np.asarray(log_weights, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"log_weights must be one-dimensional, got shape {arr.shape}")
    # The selection itself is a kernel-layer primitive: every backend draws
    # the same uniform stream and returns bit-identical indices; the fused
    # backend skips the positive-index gather when no zero weights exist and
    # builds the keys in place.
    return kernels.active_backend().gumbel_top_k(arr, int(size), gen)


def weighted_sample_without_replacement(
    weights: Sequence[float] | np.ndarray,
    size: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Draw ``min(size, n)`` distinct indices, each inclusion proportional to weight.

    Uses the Efraimidis-Spirakis exponential-key construction: index ``i``
    receives key ``u_i^{1/w_i}`` for ``u_i ~ U(0,1)`` and the ``size`` largest
    keys are kept.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    gen = as_generator(rng)
    arr = np.asarray(weights, dtype=float)
    if np.any(arr < 0):
        raise ValueError("weights must be non-negative")
    positive = np.flatnonzero(arr > 0)
    if positive.size == 0:
        raise ValueError("total weight must be positive")
    size = min(size, positive.size)
    if size == 0:
        return np.empty(0, dtype=int)
    # Keys in log-space for numerical stability: log(u) / w.
    keys = exponential_keys(arr[positive], rng=gen)
    chosen = positive[np.argsort(keys)[::-1][:size]]
    return np.sort(chosen)


def multinomial_split(
    site_weights: Sequence[float] | np.ndarray,
    size: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Split ``size`` draws across sites proportionally to their total weights.

    This is the first round of the Lemma 3.7 two-round sampling procedure in
    the coordinator model: the coordinator draws the per-site sample counts
    ``y_i`` from a multinomial over the per-site weight totals.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    gen = as_generator(rng)
    probs = normalise_weights(site_weights)
    return gen.multinomial(size, probs)


@dataclass
class WeightedReservoirSampler:
    """Chao's weighted reservoir sampler for a single reservoir slot.

    Feeding items one at a time (with their weights), the retained item is
    distributed proportionally to the weights of everything seen so far.  The
    streaming driver runs ``m`` independent copies of this sampler to draw an
    i.i.d. (with replacement) weighted sample of size ``m`` in a single pass,
    exactly matching the in-memory sampler used by Algorithm 1.
    """

    rng: np.random.Generator
    total_weight: float = 0.0
    item: object = None
    items_seen: int = 0

    @classmethod
    def create(cls, rng: SeedLike = None) -> "WeightedReservoirSampler":
        return cls(rng=as_generator(rng))

    def offer(self, item: object, weight: float) -> None:
        """Offer ``item`` with ``weight``; it replaces the held item w.p. w/W."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.items_seen += 1
        if weight == 0:
            return
        self.total_weight += weight
        if self.rng.random() < weight / self.total_weight:
            self.item = item

    @property
    def is_empty(self) -> bool:
        return self.total_weight == 0.0


@dataclass
class ExponentialKeyReservoir:
    """Efraimidis-Spirakis reservoir holding the top-``capacity`` keyed items.

    Produces a weighted sample *without* replacement in a single pass.  Used
    by the streaming driver when distinct samples are preferred (the eps-net
    guarantee only improves when duplicates are removed).

    The reservoir is a min-heap on the exponential keys, so each offer costs
    ``O(log capacity)`` (an offer that does not beat the current minimum is
    ``O(1)``) instead of the ``O(capacity)`` of a linear minimum scan.
    """

    capacity: int
    rng: np.random.Generator
    # Heap of (key, tiebreak, item); the root is the smallest (worst) key.
    _heap: list[tuple[float, int, object]] = field(default_factory=list)
    items_seen: int = 0

    @classmethod
    def create(cls, capacity: int, rng: SeedLike = None) -> "ExponentialKeyReservoir":
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        return cls(capacity=capacity, rng=as_generator(rng))

    def offer(self, item: object, weight: float) -> None:
        """Offer ``item`` with ``weight`` to the reservoir."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.items_seen += 1
        if weight == 0:
            return
        u = max(self.rng.random(), _TINY_UNIFORM)
        key = np.log(u) / weight
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (key, self.items_seen, item))
            return
        if key > self._heap[0][0]:
            heapq.heapreplace(self._heap, (key, self.items_seen, item))

    def sample(self) -> list[object]:
        """Return the current sample (up to ``capacity`` items)."""
        return [item for _, _, item in self._heap]

    def __len__(self) -> int:
        return len(self._heap)


def stream_weighted_sample(
    stream: Iterable[tuple[object, float]],
    size: int,
    rng: SeedLike = None,
    with_replacement: bool = True,
) -> list[object]:
    """Draw a weighted sample of ``size`` items from a one-shot stream.

    Convenience wrapper used by tests and by the streaming driver: consumes
    ``stream`` (an iterable of ``(item, weight)`` pairs) exactly once.
    """
    gen = as_generator(rng)
    if with_replacement:
        samplers = [WeightedReservoirSampler.create(gen) for _ in range(size)]
        for item, weight in stream:
            for sampler in samplers:
                sampler.offer(item, weight)
        return [s.item for s in samplers if not s.is_empty]
    reservoir = ExponentialKeyReservoir.create(size, gen)
    for item, weight in stream:
        reservoir.offer(item, weight)
    return reservoir.sample()


def iter_chunks(sequence: Sequence, chunk_size: int) -> Iterator[Sequence]:
    """Yield consecutive chunks of ``sequence`` of length ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, len(sequence), chunk_size):
        yield sequence[start : start + chunk_size]
