"""Random-number helpers shared across the library.

All randomised components of the library accept either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralises the conversion so that every module spells it the same way
and experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so that state is shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by the distributed substrates to give every site / machine its own
    private randomness while keeping the whole experiment reproducible from a
    single seed.  Children are derived through ``SeedSequence.spawn`` (the
    same mechanism the batch layer and the process-pool transport use), so a
    child's stream is a well-separated function of the root entropy rather
    than of a raw integer draw; generators without an attached seed sequence
    fall back to integer-seeded children.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return []
    try:
        # AttributeError: numpy < 1.25 has no Generator.spawn; TypeError:
        # the generator was built without an attached SeedSequence.
        return list(rng.spawn(count))
    except (AttributeError, TypeError):
        seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
        return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng_or_seed: SeedLike, salt: int = 0) -> int:
    """Derive a deterministic integer seed from ``rng_or_seed`` and ``salt``."""
    rng = as_generator(rng_or_seed)
    base = int(rng.integers(0, 2**62 - 1))
    return (base + 0x9E3779B97F4A7C15 * (salt + 1)) % (2**63 - 1)
