"""Cost accounting primitives shared by all computation-model substrates.

The paper measures three families of resources:

* **streaming**: number of passes over the input and the peak number of bits
  kept in memory,
* **coordinator**: number of rounds and the total number of bits exchanged
  between the sites and the coordinator,
* **MPC**: number of rounds and the *load*, i.e. the maximum number of bits
  sent or received by any machine in any round.

This module provides the small value objects the substrates use to count
those resources exactly.  Everything is counted in bits with a configurable
``bits_per_coefficient`` (the paper assumes ``bit(S) = O(log n)`` bits per
number; we default to 64-bit words and record the convention in the results).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional

import numpy as np

from .budget import active_tap

#: Default number of bits charged for one numeric coefficient in a message.
DEFAULT_BITS_PER_COEFFICIENT = 64

#: Default number of bits charged for one integer counter (index, count, ...).
DEFAULT_BITS_PER_COUNTER = 32


@dataclass(frozen=True)
class BitCostModel:
    """Defines how logical payloads are converted to bit counts.

    Parameters
    ----------
    bits_per_coefficient:
        Bits charged for every real coefficient of a constraint or point.
    bits_per_counter:
        Bits charged for small integers (sample counts, indices, flags).
    """

    bits_per_coefficient: int = DEFAULT_BITS_PER_COEFFICIENT
    bits_per_counter: int = DEFAULT_BITS_PER_COUNTER

    def coefficients(self, count: int) -> int:
        """Bits for ``count`` real coefficients."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return count * self.bits_per_coefficient

    def counters(self, count: int) -> int:
        """Bits for ``count`` small integers."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return count * self.bits_per_counter

    def array(self, values: np.ndarray | Iterable[float]) -> int:
        """Bits for an array of real values."""
        arr = np.asarray(values)
        return self.coefficients(int(arr.size))


@dataclass
class CostMeter:
    """A simple accumulating meter for one resource (bits, items, ...)."""

    name: str
    total: int = 0
    peak: int = 0
    _current: int = 0

    def add(self, amount: int) -> None:
        """Add ``amount`` to the running total (and current level)."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self.total += amount
        self._current += amount
        self.peak = max(self.peak, self._current)

    def release(self, amount: int) -> None:
        """Lower the *current* level by ``amount`` (total is unchanged).

        Used for space accounting: memory that is freed lowers the current
        footprint but the peak remains.
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self._current = max(0, self._current - amount)

    def set_level(self, level: int) -> None:
        """Set the current level directly, updating the peak."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        self._current = level
        self.peak = max(self.peak, level)

    @property
    def current(self) -> int:
        return self._current

    def snapshot(self) -> dict:
        return {"name": self.name, "total": self.total, "peak": self.peak}


@dataclass
class RoundLedger:
    """Tracks per-round costs (used by the coordinator and MPC substrates)."""

    rounds: list[dict] = field(default_factory=list)

    def record(self, **costs: int) -> None:
        """Append a round with the given named costs.

        If a :class:`~repro.core.budget.ProgressTap` is installed for the
        enclosing solve, the round is also emitted as a progress event —
        this single hook covers every topology (coordinator rounds, MPC
        rounds, and stream passes all record through one ledger).
        """
        self.rounds.append(dict(costs))
        tap = active_tap()
        if tap is not None:
            tap.emit(
                "round",
                round=len(self.rounds),
                **{key: int(value) for key, value in costs.items()},
            )

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def total(self, key: str) -> int:
        """Sum of ``key`` across rounds (missing keys count as 0)."""
        return sum(int(r.get(key, 0)) for r in self.rounds)

    def maximum(self, key: str) -> int:
        """Maximum of ``key`` across rounds (0 if no rounds recorded)."""
        if not self.rounds:
            return 0
        return max(int(r.get(key, 0)) for r in self.rounds)

    def as_table(self) -> list[Mapping[str, int]]:
        """Rounds as an immutable-ish list of dicts (for reports)."""
        return [dict(r) for r in self.rounds]


# ---------------------------------------------------------------------- #
# Tenant attribution: the usage ledger of the service front end.
# ---------------------------------------------------------------------- #


@dataclass
class TenantUsage:
    """Cumulative resource totals attributed to one tenant.

    The currencies mirror :class:`~repro.core.budget.ResourceBudget`: wall
    seconds, meta-algorithm iterations, and measured communication bits —
    plus ticket outcome counts so quota decisions and billing views need no
    second bookkeeping pass.
    """

    tickets: int = 0
    done: int = 0
    failed: int = 0
    wall_s: float = 0.0
    iterations: int = 0
    communication_bits: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class UsageLedger:
    """Thread-safe per-tenant usage totals with an optional JSONL log.

    Every finished ticket is recorded once — successes from the final
    :class:`~repro.core.result.ResourceUsage`, budget aborts from the
    partial usage carried by the
    :class:`~repro.core.exceptions.BudgetExceededError` — so truncated
    requests are billed for what they actually consumed.  With ``path``
    set, each record is appended as one JSON line (flushed per record: the
    ledger survives a crashed server).
    """

    def __init__(self, path: Optional[str | Path] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._totals: dict[str, TenantUsage] = {}
        self._lock = threading.Lock()

    def record(
        self,
        tenant: str,
        *,
        outcome: str,
        wall_s: float = 0.0,
        iterations: int = 0,
        communication_bits: int = 0,
        **extra: Any,
    ) -> TenantUsage:
        """Attribute one finished ticket to ``tenant``; returns new totals."""
        with self._lock:
            usage = self._totals.setdefault(tenant, TenantUsage())
            usage.tickets += 1
            if outcome == "done":
                usage.done += 1
            elif outcome == "failed":
                usage.failed += 1
            usage.wall_s += float(wall_s)
            usage.iterations += int(iterations)
            usage.communication_bits += int(communication_bits)
            snapshot = TenantUsage(**asdict(usage))
        if self.path is not None:
            line = json.dumps(
                {
                    "ts": time.time(),
                    "tenant": tenant,
                    "outcome": outcome,
                    "wall_s": float(wall_s),
                    "iterations": int(iterations),
                    "communication_bits": int(communication_bits),
                    **extra,
                }
            )
            with self._lock:
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
        return snapshot

    def totals(self, tenant: str) -> TenantUsage:
        """A copy of ``tenant``'s totals (all-zero if never recorded)."""
        with self._lock:
            usage = self._totals.get(tenant)
            return TenantUsage(**asdict(usage)) if usage else TenantUsage()

    def tenants(self) -> dict[str, TenantUsage]:
        """Snapshot of every tenant's totals."""
        with self._lock:
            return {
                name: TenantUsage(**asdict(usage))
                for name, usage in self._totals.items()
            }

    def as_dict(self) -> dict:
        """JSON-ready map of tenant name to totals."""
        return {name: usage.as_dict() for name, usage in self.tenants().items()}
