"""Cost accounting primitives shared by all computation-model substrates.

The paper measures three families of resources:

* **streaming**: number of passes over the input and the peak number of bits
  kept in memory,
* **coordinator**: number of rounds and the total number of bits exchanged
  between the sites and the coordinator,
* **MPC**: number of rounds and the *load*, i.e. the maximum number of bits
  sent or received by any machine in any round.

This module provides the small value objects the substrates use to count
those resources exactly.  Everything is counted in bits with a configurable
``bits_per_coefficient`` (the paper assumes ``bit(S) = O(log n)`` bits per
number; we default to 64-bit words and record the convention in the results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

#: Default number of bits charged for one numeric coefficient in a message.
DEFAULT_BITS_PER_COEFFICIENT = 64

#: Default number of bits charged for one integer counter (index, count, ...).
DEFAULT_BITS_PER_COUNTER = 32


@dataclass(frozen=True)
class BitCostModel:
    """Defines how logical payloads are converted to bit counts.

    Parameters
    ----------
    bits_per_coefficient:
        Bits charged for every real coefficient of a constraint or point.
    bits_per_counter:
        Bits charged for small integers (sample counts, indices, flags).
    """

    bits_per_coefficient: int = DEFAULT_BITS_PER_COEFFICIENT
    bits_per_counter: int = DEFAULT_BITS_PER_COUNTER

    def coefficients(self, count: int) -> int:
        """Bits for ``count`` real coefficients."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return count * self.bits_per_coefficient

    def counters(self, count: int) -> int:
        """Bits for ``count`` small integers."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return count * self.bits_per_counter

    def array(self, values: np.ndarray | Iterable[float]) -> int:
        """Bits for an array of real values."""
        arr = np.asarray(values)
        return self.coefficients(int(arr.size))


@dataclass
class CostMeter:
    """A simple accumulating meter for one resource (bits, items, ...)."""

    name: str
    total: int = 0
    peak: int = 0
    _current: int = 0

    def add(self, amount: int) -> None:
        """Add ``amount`` to the running total (and current level)."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self.total += amount
        self._current += amount
        self.peak = max(self.peak, self._current)

    def release(self, amount: int) -> None:
        """Lower the *current* level by ``amount`` (total is unchanged).

        Used for space accounting: memory that is freed lowers the current
        footprint but the peak remains.
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self._current = max(0, self._current - amount)

    def set_level(self, level: int) -> None:
        """Set the current level directly, updating the peak."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        self._current = level
        self.peak = max(self.peak, level)

    @property
    def current(self) -> int:
        return self._current

    def snapshot(self) -> dict:
        return {"name": self.name, "total": self.total, "peak": self.peak}


@dataclass
class RoundLedger:
    """Tracks per-round costs (used by the coordinator and MPC substrates)."""

    rounds: list[dict] = field(default_factory=list)

    def record(self, **costs: int) -> None:
        """Append a round with the given named costs."""
        self.rounds.append(dict(costs))

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def total(self, key: str) -> int:
        """Sum of ``key`` across rounds (missing keys count as 0)."""
        return sum(int(r.get(key, 0)) for r in self.rounds)

    def maximum(self, key: str) -> int:
        """Maximum of ``key`` across rounds (0 if no rounds recorded)."""
        if not self.rounds:
            return 0
        return max(int(r.get(key, 0)) for r in self.rounds)

    def as_table(self) -> list[Mapping[str, int]]:
        """Rounds as an immutable-ish list of dicts (for reports)."""
        return [dict(r) for r in self.rounds]
