"""Sequential reference implementation of the meta-algorithm (Algorithm 1).

This is the in-memory binding of the shared :class:`~repro.core.engine.ClarksonEngine`:
Clarkson's iterative reweighting scheme driven by eps-net sampling with
weight boost ``n^{1/r}``, with the weights held as an explicit vector and the
sample drawn directly from it.  The streaming, coordinator and MPC drivers in
``repro.algorithms`` bind the *same* engine onto their model substrates; this
module is the ground truth the others are tested against and is also the
natural entry point for users who just want to solve an LP-type problem on
one machine with sub-linear working memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import kernels
from .engine import (
    ClarksonEngine,
    EngineConfig,
    ExplicitWeightSubstrate,
    InMemorySampling,
    ViolationOracle,
    iteration_budget,
)
from .epsnet import EpsNetSpec
from .lptype import LPTypeProblem
from .result import ResourceUsage, SolveResult, WarmStats
from .rng import SeedLike, as_generator
from .weights import ExplicitWeights, boost_factor

__all__ = [
    "ClarksonParameters",
    "clarkson_solve",
    "solve_small_problem",
    "practical_parameters",
    "resolve_sampling",
]


@dataclass(frozen=True)
class ClarksonParameters:
    """Tunable parameters of Algorithm 1.

    Attributes
    ----------
    r:
        The pass/round trade-off parameter.  Larger ``r`` means smaller
        samples (``~ n^{1/r}``) but more iterations (``O(nu * r)``).
    sample_scale:
        Multiplier on the Lemma 2.2 sample size; ``1.0`` is the paper's
        bound, smaller values explore the practical trade-off (used by the
        ablation benchmark A1/A2).
    failure_probability:
        Per-iteration eps-net failure probability (``1/3`` for the Las-Vegas
        variant of the paper).
    boost:
        Weight multiplier applied to violators after a successful iteration.
        ``None`` (default) uses the paper's ``n^{1/r}``; the ablation
        benchmark passes ``2.0`` to recover Clarkson's classical reweighting.
    max_iterations:
        Hard iteration budget.  ``None`` derives ``40 * nu * r + 40`` from
        the Lemma 3.3 bound (with a generous constant).
    keep_trace:
        Whether to record an :class:`IterationRecord` per iteration.
    basis_cache:
        Whether the engine memoises basis solves of repeated index sets
        (per-run cache; see :class:`repro.core.engine.BasisCache`).
    sample_size:
        Explicit eps-net sample size.  ``None`` (default) uses the
        Haussler-Welzl bound of Lemma 2.2 with the paper's constants; the
        "practical profile" (:func:`practical_parameters`) sets this to a
        constant-free ``Theta(nu^2 * r * n^{1/r})`` value so that the
        sub-linear regime is reachable on laptop-sized inputs.
    success_threshold:
        Explicit success-test threshold on ``w(V)/w(S)``.  ``None`` uses the
        paper's ``epsilon = 1/(10 nu n^{1/r})``.
    kernel_backend:
        Kernel backend the run executes on (``None`` defers to
        ``REPRO_KERNEL_BACKEND`` and then the registry default; see
        :mod:`repro.kernels`).
    """

    r: int = 2
    sample_scale: float = 1.0
    failure_probability: float = 1.0 / 3.0
    boost: Optional[float] = None
    max_iterations: Optional[int] = None
    keep_trace: bool = True
    basis_cache: bool = True
    sample_size: Optional[int] = None
    success_threshold: Optional[float] = None
    kernel_backend: Optional[str] = None


def resolve_sampling(
    problem: LPTypeProblem, params: ClarksonParameters
) -> tuple[int, float]:
    """Resolve the eps-net sample size and success threshold for a run.

    Returns ``(sample_size, success_threshold)``, honouring the explicit
    overrides in ``params`` and otherwise using the paper's Lemma 2.2 bound
    and the Algorithm 1 epsilon.  Shared by the sequential, streaming,
    coordinator, and MPC drivers so the four agree on the sampling regime.
    """
    n = problem.num_constraints
    nu = problem.combinatorial_dimension
    spec = EpsNetSpec.for_algorithm(
        num_constraints=n,
        combinatorial_dimension=nu,
        vc_dimension=problem.vc_dimension,
        r=params.r,
        failure_probability=params.failure_probability,
        sample_scale=params.sample_scale,
    )
    sample_size = params.sample_size if params.sample_size is not None else spec.sample_size()
    sample_size = max(1, min(int(sample_size), n))
    threshold = (
        params.success_threshold if params.success_threshold is not None else spec.epsilon
    )
    return sample_size, float(threshold)


def practical_parameters(
    problem: LPTypeProblem,
    r: int = 2,
    safety: float = 4.0,
    keep_trace: bool = True,
    max_iterations: Optional[int] = None,
) -> ClarksonParameters:
    """Constant-free parameters that keep the paper's asymptotics.

    The Lemma 2.2 constants (``8 * lambda / eps * log(...)`` with
    ``eps = 1/(10 nu n^{1/r})``) put the sub-linear sampling regime out of
    reach for inputs below ~10^7 constraints.  This profile keeps the same
    scaling but replaces the constants with Clarkson's random-sampling bound:

    * success threshold ``eps = ln(n) / (2 * nu * r * n^{1/r})`` — still small
      enough that the Lemma 3.3 argument bounds the successful iterations by
      ``O(nu * r)``;
    * sample size ``m = safety * nu / eps`` — by Clarkson's sampling lemma the
      expected violator weight fraction of an ``m``-sample is at most
      ``nu / (m - nu)``, so an iteration succeeds with constant probability.

    Used by the examples and by every benchmark; the paper-exact profile
    (``ClarksonParameters()``) remains the default of the solvers.
    """
    import math

    n = problem.num_constraints
    nu = problem.combinatorial_dimension
    if r < 1:
        raise ValueError("r must be >= 1")
    epsilon = math.log(max(3, n)) / (2.0 * nu * r * n ** (1.0 / r))
    epsilon = min(0.45, epsilon)
    sample_size = int(math.ceil(safety * nu / epsilon)) + nu
    return ClarksonParameters(
        r=r,
        keep_trace=keep_trace,
        max_iterations=max_iterations,
        sample_size=min(sample_size, n),
        success_threshold=epsilon,
    )


def solve_small_problem(problem: LPTypeProblem) -> SolveResult:
    """Solve a problem outright when sampling would cover the whole ground set."""
    basis = problem.solve()
    return SolveResult(
        value=basis.value,
        witness=basis.witness,
        basis_indices=basis.indices,
        iterations=1,
        successful_iterations=1,
        resources=ResourceUsage(space_peak_items=problem.num_constraints),
        metadata={"algorithm": "direct"},
    )


def _warm_stats(
    warm_witnesses: list | None, outcome_witnesses: list
) -> WarmStats | None:
    """The ``SolveResult.warm`` record of one session-tracked run.

    ``warm_witnesses is None`` means "not a session solve" — no record.  An
    empty list means the session's first (cold) solve: numerically identical
    to a plain solve, but the witness state is tracked for later re-solves.
    """
    if warm_witnesses is None:
        return None
    return WarmStats(
        warm_start=bool(warm_witnesses),
        reused_bases=len(warm_witnesses),
        new_bases=len(outcome_witnesses),
        witnesses=list(warm_witnesses) + list(outcome_witnesses),
    )


def _clarkson_solve(
    problem: LPTypeProblem,
    params: ClarksonParameters | None = None,
    rng: SeedLike = None,
    warm_witnesses: list | None = None,
) -> SolveResult:
    """Sequential meta-algorithm (Algorithm 1); see :func:`clarkson_solve`.

    Internal entry point used by ``repro.solve(problem, model="sequential")``
    and the baselines; identical to the public shim minus the deprecation
    warning.  ``warm_witnesses`` (session API) seeds the weight vector from
    a prior run's successful-iteration bases: constraint ``i`` starts at
    ``boost ** #violated-witnesses`` instead of 1, exactly the implicit
    weight it would carry had the prior iterations happened in this run.
    """
    params = params or ClarksonParameters()
    gen = as_generator(rng)
    n = problem.num_constraints

    if n == 0:
        raise ValueError("problem has no constraints")

    with kernels.use_backend(params.kernel_backend) as backend:
        sample_size, epsilon = resolve_sampling(problem, params)
        if sample_size >= n:
            # The eps-net would contain every constraint; solve directly.
            result = solve_small_problem(problem)
            result.metadata.update(
                {"r": params.r, "sample_size": sample_size, "kernel_backend": backend}
            )
            result.warm = _warm_stats(warm_witnesses, [])
            return result

        boost = params.boost if params.boost is not None else boost_factor(n, params.r)
        oracle = ViolationOracle(problem)
        if warm_witnesses:
            # One vectorised sweep recovers the carried weight state (counted
            # against the oracle like any other violation evaluation).
            exponents = oracle.count_matrix(warm_witnesses, problem.all_indices())
            weights = ExplicitWeights.from_exponents(exponents, boost)
        else:
            weights = ExplicitWeights.uniform(n, boost)
        substrate = ExplicitWeightSubstrate(problem, weights, oracle=oracle)
        engine = ClarksonEngine(
            problem=problem,
            sampler=InMemorySampling(weights, gen),
            substrate=substrate,
            config=EngineConfig(
                sample_size=sample_size,
                epsilon=epsilon,
                budget=iteration_budget(problem, params.r, params.max_iterations),
                keep_trace=params.keep_trace,
                name="Algorithm 1",
                basis_cache=params.basis_cache,
            ),
        )
        outcome = engine.run()

    return SolveResult(
        value=outcome.basis.value,
        witness=outcome.basis.witness,
        basis_indices=outcome.basis.indices,
        iterations=outcome.iterations,
        successful_iterations=outcome.successful_iterations,
        resources=ResourceUsage(
            space_peak_items=substrate.peak_items,
            oracle_calls=oracle.calls,
            basis_cache_hits=outcome.cache_hits,
            basis_cache_misses=outcome.cache_misses,
        ),
        trace=outcome.trace,
        metadata={
            "algorithm": "clarkson_sequential",
            "r": params.r,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
            "kernel_backend": backend,
        },
        warm=_warm_stats(warm_witnesses, outcome.successful_witnesses),
    )


def clarkson_solve(
    problem: LPTypeProblem,
    params: ClarksonParameters | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve ``problem`` with the sequential meta-algorithm (Algorithm 1).

    .. deprecated:: 1.1
        Use ``repro.solve(problem, model="sequential")`` instead; this shim
        emits a :class:`DeprecationWarning` and forwards to the same
        implementation.

    Parameters
    ----------
    problem:
        The LP-type problem to solve.
    params:
        Algorithm parameters; defaults to :class:`ClarksonParameters()`.
    rng:
        Seed or generator controlling all randomness of the run.

    Returns
    -------
    SolveResult
        The optimum together with the iteration trace.  ``resources`` records
        the peak number of constraints materialised at once (the eps-net
        sample plus the stored bases), which is the quantity Theorem 1 bounds
        in the streaming model.
    """
    # Imported lazily: repro.api.config depends on this module, so the
    # shared deprecation helper cannot be imported at module load time.
    from ..api.registry import warn_legacy_entry_point

    warn_legacy_entry_point("clarkson_solve", "sequential")
    return _clarkson_solve(problem, params=params, rng=rng)
