"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InfeasibleProblemError(ReproError):
    """Raised when an optimisation problem has an empty feasible region."""


class UnboundedProblemError(ReproError):
    """Raised when an optimisation problem has an unbounded optimum.

    The meta-algorithm requires every sub-problem to have a well defined
    optimum; linear programs are therefore intersected with a bounding box
    (see :class:`repro.problems.linear_program.LinearProgram`).  This error is
    raised when a caller explicitly disables the box and the optimum escapes
    to infinity.
    """


class SolverError(ReproError):
    """Raised when a numerical solver fails to converge or returns garbage."""


class InvalidInstanceError(ReproError):
    """Raised when an input instance violates the promises of a problem.

    Examples: a two-curve-intersection instance whose curves are not monotone
    or not convex, an LP with mismatched coefficient shapes, or an SVM data
    set that is not linearly separable when a hard-margin model is requested.
    """


class InvalidConfigError(ReproError, ValueError):
    """Raised when a :class:`repro.api.config.SolverConfig` is invalid.

    The message always names the offending field (e.g. ``MPCConfig.delta``)
    so that callers of the facade can correct the configuration without
    digging through a driver traceback.  Also raised for configuration keys
    that a model does not support.
    """


class RegistryError(ReproError, LookupError):
    """Raised on misuse of the model / problem registry.

    Looking up a name that was never registered (the message lists the
    registered names), or registering the same name twice.
    """


class IterationLimitError(ReproError):
    """Raised when the meta-algorithm exceeds its iteration budget.

    Algorithm 1 terminates within O(nu * r) iterations with high probability;
    an implementation bug or an adversarially chosen random seed could in
    principle exceed that, so all drivers carry an explicit budget and fail
    loudly instead of looping forever.
    """


class CommunicationError(ReproError):
    """Raised on misuse of the communication substrates.

    For instance, sending a message outside of an open round in the
    coordinator model, or exceeding the per-machine memory in the MPC model.
    """


class TransportFailure(CommunicationError):
    """Raised when a transport's execution substrate fails mid-flight.

    Distinguishes *infrastructure* failures (a worker process died, a pipe
    broke, a pool could not be restarted) from the task-level
    :class:`CommunicationError` a worker reports when user code raises.
    Callers use :attr:`retryable` to decide whether re-running the solve can
    succeed:

    Attributes
    ----------
    retryable:
        ``True`` when the failure is transient (the supervised transport
        restarted the worker, or a fresh attempt may find a healthy pool);
        ``False`` when the transport is terminally broken (restart budget
        exhausted and degradation disabled) and the owning session should be
        replaced.
    worker:
        Index of the worker that failed, when known.
    attempts:
        How many recovery attempts were made before giving up (``0`` for a
        first-time failure that was not yet retried).
    """

    def __init__(
        self,
        message: str,
        *,
        retryable: bool = False,
        worker: int | None = None,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.retryable = bool(retryable)
        self.worker = worker
        self.attempts = int(attempts)


class CircuitOpenError(ReproError):
    """Raised when a circuit breaker refuses work to shed load.

    The service opens a per-model breaker after repeated infrastructure
    failures so that queued tickets are rejected fast (the server maps this
    to a structured 503 with ``Retry-After``) instead of piling onto a
    broken session.

    Attributes
    ----------
    retry_after_s:
        Seconds until the breaker will admit a probe request again.
    model:
        The model whose breaker is open, when known.
    """

    def __init__(
        self, message: str, *, retry_after_s: float = 1.0, model: str = ""
    ) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.model = str(model)


class ProtocolError(ReproError):
    """Raised when a two-party communication protocol is used incorrectly."""


class SessionError(ReproError):
    """Raised on misuse of the stateful session API.

    Examples: calling :meth:`repro.api.session.Session.resolve_with` before
    any solve established a warm state, warm-restarting a model that does not
    support it (see ``describe_model(name)["session"]``), or feeding an
    ingestion handle after it was finalised.
    """


class BudgetExceededError(ReproError):
    """Raised when a solve exhausts its per-request resource budget.

    Carries the partial resource picture accumulated up to the abort point so
    that service callers can log or bill the truncated request:

    Attributes
    ----------
    reason:
        Which budget currency ran out (``"wall_time"``, ``"iterations"``, or
        ``"communication_bits"``).
    elapsed_s:
        Wall-clock seconds spent when the budget tripped.
    iterations:
        Meta-algorithm iterations completed when the budget tripped.
    communication_bits:
        Measured communication bits moved when the budget tripped.
    usage:
        Partial :class:`~repro.core.result.ResourceUsage` (the currencies the
        budget meter tracks; driver-private currencies are zero).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "",
        elapsed_s: float = 0.0,
        iterations: int = 0,
        communication_bits: int = 0,
        usage: object = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.elapsed_s = float(elapsed_s)
        self.iterations = int(iterations)
        self.communication_bits = int(communication_bits)
        self.usage = usage


class ConfigFieldDroppedWarning(UserWarning):
    """Emitted when seeding a narrower config from a richer one drops fields.

    ``build_config`` carries over the fields shared between the given config
    and the target model's config class; any *non-default* field of the
    source that the target does not understand is silently lost.  This
    warning names those fields so the drop is visible (``compare_models``
    deliberately suppresses it: cross-model seeding is its documented
    contract)."""
