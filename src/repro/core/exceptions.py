"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InfeasibleProblemError(ReproError):
    """Raised when an optimisation problem has an empty feasible region."""


class UnboundedProblemError(ReproError):
    """Raised when an optimisation problem has an unbounded optimum.

    The meta-algorithm requires every sub-problem to have a well defined
    optimum; linear programs are therefore intersected with a bounding box
    (see :class:`repro.problems.linear_program.LinearProgram`).  This error is
    raised when a caller explicitly disables the box and the optimum escapes
    to infinity.
    """


class SolverError(ReproError):
    """Raised when a numerical solver fails to converge or returns garbage."""


class InvalidInstanceError(ReproError):
    """Raised when an input instance violates the promises of a problem.

    Examples: a two-curve-intersection instance whose curves are not monotone
    or not convex, an LP with mismatched coefficient shapes, or an SVM data
    set that is not linearly separable when a hard-margin model is requested.
    """


class InvalidConfigError(ReproError, ValueError):
    """Raised when a :class:`repro.api.config.SolverConfig` is invalid.

    The message always names the offending field (e.g. ``MPCConfig.delta``)
    so that callers of the facade can correct the configuration without
    digging through a driver traceback.  Also raised for configuration keys
    that a model does not support.
    """


class RegistryError(ReproError, LookupError):
    """Raised on misuse of the model / problem registry.

    Looking up a name that was never registered (the message lists the
    registered names), or registering the same name twice.
    """


class IterationLimitError(ReproError):
    """Raised when the meta-algorithm exceeds its iteration budget.

    Algorithm 1 terminates within O(nu * r) iterations with high probability;
    an implementation bug or an adversarially chosen random seed could in
    principle exceed that, so all drivers carry an explicit budget and fail
    loudly instead of looping forever.
    """


class CommunicationError(ReproError):
    """Raised on misuse of the communication substrates.

    For instance, sending a message outside of an open round in the
    coordinator model, or exceeding the per-machine memory in the MPC model.
    """


class ProtocolError(ReproError):
    """Raised when a two-party communication protocol is used incorrectly."""
