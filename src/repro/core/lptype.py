"""The LP-type problem abstraction (Section 2.1 and Section 3 of the paper).

An LP-type problem is a pair ``(S, f)`` where ``S`` is a finite set of
constraints and ``f`` maps subsets of ``S`` to a totally ordered range and
satisfies *monotonicity* and *locality*.  The paper restricts attention to
the class satisfying properties (P1)/(P2): each constraint corresponds to a
subset of the range ``R`` (the feasible points satisfying it) and ``f(A)`` is
the minimal element of the intersection of the constraints in ``A``.

For that class, the primitive operations Algorithm 1 needs are

* ``solve_subset``: compute ``f(A)`` (value, witness point, and a small
  basis) for an explicitly given subset ``A``;
* ``violates``: decide whether a constraint is violated by the witness point
  of a basis, i.e. whether ``f(B + {S}) > f(B)``.

Concrete problems (linear programming, hard-margin SVM, minimum enclosing
ball) implement :class:`LPTypeProblem`; the sequential, streaming,
coordinator and MPC drivers only ever talk to this interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "BasisResult",
    "LPTypeProblem",
    "as_index_array",
    "check_monotonicity",
    "check_locality",
]


def as_index_array(indices: Iterable[int]) -> np.ndarray:
    """Coerce any iterable of constraint indices to a 1-d int array."""
    if isinstance(indices, np.ndarray):
        return indices.astype(int, copy=False).reshape(-1)
    return np.asarray(list(indices), dtype=int).reshape(-1)


@dataclass(frozen=True)
class BasisResult:
    """Result of solving an LP-type problem on a subset of constraints.

    Attributes
    ----------
    indices:
        Indices (into the full constraint set) of a basis of the subset:
        a small sub-subset with the same ``f`` value.  At most
        ``combinatorial_dimension`` entries.
    value:
        ``f`` of the subset.  Must support ``<`` / ``==`` comparisons with
        other values produced by the same problem (totally ordered range).
    witness:
        The optimal point realising ``value`` (an ``ndarray`` for the
        geometric problems).  Violation tests are performed against the
        witness.
    subset_size:
        Number of constraints that were solved over (for bookkeeping).
    """

    indices: tuple[int, ...]
    value: Any
    witness: Any
    subset_size: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(int(i) for i in self.indices))


class LPTypeProblem(abc.ABC):
    """Interface every concrete LP-type problem implements.

    The constraint set is indexed ``0 .. num_constraints - 1``; drivers refer
    to constraints exclusively through these indices so that the problem
    object itself can live on a single machine (models that distribute the
    constraints pass around *constraint payloads* obtained via
    :meth:`constraint_payload`).
    """

    # ------------------------------------------------------------------ #
    # Static problem metadata
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def num_constraints(self) -> int:
        """``n``, the number of constraints."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """``d``, the ambient dimension of the problem."""

    @property
    def combinatorial_dimension(self) -> int:
        """``nu``: maximum basis cardinality.  ``d + 1`` for LP/SVM/MEB."""
        return self.dimension + 1

    @property
    def vc_dimension(self) -> int:
        """``lambda``: VC dimension of the constraint set system (``d + 1``)."""
        return self.dimension + 1

    def bit_size(self) -> int:
        """Bits needed to describe one constraint (``bit(S)`` in the paper).

        Default: ``(d + 1)`` coefficients at 64 bits each; concrete problems
        override when their constraints carry a different payload.
        """
        return (self.dimension + 1) * 64

    # ------------------------------------------------------------------ #
    # Core primitives
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def solve_subset(self, indices: Sequence[int]) -> BasisResult:
        """Compute ``f`` on the subset given by ``indices``.

        ``indices`` may be empty, in which case the problem's "unconstrained"
        optimum (e.g. the corner of the bounding box for LP) is returned with
        an empty basis.
        """

    @abc.abstractmethod
    def violates(self, witness: Any, index: int) -> bool:
        """Return ``True`` iff constraint ``index`` is violated at ``witness``.

        For problems in the (P1)/(P2) class this is exactly the test
        ``f(B + {index}) > f(B)`` where ``witness`` realises ``f(B)``.
        """

    # ------------------------------------------------------------------ #
    # Derived helpers (overridable for vectorised implementations)
    # ------------------------------------------------------------------ #

    def violation_mask(self, witness: Any, indices: Iterable[int]) -> np.ndarray:
        """Boolean mask over ``indices``: entry ``j`` is ``True`` iff
        ``indices[j]`` is violated at ``witness``.

        The default falls back to scalar :meth:`violates` calls; concrete
        problems override with a truly vectorised implementation — this is
        the hot path of every driver's success test.
        """
        idx = as_index_array(indices)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        return np.fromiter(
            (self.violates(witness, int(i)) for i in idx), dtype=bool, count=idx.size
        )

    def violation_count_matrix(
        self, witnesses: Sequence[Any], indices: Iterable[int]
    ) -> np.ndarray:
        """For each of ``indices``, the number of ``witnesses`` it violates.

        This is the implicit-weight exponent ``a_i`` of Section 3.2: the
        streaming and MPC substrates derive the weight of constraint ``i``
        as ``boost ** a_i`` from the stored bases of successful iterations.
        The default stacks :meth:`violation_mask` calls (one per witness);
        concrete problems override with a single matrix evaluation.
        """
        idx = as_index_array(indices)
        counts = np.zeros(idx.size, dtype=np.int64)
        for witness in witnesses:
            if witness is None:
                continue
            counts += self.violation_mask(witness, idx)
        return counts

    def violating_indices(self, witness: Any, indices: Iterable[int]) -> np.ndarray:
        """Indices among ``indices`` violated at ``witness`` (ascending order)."""
        idx = as_index_array(indices)
        if idx.size == 0:
            return np.empty(0, dtype=int)
        return np.sort(idx[self.violation_mask(witness, idx)])

    def all_indices(self) -> np.ndarray:
        """``[0, 1, ..., n-1]`` as an array."""
        return np.arange(self.num_constraints, dtype=int)

    def solve(self) -> BasisResult:
        """Solve over the full constraint set (ground truth for tests)."""
        return self.solve_subset(self.all_indices())

    def constraint_payload(self, index: int) -> Any:
        """A self-contained description of one constraint.

        Used by the distributed substrates when they ship constraints between
        machines; the default returns the index itself, which suffices for
        the simulators (they share the problem object), but concrete problems
        provide real payloads so message sizes can be accounted faithfully.
        """
        return index

    def payload_num_coefficients(self) -> int:
        """Number of real coefficients in one constraint payload."""
        return self.dimension + 1


# ---------------------------------------------------------------------- #
# Axiom checkers (used by tests and by the property-based suite)
# ---------------------------------------------------------------------- #


def check_monotonicity(
    problem: LPTypeProblem, smaller: Sequence[int], larger: Sequence[int]
) -> bool:
    """Check ``f(X) <= f(Y)`` for ``X`` a subset of ``Y``.

    ``smaller`` must be a subset of ``larger``; raises ``ValueError`` if not.
    """
    small_set = set(int(i) for i in smaller)
    large_set = set(int(i) for i in larger)
    if not small_set <= large_set:
        raise ValueError("'smaller' must be a subset of 'larger'")
    f_small = problem.solve_subset(sorted(small_set)).value
    f_large = problem.solve_subset(sorted(large_set)).value
    return not f_large < f_small


def check_locality(
    problem: LPTypeProblem,
    smaller: Sequence[int],
    larger: Sequence[int],
    extra: int,
) -> bool:
    """Check the locality axiom for ``X subset Y`` and element ``extra``.

    If ``f(X) = f(Y) = f(X + {e})`` then ``f(Y) = f(Y + {e})`` must hold.
    Returns ``True`` when the premise fails (vacuous) or the conclusion holds.
    """
    small_set = set(int(i) for i in smaller)
    large_set = set(int(i) for i in larger)
    if not small_set <= large_set:
        raise ValueError("'smaller' must be a subset of 'larger'")
    f_small = problem.solve_subset(sorted(small_set)).value
    f_large = problem.solve_subset(sorted(large_set)).value
    f_small_e = problem.solve_subset(sorted(small_set | {int(extra)})).value
    premise = f_small == f_large == f_small_e
    if not premise:
        return True
    f_large_e = problem.solve_subset(sorted(large_set | {int(extra)})).value
    return f_large_e == f_large
