"""The LP-type problem abstraction (Section 2.1 and Section 3 of the paper).

An LP-type problem is a pair ``(S, f)`` where ``S`` is a finite set of
constraints and ``f`` maps subsets of ``S`` to a totally ordered range and
satisfies *monotonicity* and *locality*.  The paper restricts attention to
the class satisfying properties (P1)/(P2): each constraint corresponds to a
subset of the range ``R`` (the feasible points satisfying it) and ``f(A)`` is
the minimal element of the intersection of the constraints in ``A``.

For that class, the primitive operations Algorithm 1 needs are

* ``solve_subset``: compute ``f(A)`` (value, witness point, and a small
  basis) for an explicitly given subset ``A``;
* ``violates``: decide whether a constraint is violated by the witness point
  of a basis, i.e. whether ``f(B + {S}) > f(B)``.

Concrete problems (linear programming, hard-margin SVM, minimum enclosing
ball) implement :class:`LPTypeProblem`; the sequential, streaming,
coordinator and MPC drivers only ever talk to this interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

from .. import kernels
from .exceptions import SolverError

__all__ = [
    "BasisResult",
    "ConstraintPack",
    "LPTypeProblem",
    "as_index_array",
    "working_set_solve",
    "check_monotonicity",
    "check_locality",
]


def as_index_array(indices: Iterable[int]) -> np.ndarray:
    """Coerce any iterable of constraint indices to a 1-d int array.

    Integer ndarrays pass through untouched (no copy, no Python-list round
    trip — this runs on every oracle call, with arrays of up to ``n``
    entries); other array-likes (lists, ranges) convert directly, and only
    opaque iterables (generators, sets) take the materialising fallback.
    """
    if isinstance(indices, np.ndarray):
        if indices.ndim != 1:
            indices = indices.reshape(-1)
        if indices.dtype == np.int64 or indices.dtype == np.intp:
            return indices
        return indices.astype(int, copy=False)
    try:
        arr = np.asarray(indices, dtype=int)
    except (TypeError, ValueError):
        arr = np.asarray(list(indices), dtype=int)
    return arr.reshape(-1)


def _as_selector(
    indices: Optional[Iterable[int]], num_constraints: int
) -> None | slice | np.ndarray:
    """Normalise an index argument to a kernel-layer selector.

    ``None`` means all rows.  A contiguous ascending range becomes a
    ``slice`` — the kernels then take views instead of gather copies (the
    coordinator/MPC site partitions and the full-index arrays of the
    sequential substrate are all contiguous).  Anything else stays a fancy
    index array.  The strict-ascent verification is one cheap boolean pass,
    entered only when the endpoints already match a contiguous range.
    """
    if indices is None:
        return None
    idx = as_index_array(indices)
    size = idx.size
    if size == 0:
        return idx
    first = int(idx[0])
    last = int(idx[-1])
    if last - first == size - 1 and (size <= 2 or bool((idx[1:] > idx[:-1]).all())):
        if first == 0 and size == num_constraints:
            return None
        return slice(first, last + 1)
    return idx


#: Sentinel distinguishing "pack not built yet" from "problem has no pack".
_PACK_UNSET = object()


@dataclass(frozen=True)
class BasisResult:
    """Result of solving an LP-type problem on a subset of constraints.

    Attributes
    ----------
    indices:
        Indices (into the full constraint set) of a basis of the subset:
        a small sub-subset with the same ``f`` value.  At most
        ``combinatorial_dimension`` entries.
    value:
        ``f`` of the subset.  Must support ``<`` / ``==`` comparisons with
        other values produced by the same problem (totally ordered range).
    witness:
        The optimal point realising ``value`` (an ``ndarray`` for the
        geometric problems).  Violation tests are performed against the
        witness.
    subset_size:
        Number of constraints that were solved over (for bookkeeping).
    """

    indices: tuple[int, ...]
    value: Any
    witness: Any
    subset_size: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(int(i) for i in self.indices))


class ConstraintPack:
    """The packed constraint data plane: one contiguous float64 view per problem.

    Every constraint family in the (P1)/(P2) class tested here reduces its
    violation test to an affine margin against an encoded witness vector::

        margin_j = rows[j] . w + offset - rhs[j]

    where ``(w, offset)`` come from :meth:`LPTypeProblem.encode_witness`.
    With ``sense = +1`` constraint ``j`` is violated iff ``margin_j >
    limit[j]`` (upper-bound constraints such as ``a.x <= b``); with ``sense =
    -1`` iff ``margin_j < -limit[j]`` (lower-bound constraints such as
    ``g.x >= h``).  ``limit`` carries the per-constraint violation tolerance,
    precomputed once, so the hot loop is a single matmul plus a comparison —
    no per-constraint Python objects, no per-call scale recomputation.
    """

    __slots__ = ("rows", "rhs", "limit", "sense", "_kernel_cache")

    def __init__(
        self,
        rows: np.ndarray,
        rhs: np.ndarray,
        limit: np.ndarray | float,
        sense: int = 1,
    ) -> None:
        self.rows = np.ascontiguousarray(rows, dtype=np.float64)
        if self.rows.ndim != 2:
            raise ValueError(f"rows must be 2-d, got {self.rows.ndim}-d")
        self.rhs = np.ascontiguousarray(
            np.asarray(rhs, dtype=np.float64).reshape(-1)
        )
        if self.rhs.size != self.rows.shape[0]:
            raise ValueError(
                f"{self.rows.shape[0]} rows but {self.rhs.size} right-hand sides"
            )
        limit_arr = np.asarray(limit, dtype=np.float64)
        if limit_arr.ndim == 0:
            limit_arr = np.full(self.rhs.size, float(limit_arr))
        self.limit = np.ascontiguousarray(limit_arr.reshape(-1))
        if self.limit.size != self.rhs.size:
            raise ValueError("limit must be a scalar or match the constraint count")
        if sense not in (1, -1):
            raise ValueError(f"sense must be +1 or -1, got {sense}")
        self.sense = int(sense)
        self._kernel_cache: Optional[dict] = None

    @property
    def num_constraints(self) -> int:
        return int(self.rows.shape[0])

    @property
    def num_coefficients(self) -> int:
        return int(self.rows.shape[1])

    def kernel_cache(self) -> dict:
        """Scratch dict for backend-owned per-pack precomputations.

        The ``fused`` backend stashes its float32 mirrors here so they are
        built once per pack, not once per sweep.  The cache is keyed by the
        backend and carries derived data only — the pack arrays themselves
        stay the single source of truth.
        """
        if self._kernel_cache is None:
            self._kernel_cache = {}
        return self._kernel_cache

    # -- export / import hooks (the zero-copy data plane) ---------------- #

    def __getstate__(self) -> tuple:
        # Only the four canonical arrays travel: the kernel cache is derived
        # data (fp32 mirrors, magnitude terms) every process rebuilds
        # locally — shipping it would double the wire size for nothing.
        return (self.rows, self.rhs, self.limit, self.sense)

    def __setstate__(self, state: tuple) -> None:
        # Imported arrays are installed verbatim — no ``ascontiguousarray``
        # re-validation pass.  This keeps shared-memory imports zero-copy:
        # the transport layer hands in read-only views over shared pages,
        # and a defensive copy here would silently privatise them again.
        rows, rhs, limit, sense = state
        self.rows = rows
        self.rhs = rhs
        self.limit = limit
        self.sense = sense
        self._kernel_cache = None

    def scores(
        self, encoded: tuple[np.ndarray, float], indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Violation scores over ``indices``: positive iff violated.

        The magnitude is the tolerance-adjusted slack, so sorting by score
        ranks constraints by how badly the witness breaks them.  Always
        evaluated in full float64 (working-set growth ranks on these scores,
        so their order must not depend on the backend's precision mode).
        """
        sel = _as_selector(indices, self.num_constraints)
        return kernels.active_backend().scores(self, encoded, sel)

    def mask(
        self, encoded: tuple[np.ndarray, float], indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Boolean violation mask over ``indices`` for one encoded witness."""
        return self.sweep(encoded, indices, need_total=False).mask

    def sweep(
        self,
        encoded: tuple[np.ndarray, float],
        indices: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        need_total: bool = True,
        log_weights: Optional[np.ndarray] = None,
        log_shift: float = 0.0,
    ) -> "kernels.SweepStats":
        """One fused pass: violation mask, count, and weight sums.

        ``weights`` must be aligned with ``indices`` (or with all rows when
        ``indices`` is ``None``).  ``log_weights``/``log_shift`` is the
        log-space alternative (effective weight ``exp(lw - shift)``) that
        lets blocked backends exponentiate inside the sweep.  This is the
        hot success-test primitive: backends evaluate it without
        materialising full margin temporaries.
        """
        sel = _as_selector(indices, self.num_constraints)
        return kernels.active_backend().sweep(
            self,
            encoded,
            sel,
            weights=weights,
            need_total=need_total,
            log_weights=log_weights,
            log_shift=log_shift,
        )

    def count_matrix(
        self,
        encodings: Sequence[tuple[np.ndarray, float]],
        indices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-constraint count of violated witnesses, one matrix product."""
        sel = _as_selector(indices, self.num_constraints)
        if not encodings:
            n = kernels.selector_length(sel, self.num_constraints)
            return np.zeros(n, dtype=np.int64)
        vecs = np.stack([np.asarray(v, dtype=np.float64) for v, _ in encodings], axis=1)
        offsets = np.asarray([float(o) for _, o in encodings], dtype=np.float64)
        return kernels.active_backend().count_matrix(self, vecs, offsets, sel)


class LPTypeProblem(abc.ABC):
    """Interface every concrete LP-type problem implements.

    The constraint set is indexed ``0 .. num_constraints - 1``; drivers refer
    to constraints exclusively through these indices so that the problem
    object itself can live on a single machine (models that distribute the
    constraints pass around *constraint payloads* obtained via
    :meth:`constraint_payload`).
    """

    # ------------------------------------------------------------------ #
    # Static problem metadata
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def num_constraints(self) -> int:
        """``n``, the number of constraints."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """``d``, the ambient dimension of the problem."""

    @property
    def combinatorial_dimension(self) -> int:
        """``nu``: maximum basis cardinality.  ``d + 1`` for LP/SVM/MEB."""
        return self.dimension + 1

    @property
    def vc_dimension(self) -> int:
        """``lambda``: VC dimension of the constraint set system (``d + 1``)."""
        return self.dimension + 1

    def bit_size(self) -> int:
        """Bits needed to describe one constraint (``bit(S)`` in the paper).

        Default: ``(d + 1)`` coefficients at 64 bits each; concrete problems
        override when their constraints carry a different payload.
        """
        return (self.dimension + 1) * 64

    # ------------------------------------------------------------------ #
    # Core primitives
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def solve_subset(self, indices: Sequence[int]) -> BasisResult:
        """Compute ``f`` on the subset given by ``indices``.

        ``indices`` may be empty, in which case the problem's "unconstrained"
        optimum (e.g. the corner of the bounding box for LP) is returned with
        an empty basis.
        """

    @abc.abstractmethod
    def violates(self, witness: Any, index: int) -> bool:
        """Return ``True`` iff constraint ``index`` is violated at ``witness``.

        For problems in the (P1)/(P2) class this is exactly the test
        ``f(B + {index}) > f(B)`` where ``witness`` realises ``f(B)``.
        """

    # ------------------------------------------------------------------ #
    # The packed data plane
    # ------------------------------------------------------------------ #

    def constraint_pack(self) -> Optional[ConstraintPack]:
        """The packed constraint arrays, built once and cached on the problem.

        Returns ``None`` for problems that do not provide a packed form (the
        batch methods then fall back to scalar :meth:`violates` loops).
        """
        pack = getattr(self, "_constraint_pack_cache", _PACK_UNSET)
        if pack is _PACK_UNSET:
            pack = self._build_constraint_pack()
            self._constraint_pack_cache = pack
        return pack

    def _build_constraint_pack(self) -> Optional[ConstraintPack]:
        """Build the :class:`ConstraintPack` for this problem (``None`` = no pack)."""
        return None

    def prepare_for_export(self) -> None:
        """Materialise derived constraint-plane arrays before zero-copy export.

        The shared-memory data plane (:mod:`repro.fabric.shm`) pickles the
        problem once and spills its large arrays into a shared segment.
        Anything still lazy at that point — above all the constraint pack —
        would instead be rebuilt privately by *every* worker, re-introducing
        the per-worker memory blow-up the export exists to remove.  The
        default builds the pack (which also fixes family-side auxiliaries
        such as MEB's centring shift, so witness encoding agrees across
        processes); problems with additional lazy heavy state override and
        extend this.
        """
        self.constraint_pack()

    def encode_witness(self, witness: Any) -> Optional[tuple[np.ndarray, float]]:
        """Encode ``witness`` as the ``(vector, offset)`` pair the pack consumes.

        ``None`` (for a ``None`` witness, or for problems without a pack)
        routes the batch methods to their scalar fallback.
        """
        return None

    # ------------------------------------------------------------------ #
    # Derived helpers (pack-backed; scalar fallback via ``violates``)
    # ------------------------------------------------------------------ #

    def violation_mask(
        self, witness: Any, indices: Optional[Iterable[int]] = None
    ) -> np.ndarray:
        """Boolean mask over ``indices``: entry ``j`` is ``True`` iff
        ``indices[j]`` is violated at ``witness``.

        ``indices=None`` means the full constraint set (without building an
        index array).  Evaluated against the packed data plane when the
        problem provides one (a single fused sweep — this is the hot path of
        every driver's success test); otherwise falls back to scalar
        :meth:`violates` calls.
        """
        return self.violation_sweep(witness, indices, need_total=False).mask

    def violation_sweep(
        self,
        witness: Any,
        indices: Optional[Iterable[int]] = None,
        weights: Optional[np.ndarray] = None,
        need_total: bool = True,
        log_weights: Optional[np.ndarray] = None,
        log_shift: float = 0.0,
    ) -> "kernels.SweepStats":
        """One fused violation sweep: mask, violator count, and weight sums.

        The kernel-layer success-test primitive (``sweep_scores_mask_accum``):
        one blocked pass over the selected constraints produces the violation
        mask, the violator count, and the violated-weight sum (plus the total
        weight unless ``need_total=False``), replacing the historical
        mask-then-index-then-sum sequence.  ``weights`` must align with
        ``indices``; ``log_weights``/``log_shift`` is the log-space
        alternative (effective weight ``exp(lw - shift)``), which blocked
        backends exponentiate inside the sweep.  Problems without a packed
        data plane fall back to the scalar :meth:`violates` loop plus NumPy
        reductions.
        """
        idx = None if indices is None else as_index_array(indices)
        size = self.num_constraints if idx is None else int(idx.size)
        if size == 0 or witness is None:
            mask = np.zeros(size, dtype=bool)
            total = None
            if need_total:
                if weights is None and log_weights is None:
                    total = float(size)
                elif weights is None:
                    total = float(np.exp(np.asarray(log_weights) - log_shift).sum())
                else:
                    total = float(np.asarray(weights, dtype=float).sum())
            return kernels.SweepStats(
                mask=mask, count=0, violated_weight=0.0, total_weight=total
            )
        pack = self.constraint_pack()
        if pack is not None:
            encoded = self.encode_witness(witness)
            if encoded is not None:
                return pack.sweep(
                    encoded,
                    idx,
                    weights=weights,
                    need_total=need_total,
                    log_weights=log_weights,
                    log_shift=log_shift,
                )
        if log_weights is not None and weights is None:
            weights = np.exp(np.asarray(log_weights, dtype=float) - log_shift)
        if idx is None:
            idx = self.all_indices()
        mask = np.fromiter(
            (self.violates(witness, int(i)) for i in idx), dtype=bool, count=idx.size
        )
        count = int(np.count_nonzero(mask))
        if weights is None:
            violated = float(count)
            total = float(mask.size) if need_total else None
        else:
            w = np.asarray(weights, dtype=float)
            violated = float(w[mask].sum())
            total = float(w.sum()) if need_total else None
        return kernels.SweepStats(
            mask=mask, count=count, violated_weight=violated, total_weight=total
        )

    def violation_count_matrix(
        self, witnesses: Sequence[Any], indices: Optional[Iterable[int]] = None
    ) -> np.ndarray:
        """For each of ``indices``, the number of ``witnesses`` it violates.

        This is the implicit-weight exponent ``a_i`` of Section 3.2: the
        streaming and MPC substrates derive the weight of constraint ``i``
        as ``boost ** a_i`` from the stored bases of successful iterations.
        With a packed data plane all witnesses are evaluated in one matrix
        product; the fallback stacks :meth:`violation_mask` calls.
        """
        idx = None if indices is None else as_index_array(indices)
        size = self.num_constraints if idx is None else int(idx.size)
        present = [w for w in witnesses if w is not None]
        if not present or size == 0:
            return np.zeros(size, dtype=np.int64)
        pack = self.constraint_pack()
        if pack is not None:
            encodings = [self.encode_witness(w) for w in present]
            if all(e is not None for e in encodings):
                return pack.count_matrix(encodings, idx)
        counts = np.zeros(size, dtype=np.int64)
        for witness in present:
            counts += self.violation_mask(witness, idx)
        return counts

    def violating_indices(self, witness: Any, indices: Iterable[int]) -> np.ndarray:
        """Indices among ``indices`` violated at ``witness`` (ascending order)."""
        idx = as_index_array(indices)
        if idx.size == 0:
            return np.empty(0, dtype=int)
        return np.sort(idx[self.violation_mask(witness, idx)])

    def all_indices(self) -> np.ndarray:
        """``[0, 1, ..., n-1]`` as an array."""
        return np.arange(self.num_constraints, dtype=int)

    def solve(self) -> BasisResult:
        """Solve over the full constraint set (ground truth for tests)."""
        return self.solve_subset(self.all_indices())

    def constraint_payload(self, index: int) -> Any:
        """A self-contained description of one constraint.

        Used by the distributed substrates when they ship constraints between
        machines; the default returns the index itself, which suffices for
        the simulators (they share the problem object), but concrete problems
        provide real payloads so message sizes can be accounted faithfully.
        """
        return index

    def payload_num_coefficients(self) -> int:
        """Number of real coefficients in one constraint payload."""
        return self.dimension + 1


# ---------------------------------------------------------------------- #
# Working-set subset solving (the packed-plane fast path of solve_subset)
# ---------------------------------------------------------------------- #

#: Subsets at or below this many constraints are handed to the backend solver
#: directly; larger subsets go through the working-set loop.
DIRECT_SOLVE_LIMIT = 128

#: Hard cap on working-set rounds before falling back to a direct solve (the
#: loop provably terminates — f strictly increases every round — but the cap
#: bounds the worst case on adversarial numerics).
_MAX_WORKING_ROUNDS = 64


def working_set_solve(
    problem: "LPTypeProblem",
    indices: Sequence[int] | np.ndarray,
    direct_solve: Callable[[np.ndarray], BasisResult],
    probe_solve: Optional[Callable[[np.ndarray], BasisResult]] = None,
    direct_limit: int = DIRECT_SOLVE_LIMIT,
) -> BasisResult:
    """Solve ``f`` on a large subset via an exact working-set (active-set) loop.

    Rather than handing all of ``indices`` to the backend solver, solve a
    small working set ``W``, test the resulting witness against the whole
    subset with one packed-plane sweep, and grow ``W`` by the worst violators
    until none remain.  The result is *exact* by the LP-type axioms: when the
    witness of ``f(W)`` violates no constraint of ``A`` and ``W`` is a subset
    of ``A``, monotonicity gives ``f(W) <= f(A)`` while feasibility of the
    witness gives ``f(A) <= f(W)`` — so ``f(A) = f(W)`` and any basis of
    ``W`` is a basis of ``A``.  (An infeasible ``f(W)`` is the top element,
    which forces ``f(A) = f(W)`` directly.)

    ``probe_solve``, when given, is a cheaper solver producing *some* optimal
    witness of ``W`` (e.g. skipping lexicographic tie-breaking).  Growth
    rounds use the probe; once the probe's witness is feasible for all of
    ``A``, the exact ``direct_solve`` runs on the final working set and its
    witness is re-verified — if tie-breaking moved the optimum onto a
    violated region, the loop simply continues.  Termination is unaffected
    because ``W`` strictly grows with violated constraints either way.

    This turns one backend solve over ``|A|`` constraints into a handful of
    solves over ``O(nu)`` constraints plus cheap vectorised violation sweeps —
    the dominant cost of Algorithm 1's basis computations on eps-net samples.
    The working set doubles each round, so the round count is logarithmic in
    the size of the active set.

    The loop is fully deterministic (evenly spaced initial set, violators
    ranked by violation score), so repeated runs with one seed stay
    bit-identical.
    """
    idx = as_index_array(indices)
    if idx.size <= max(direct_limit, 1):
        return direct_solve(idx)

    nu = problem.combinatorial_dimension
    pack = problem.constraint_pack()
    take = int(min(idx.size, max(4 * nu, 16)))
    work = np.unique(idx[np.linspace(0, idx.size - 1, take).astype(int)])
    probing = probe_solve is not None

    def violators_of(basis: BasisResult) -> np.ndarray:
        """Positions into ``idx`` of the violated constraints, worst first."""
        encoded = problem.encode_witness(basis.witness) if pack is not None else None
        if encoded is not None:
            scores = pack.scores(encoded, idx)
            violators = np.flatnonzero(scores > 0.0)
            # Worst offenders first (argsort on scores is deterministic).
            return violators[np.argsort(scores[violators])[::-1]]
        return np.flatnonzero(problem.violation_mask(basis.witness, idx))

    for _ in range(_MAX_WORKING_ROUNDS):
        try:
            basis = (probe_solve if probing else direct_solve)(work)
        except SolverError:
            # Tiny working sets can be numerically harder for the backend
            # than the full subset (ill-conditioned extreme-scale inputs);
            # fall back to the pre-working-set behaviour.
            return direct_solve(idx)
        violators = violators_of(basis)
        if violators.size == 0:
            if probing:
                # The probe's optimum is settled; run the exact solver once
                # and re-verify its (possibly different) witness.
                probing = False
                try:
                    basis = direct_solve(work)
                except SolverError:
                    return direct_solve(idx)
                violators = violators_of(basis)
            if violators.size == 0:
                return BasisResult(
                    indices=basis.indices,
                    value=basis.value,
                    witness=basis.witness,
                    subset_size=int(idx.size),
                )
        grow = max(2 * nu, work.size)
        fresh = idx[violators[: min(violators.size, grow)]]
        grown = np.unique(np.concatenate([work, fresh]))
        if grown.size == work.size or grown.size >= idx.size:
            # No progress (the backend's witness violates constraints already
            # in the working set beyond tolerance) or the working set covers
            # the subset: hand the whole thing to the backend.
            break
        work = grown
    return direct_solve(idx)


# ---------------------------------------------------------------------- #
# Axiom checkers (used by tests and by the property-based suite)
# ---------------------------------------------------------------------- #


def check_monotonicity(
    problem: LPTypeProblem, smaller: Sequence[int], larger: Sequence[int]
) -> bool:
    """Check ``f(X) <= f(Y)`` for ``X`` a subset of ``Y``.

    ``smaller`` must be a subset of ``larger``; raises ``ValueError`` if not.
    """
    small_set = set(int(i) for i in smaller)
    large_set = set(int(i) for i in larger)
    if not small_set <= large_set:
        raise ValueError("'smaller' must be a subset of 'larger'")
    f_small = problem.solve_subset(sorted(small_set)).value
    f_large = problem.solve_subset(sorted(large_set)).value
    return not f_large < f_small


def check_locality(
    problem: LPTypeProblem,
    smaller: Sequence[int],
    larger: Sequence[int],
    extra: int,
) -> bool:
    """Check the locality axiom for ``X subset Y`` and element ``extra``.

    If ``f(X) = f(Y) = f(X + {e})`` then ``f(Y) = f(Y + {e})`` must hold.
    Returns ``True`` when the premise fails (vacuous) or the conclusion holds.
    """
    small_set = set(int(i) for i in smaller)
    large_set = set(int(i) for i in larger)
    if not small_set <= large_set:
        raise ValueError("'smaller' must be a subset of 'larger'")
    f_small = problem.solve_subset(sorted(small_set)).value
    f_large = problem.solve_subset(sorted(large_set)).value
    f_small_e = problem.solve_subset(sorted(small_set | {int(extra)})).value
    premise = f_small == f_large == f_small_e
    if not premise:
        return True
    f_large_e = problem.solve_subset(sorted(large_set | {int(extra)})).value
    return f_large_e == f_large
