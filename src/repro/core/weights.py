"""Multiplicative weight bookkeeping for Algorithm 1.

Algorithm 1 maintains a weight ``w(S)`` for every constraint ``S``; after a
successful iteration every constraint violating the current basis has its
weight multiplied by ``n^{1/r}`` (the *boost* factor).  Two realisations are
provided:

* :class:`ExplicitWeights` stores the full weight vector (used by the
  sequential in-memory reference implementation and by the coordinator
  sites, each of which only stores weights for its own constraints);

* :class:`ImplicitWeights` never stores per-constraint weights.  Instead it
  stores the bases of all successful iterations; the weight of a constraint
  is ``boost ** (number of stored bases it violates)``.  This is exactly the
  trick of Section 3.2 that lets the streaming implementation (and the MPC
  machines) recompute weights on the fly with only ``O(nu * r)`` stored
  bases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import kernels

__all__ = ["ExplicitWeights", "ImplicitWeights", "boost_factor"]


def boost_factor(num_constraints: int, r: int) -> float:
    """Return Algorithm 1's weight boost ``n^{1/r}``."""
    if num_constraints < 1:
        raise ValueError(f"num_constraints must be >= 1, got {num_constraints}")
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    return float(num_constraints) ** (1.0 / r)


@dataclass
class ExplicitWeights:
    """A dense weight vector with in-place, log-space multiplicative updates.

    Weights are kept in log-space internally so that ``boost ** t`` never
    overflows even for many successful iterations (``n^{t/r}`` grows
    quickly); a boost is one in-place add of ``log(boost)`` at the violator
    indices.  The exponentiated (max-normalised) vector and its total are
    computed lazily and cached between boosts, so the success test and any
    residual ``weights()`` consumers never trigger repeated ``O(n)``
    exponentiation within one iteration.
    """

    log_weights: np.ndarray
    boost: float
    _scaled: np.ndarray | None = field(default=None, init=False, repr=False, compare=False)
    _scaled_total: float = field(default=0.0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._log_boost = float(np.log(self.boost))

    @classmethod
    def uniform(cls, count: int, boost: float) -> "ExplicitWeights":
        """All-ones weights over ``count`` constraints with boost factor ``boost``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if boost <= 1.0:
            raise ValueError(f"boost must exceed 1, got {boost}")
        return cls(log_weights=np.zeros(count, dtype=float), boost=float(boost))

    @classmethod
    def from_exponents(
        cls, exponents: Sequence[int] | np.ndarray, boost: float
    ) -> "ExplicitWeights":
        """Weights ``boost ** exponents`` in log-space (warm-start seeding).

        This is the bridge between the two weight realisations: a prior
        run's implicit weights — the per-constraint count of stored bases
        violated (Section 3.2) — become an explicit vector, so a
        warm-restarted explicit-weight driver starts exactly where an
        implicit-weight driver carrying the same bases would.  All-zero
        exponents reproduce :meth:`uniform` bit for bit.
        """
        if boost <= 1.0:
            raise ValueError(f"boost must exceed 1, got {boost}")
        exp = np.asarray(exponents, dtype=float).reshape(-1)
        if exp.size < 1:
            raise ValueError(f"need at least one exponent, got {exp.size}")
        return cls(log_weights=exp * float(np.log(boost)), boost=float(boost))

    def __len__(self) -> int:
        return int(self.log_weights.size)

    def weight(self, index: int) -> float:
        """Weight of constraint ``index`` (may be huge; prefer relative uses)."""
        return float(np.exp(self.log_weights[index]))

    def _scaled_weights(self) -> np.ndarray:
        if self._scaled is None:
            self._scaled = kernels.active_backend().exp_shift(
                self.log_weights, float(self.log_weights.max())
            )
            self._scaled.flags.writeable = False  # cached view: enforce read-only
            self._scaled_total = float(self._scaled.sum())
        return self._scaled

    @property
    def scaled_total(self) -> float:
        """Sum of the max-normalised weight vector (:meth:`fraction`'s denominator).

        Exposed so fused-sweep consumers can turn a violated-weight sum into
        the success-test fraction without re-reducing the full vector.
        """
        self._scaled_weights()
        return self._scaled_total

    def weights(self) -> np.ndarray:
        """The full weight vector, normalised to a maximum of 1 to avoid overflow.

        Sampling proportional to weights is invariant under a global scale,
        so the normalisation does not change the algorithm's behaviour.  The
        returned array is a cached view — treat it as read-only.
        """
        return self._scaled_weights()

    def total_weight_log(self) -> float:
        """``log(sum of weights)`` computed stably."""
        self._scaled_weights()
        return float(self.log_weights.max() + np.log(self._scaled_total))

    def multiply(self, indices: Sequence[int] | np.ndarray) -> None:
        """Multiply the weights at ``indices`` by the boost factor (in place)."""
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            return
        self.log_weights[idx] += self._log_boost
        self._scaled = None

    def fraction(self, indices: Sequence[int] | np.ndarray) -> float:
        """``w(indices) / w(all)`` computed stably in log-space."""
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            return 0.0
        scaled = self._scaled_weights()
        return float(scaled[idx].sum() / self._scaled_total)


@dataclass
class ImplicitWeights:
    """Weights derived from the list of stored (successful-iteration) bases.

    ``violates(basis, index)`` must return ``True`` when the constraint with
    the given index violates ``basis``.  The weight of constraint ``i`` is
    then ``boost ** a_i`` with ``a_i`` the number of stored bases it violates
    (Section 3.2).  Weights are reported relative to the maximum exponent so
    that they stay finite.
    """

    boost: float
    violates: Callable[[object, int], bool]
    bases: list[object] = field(default_factory=list)

    def record_basis(self, basis: object) -> None:
        """Store the basis of a successful iteration."""
        self.bases.append(basis)

    @property
    def num_bases(self) -> int:
        return len(self.bases)

    def exponent(self, index: int) -> int:
        """Number of stored bases violated by constraint ``index``."""
        return sum(1 for basis in self.bases if self.violates(basis, index))

    def log_weight(self, index: int) -> float:
        """``log w(index)`` = ``exponent * log(boost)``."""
        return self.exponent(index) * float(np.log(self.boost))

    def weight(self, index: int, reference_exponent: int = 0) -> float:
        """Weight relative to ``boost ** reference_exponent``.

        Sampling only needs weights up to a common factor; callers that worry
        about overflow can pass the maximum exponent seen so far as the
        reference.
        """
        return float(self.boost ** (self.exponent(index) - reference_exponent))
