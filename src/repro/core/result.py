"""Result records returned by every solver driver in the library.

All drivers (sequential, streaming, coordinator, MPC, and the baselines)
return a :class:`SolveResult` so that examples, tests, and the benchmark
harness can treat them uniformly: the optimum itself plus the exact resource
costs the paper's theorems are about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["CommunicationSummary", "IterationRecord", "ResourceUsage", "SolveResult"]


@dataclass(frozen=True)
class IterationRecord:
    """Trace of a single iteration of the meta-algorithm.

    Attributes
    ----------
    iteration:
        Zero-based iteration number.
    sample_size:
        Number of constraints in the eps-net sample of this iteration.
    num_violators:
        Number of constraints violating the basis computed in this iteration.
    violator_weight_fraction:
        ``w(V) / w(S)`` for this iteration (the success test compares it to
        eps).
    successful:
        Whether the iteration passed the success test and boosted weights.
    basis_indices:
        Indices of the basis computed in this iteration.
    """

    iteration: int
    sample_size: int
    num_violators: int
    violator_weight_fraction: float
    successful: bool
    basis_indices: tuple[int, ...] = ()


@dataclass
class ResourceUsage:
    """Resource costs of a run, in the currencies of the three models.

    Fields irrelevant to a particular model are left at zero (e.g. a
    streaming run has no communication).  All bit counts follow the
    :class:`repro.core.accounting.BitCostModel` used by the run.
    """

    passes: int = 0
    space_peak_items: int = 0
    space_peak_bits: int = 0
    rounds: int = 0
    total_communication_bits: int = 0
    max_message_bits: int = 0
    max_machine_load_bits: int = 0
    machine_count: int = 0
    oracle_calls: int = 0
    basis_cache_hits: int = 0
    basis_cache_misses: int = 0
    per_round: list[Mapping[str, int]] = field(default_factory=list)

    #: Fields that add up across independent runs (``mode="sum"``).
    _ADDITIVE_FIELDS = (
        "passes",
        "space_peak_items",
        "space_peak_bits",
        "rounds",
        "total_communication_bits",
        "machine_count",
        "oracle_calls",
        "basis_cache_hits",
        "basis_cache_misses",
    )
    #: Per-message / per-machine maxima: summing them is meaningless, so they
    #: aggregate by maximum in both modes.
    _PEAK_FIELDS = ("max_message_bits", "max_machine_load_bits")

    @classmethod
    def aggregate(
        cls, usages: Iterable["ResourceUsage"], mode: str = "max"
    ) -> "ResourceUsage":
        """Combine the usage records of several runs into one summary.

        Parameters
        ----------
        usages:
            The records to combine (an empty iterable yields an all-zero
            record).
        mode:
            ``"max"`` takes the point-wise maximum of every field (combining
            sub-phases of one run).  ``"sum"`` adds the additive currencies —
            passes, space, rounds, communication, machine counts — across
            independent runs (a batch total), while ``max_message_bits`` and
            ``max_machine_load_bits`` still aggregate by maximum because they
            are per-message / per-machine peaks.

        The ``per_round`` logs are not aggregated; the returned record has an
        empty log.
        """
        if mode not in ("max", "sum"):
            raise ValueError(f"mode must be 'max' or 'sum', got {mode!r}")
        usages = list(usages)
        merged = cls()
        if not usages:
            return merged
        for name in cls._ADDITIVE_FIELDS:
            values = [getattr(usage, name) for usage in usages]
            setattr(merged, name, sum(values) if mode == "sum" else max(values))
        for name in cls._PEAK_FIELDS:
            setattr(merged, name, max(getattr(usage, name) for usage in usages))
        return merged

    def merge_max(self, other: "ResourceUsage") -> None:
        """Point-wise maximum merge (used when combining sub-phases).

        Shim over :meth:`aggregate` with ``mode="max"``, kept for callers
        that update a record in place.
        """
        merged = ResourceUsage.aggregate([self, other], mode="max")
        for name in self._ADDITIVE_FIELDS + self._PEAK_FIELDS:
            setattr(self, name, getattr(merged, name))


@dataclass(frozen=True)
class CommunicationSummary:
    """The communication story of one run, in the fabric's four currencies.

    Derived from :class:`ResourceUsage` by ``SolveResult.communication`` —
    the single code path every model's trace goes through.  ``rounds`` is the
    model's synchronisation count (coordinator/MPC rounds, or stream passes);
    ``per_round`` is the topology ledger: one entry per round with the
    measured bits (and, where meaningful, the per-node load) of that round.
    """

    rounds: int
    total_bits: int
    max_message_bits: int
    max_load_bits: int
    per_round: tuple[Mapping[str, int], ...] = ()

    def summary(self) -> dict:
        """A flat dict convenient for printing communication tables."""
        return {
            "rounds": self.rounds,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "max_load_bits": self.max_load_bits,
        }


@dataclass
class SolveResult:
    """The outcome of one solver run.

    Attributes
    ----------
    value:
        ``f(S)``: the optimal value of the LP-type problem (problem-specific
        type; for LP it is a lexicographic value object, whose ``.objective``
        is the scalar optimum).
    witness:
        The optimal point.
    basis_indices:
        Indices of a basis of the full constraint set that certifies
        ``value``.
    iterations:
        Total number of meta-algorithm iterations executed.
    successful_iterations:
        Number of iterations that passed the success test.
    resources:
        Exact resource usage of the run.
    trace:
        Optional per-iteration trace (enabled with ``keep_trace=True``).
    metadata:
        Free-form run metadata (algorithm name, parameters, seeds, ...).
    """

    value: Any
    witness: Any
    basis_indices: tuple[int, ...]
    iterations: int = 0
    successful_iterations: int = 0
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    trace: list[IterationRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def communication(self) -> CommunicationSummary:
        """Per-run communication trace, uniform across every model.

        Streaming runs report their pass count as ``rounds`` (they move no
        bits); coordinator and MPC runs report the topology ledger verbatim.
        """
        res = self.resources
        return CommunicationSummary(
            rounds=res.rounds if res.rounds else res.passes,
            total_bits=res.total_communication_bits,
            max_message_bits=res.max_message_bits,
            max_load_bits=res.max_machine_load_bits,
            per_round=tuple(dict(entry) for entry in res.per_round),
        )

    def summary(self) -> dict:
        """A flat dict convenient for printing benchmark tables."""
        return {
            "value": getattr(self.value, "objective", self.value),
            "iterations": self.iterations,
            "successful_iterations": self.successful_iterations,
            "passes": self.resources.passes,
            "rounds": self.resources.rounds,
            "space_peak_items": self.resources.space_peak_items,
            "space_peak_bits": self.resources.space_peak_bits,
            "communication_bits": self.resources.total_communication_bits,
            "max_machine_load_bits": self.resources.max_machine_load_bits,
            "oracle_calls": self.resources.oracle_calls,
            "basis_cache_hits": self.resources.basis_cache_hits,
            "basis_cache_misses": self.resources.basis_cache_misses,
            **{f"meta_{k}": v for k, v in self.metadata.items()},
        }
