"""Result records returned by every solver driver in the library.

All drivers (sequential, streaming, coordinator, MPC, and the baselines)
return a :class:`SolveResult` so that examples, tests, and the benchmark
harness can treat them uniformly: the optimum itself plus the exact resource
costs the paper's theorems are about.
"""

from __future__ import annotations

import dataclasses
import importlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

import numpy as np

__all__ = [
    "CommunicationSummary",
    "IterationRecord",
    "ResourceUsage",
    "SolveResult",
    "WarmStats",
]


@dataclass(frozen=True)
class IterationRecord:
    """Trace of a single iteration of the meta-algorithm.

    Attributes
    ----------
    iteration:
        Zero-based iteration number.
    sample_size:
        Number of constraints in the eps-net sample of this iteration.
    num_violators:
        Number of constraints violating the basis computed in this iteration.
    violator_weight_fraction:
        ``w(V) / w(S)`` for this iteration (the success test compares it to
        eps).
    successful:
        Whether the iteration passed the success test and boosted weights.
    basis_indices:
        Indices of the basis computed in this iteration.
    """

    iteration: int
    sample_size: int
    num_violators: int
    violator_weight_fraction: float
    successful: bool
    basis_indices: tuple[int, ...] = ()


@dataclass
class ResourceUsage:
    """Resource costs of a run, in the currencies of the three models.

    Fields irrelevant to a particular model are left at zero (e.g. a
    streaming run has no communication).  All bit counts follow the
    :class:`repro.core.accounting.BitCostModel` used by the run.
    """

    passes: int = 0
    space_peak_items: int = 0
    space_peak_bits: int = 0
    rounds: int = 0
    total_communication_bits: int = 0
    max_message_bits: int = 0
    max_machine_load_bits: int = 0
    machine_count: int = 0
    oracle_calls: int = 0
    basis_cache_hits: int = 0
    basis_cache_misses: int = 0
    transport_retries: int = 0
    checkpoint_resumes: int = 0
    per_round: list[Mapping[str, int]] = field(default_factory=list)

    #: Fields that add up across independent runs (``mode="sum"``).
    _ADDITIVE_FIELDS = (
        "passes",
        "space_peak_items",
        "space_peak_bits",
        "rounds",
        "total_communication_bits",
        "machine_count",
        "oracle_calls",
        "basis_cache_hits",
        "basis_cache_misses",
        "transport_retries",
        "checkpoint_resumes",
    )
    #: Per-message / per-machine maxima: summing them is meaningless, so they
    #: aggregate by maximum in both modes.
    _PEAK_FIELDS = ("max_message_bits", "max_machine_load_bits")

    @classmethod
    def aggregate(
        cls, usages: Iterable["ResourceUsage"], mode: str = "max"
    ) -> "ResourceUsage":
        """Combine the usage records of several runs into one summary.

        Parameters
        ----------
        usages:
            The records to combine (an empty iterable yields an all-zero
            record).
        mode:
            ``"max"`` takes the point-wise maximum of every field (combining
            sub-phases of one run).  ``"sum"`` adds the additive currencies —
            passes, space, rounds, communication, machine counts — across
            independent runs (a batch total), while ``max_message_bits`` and
            ``max_machine_load_bits`` still aggregate by maximum because they
            are per-message / per-machine peaks.

        The ``per_round`` logs are not aggregated; the returned record has an
        empty log.
        """
        if mode not in ("max", "sum"):
            raise ValueError(f"mode must be 'max' or 'sum', got {mode!r}")
        usages = list(usages)
        merged = cls()
        if not usages:
            return merged
        for name in cls._ADDITIVE_FIELDS:
            values = [getattr(usage, name) for usage in usages]
            setattr(merged, name, sum(values) if mode == "sum" else max(values))
        for name in cls._PEAK_FIELDS:
            setattr(merged, name, max(getattr(usage, name) for usage in usages))
        return merged

    def merge_max(self, other: "ResourceUsage") -> None:
        """Point-wise maximum merge (used when combining sub-phases).

        Shim over :meth:`aggregate` with ``mode="max"``, kept for callers
        that update a record in place.
        """
        merged = ResourceUsage.aggregate([self, other], mode="max")
        for name in self._ADDITIVE_FIELDS + self._PEAK_FIELDS:
            setattr(self, name, getattr(merged, name))


@dataclass(frozen=True)
class CommunicationSummary:
    """The communication story of one run, in the fabric's four currencies.

    Derived from :class:`ResourceUsage` by ``SolveResult.communication`` —
    the single code path every model's trace goes through.  ``rounds`` is the
    model's synchronisation count (coordinator/MPC rounds, or stream passes);
    ``per_round`` is the topology ledger: one entry per round with the
    measured bits (and, where meaningful, the per-node load) of that round.
    """

    rounds: int
    total_bits: int
    max_message_bits: int
    max_load_bits: int
    per_round: tuple[Mapping[str, int], ...] = ()

    def summary(self) -> dict:
        """A flat dict convenient for printing communication tables."""
        return {
            "rounds": self.rounds,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "max_load_bits": self.max_load_bits,
        }


@dataclass
class WarmStats:
    """Warm-start bookkeeping of one session solve.

    Populated only by the session API (``repro.session``): a plain
    ``repro.solve()`` leaves ``SolveResult.warm`` at ``None``.  The
    determinism contract of warm re-solves — a warm solve certifies the
    same basis as a cold solve on the same instance — is pinned by the
    session test suite; these stats record how much prior state the warm
    solve actually reused.

    Attributes
    ----------
    warm_start:
        Whether the run started from carried weight state (``False`` for the
        session's first, cold solve — which still tracks state for later
        re-solves).
    fast_path:
        Whether the prior certified basis was re-certified with a single
        violation sweep, skipping the engine loop entirely.
    reused_bases:
        Number of prior successful-iteration bases whose witnesses seeded
        this run's weight state.
    new_bases:
        Successful iterations this run added to the carried state.
    witnesses:
        The carried-plus-new basis witnesses (session plumbing for the next
        warm re-solve; excluded from ``repr`` and serialisation).
    """

    warm_start: bool = False
    fast_path: bool = False
    reused_bases: int = 0
    new_bases: int = 0
    witnesses: list = field(default_factory=list, repr=False, compare=False)

    def to_dict(self) -> dict:
        """JSON-ready stats (the witness payloads themselves are dropped)."""
        return {
            "warm_start": bool(self.warm_start),
            "fast_path": bool(self.fast_path),
            "reused_bases": int(self.reused_bases),
            "new_bases": int(self.new_bases),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WarmStats":
        return cls(
            warm_start=bool(payload.get("warm_start", False)),
            fast_path=bool(payload.get("fast_path", False)),
            reused_bases=int(payload.get("reused_bases", 0)),
            new_bases=int(payload.get("new_bases", 0)),
        )


# ---------------------------------------------------------------------- #
# Tagged JSON encoding for result payloads (values, witnesses, metadata).
# Arrays, tuples, and the library's own frozen value/witness dataclasses
# (LexicographicValue, Ball, MEBValue, ...) round-trip; everything else must
# already be JSON-representable.
# ---------------------------------------------------------------------- #

_TRUSTED_MODULE_PREFIX = "repro."


def _encode_value(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_, np.integer)):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {
            "__kind__": "ndarray",
            "dtype": str(obj.dtype),
            "data": obj.tolist(),
        }
    if isinstance(obj, tuple):
        return {"__kind__": "tuple", "items": [_encode_value(v) for v in obj]}
    if isinstance(obj, list):
        return [_encode_value(v) for v in obj]
    if isinstance(obj, Mapping):
        return {str(k): _encode_value(v) for k, v in obj.items()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        if not cls.__module__.startswith(_TRUSTED_MODULE_PREFIX):
            raise TypeError(
                f"cannot serialise dataclass {cls.__qualname__} from untrusted "
                f"module {cls.__module__!r}"
            )
        return {
            "__kind__": "dataclass",
            "cls": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: _encode_value(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
                if f.init
            },
        }
    raise TypeError(
        f"cannot serialise {type(obj).__name__} value {obj!r} for SolveResult.to_dict"
    )


def _decode_value(obj: Any) -> Any:
    if isinstance(obj, list):
        return [_decode_value(v) for v in obj]
    if not isinstance(obj, Mapping):
        return obj
    kind = obj.get("__kind__")
    if kind == "ndarray":
        return np.asarray(obj["data"], dtype=np.dtype(obj["dtype"]))
    if kind == "tuple":
        return tuple(_decode_value(v) for v in obj["items"])
    if kind == "dataclass":
        module_name, _, qualname = obj["cls"].partition(":")
        if not module_name.startswith(_TRUSTED_MODULE_PREFIX):
            raise ValueError(
                f"refusing to decode dataclass from untrusted module {module_name!r}"
            )
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
        return target(**{k: _decode_value(v) for k, v in obj["fields"].items()})
    return {k: _decode_value(v) for k, v in obj.items()}


@dataclass
class SolveResult:
    """The outcome of one solver run.

    Attributes
    ----------
    value:
        ``f(S)``: the optimal value of the LP-type problem (problem-specific
        type; for LP it is a lexicographic value object, whose ``.objective``
        is the scalar optimum).
    witness:
        The optimal point.
    basis_indices:
        Indices of a basis of the full constraint set that certifies
        ``value``.
    iterations:
        Total number of meta-algorithm iterations executed.
    successful_iterations:
        Number of iterations that passed the success test.
    resources:
        Exact resource usage of the run.
    trace:
        Optional per-iteration trace (enabled with ``keep_trace=True``).
    metadata:
        Free-form run metadata (algorithm name, parameters, seeds, ...).
    warm:
        Warm-start reuse stats, populated only by the session API
        (``None`` for plain ``repro.solve()`` calls).
    """

    value: Any
    witness: Any
    basis_indices: tuple[int, ...]
    iterations: int = 0
    successful_iterations: int = 0
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    trace: list[IterationRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    warm: Optional[WarmStats] = None

    @property
    def communication(self) -> CommunicationSummary:
        """Per-run communication trace, uniform across every model.

        Streaming runs report their pass count as ``rounds`` (they move no
        bits); coordinator and MPC runs report the topology ledger verbatim.
        """
        res = self.resources
        return CommunicationSummary(
            rounds=res.rounds if res.rounds else res.passes,
            total_bits=res.total_communication_bits,
            max_message_bits=res.max_message_bits,
            max_load_bits=res.max_machine_load_bits,
            per_round=tuple(dict(entry) for entry in res.per_round),
        )

    def to_dict(self) -> dict:
        """A JSON-serialisable description of the full result.

        Everything needed to rebuild the result via :meth:`from_dict` —
        value, witness, basis, trace, resources (including the ``per_round``
        ledgers), metadata, and the warm-start stats — plus the derived
        ``communication`` summary for service consumers that only read the
        wire form.  Arrays and the library's frozen value/witness types
        (``LexicographicValue``, ``Ball``, ...) are encoded with explicit
        type tags; ``WarmStats.witnesses`` (session plumbing) is dropped.
        """
        return {
            "schema": "repro-result/1",
            "value": _encode_value(self.value),
            "witness": _encode_value(self.witness),
            "basis_indices": [int(i) for i in self.basis_indices],
            "iterations": int(self.iterations),
            "successful_iterations": int(self.successful_iterations),
            "resources": {
                **{
                    name: int(getattr(self.resources, name))
                    for name in ResourceUsage._ADDITIVE_FIELDS
                    + ResourceUsage._PEAK_FIELDS
                },
                "per_round": [
                    {str(k): int(v) for k, v in entry.items()}
                    for entry in self.resources.per_round
                ],
            },
            "communication": {
                **self.communication.summary(),
                "per_round": [
                    {str(k): int(v) for k, v in entry.items()}
                    for entry in self.communication.per_round
                ],
            },
            "trace": [
                {
                    "iteration": rec.iteration,
                    "sample_size": rec.sample_size,
                    "num_violators": rec.num_violators,
                    "violator_weight_fraction": rec.violator_weight_fraction,
                    "successful": rec.successful,
                    "basis_indices": [int(i) for i in rec.basis_indices],
                }
                for rec in self.trace
            ],
            "metadata": _encode_value(dict(self.metadata)),
            "warm": self.warm.to_dict() if self.warm is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveResult":
        """Rebuild a :class:`SolveResult` from :meth:`to_dict` output.

        The derived ``communication`` block is ignored (it is recomputed from
        the resources on access); unknown resource fields are ignored so
        newer writers stay readable by older readers.
        """
        raw_resources = dict(payload.get("resources", {}))
        per_round = [
            {str(k): int(v) for k, v in entry.items()}
            for entry in raw_resources.pop("per_round", [])
        ]
        known = set(
            ResourceUsage._ADDITIVE_FIELDS + ResourceUsage._PEAK_FIELDS
        )
        resources = ResourceUsage(
            **{k: int(v) for k, v in raw_resources.items() if k in known},
            per_round=per_round,
        )
        trace = [
            IterationRecord(
                iteration=int(rec["iteration"]),
                sample_size=int(rec["sample_size"]),
                num_violators=int(rec["num_violators"]),
                violator_weight_fraction=float(rec["violator_weight_fraction"]),
                successful=bool(rec["successful"]),
                basis_indices=tuple(int(i) for i in rec.get("basis_indices", ())),
            )
            for rec in payload.get("trace", [])
        ]
        warm_payload = payload.get("warm")
        return cls(
            value=_decode_value(payload.get("value")),
            witness=_decode_value(payload.get("witness")),
            basis_indices=tuple(int(i) for i in payload.get("basis_indices", ())),
            iterations=int(payload.get("iterations", 0)),
            successful_iterations=int(payload.get("successful_iterations", 0)),
            resources=resources,
            trace=trace,
            metadata=_decode_value(dict(payload.get("metadata", {}))),
            warm=WarmStats.from_dict(warm_payload) if warm_payload else None,
        )

    def summary(self) -> dict:
        """A flat dict convenient for printing benchmark tables."""
        return {
            "value": getattr(self.value, "objective", self.value),
            "iterations": self.iterations,
            "successful_iterations": self.successful_iterations,
            "passes": self.resources.passes,
            "rounds": self.resources.rounds,
            "space_peak_items": self.resources.space_peak_items,
            "space_peak_bits": self.resources.space_peak_bits,
            "communication_bits": self.resources.total_communication_bits,
            "max_machine_load_bits": self.resources.max_machine_load_bits,
            "oracle_calls": self.resources.oracle_calls,
            "basis_cache_hits": self.resources.basis_cache_hits,
            "basis_cache_misses": self.resources.basis_cache_misses,
            **{f"meta_{k}": v for k, v in self.metadata.items()},
        }
