"""Epsilon-net machinery (Section 2.2 of the paper).

The meta-algorithm (Algorithm 1) replaces Clarkson's original sampling step
with an eps-net of the weighted constraint family.  Lemma 2.2 (Haussler-Welzl)
states that, for a set system of VC dimension ``lam``, a random sample of

    m(eps, lam, delta) = max( (8*lam/eps) * log(8*lam/eps),
                              (4/eps)     * log(2/delta) )

sets drawn with probability proportional to their weights is an eps-net with
probability at least ``1 - delta``.  This module provides that bound together
with helpers for choosing the eps parameter used by Algorithm 1 and an
empirical eps-net verifier used by the test-suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "epsnet_sample_size",
    "algorithm_epsilon",
    "EpsNetSpec",
    "is_eps_net",
]


def epsnet_sample_size(epsilon: float, vc_dimension: float, failure_probability: float) -> int:
    """Return the Lemma 2.2 sample size ``m(eps, lambda, delta)``.

    Parameters
    ----------
    epsilon:
        The eps-net parameter, in ``(0, 1)``.
    vc_dimension:
        VC dimension ``lambda`` of the set system (must be >= 1).
    failure_probability:
        Allowed failure probability ``delta`` in ``(0, 1)``.

    Returns
    -------
    int
        The number of weighted samples required, rounded up to an integer.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if vc_dimension < 1:
        raise ValueError(f"vc_dimension must be >= 1, got {vc_dimension}")
    if not 0.0 < failure_probability < 1.0:
        raise ValueError(
            f"failure_probability must lie in (0, 1), got {failure_probability}"
        )
    first = (8.0 * vc_dimension / epsilon) * math.log(8.0 * vc_dimension / epsilon)
    second = (4.0 / epsilon) * math.log(2.0 / failure_probability)
    return int(math.ceil(max(first, second)))


def algorithm_epsilon(num_constraints: int, combinatorial_dimension: int, r: int) -> float:
    """Return Algorithm 1's eps parameter ``1 / (10 * nu * n^{1/r})``.

    Parameters
    ----------
    num_constraints:
        ``n``, the total number of constraints of the LP-type problem.
    combinatorial_dimension:
        ``nu``, the combinatorial dimension of the problem.
    r:
        The pass/round trade-off parameter (``r >= 1``).
    """
    if num_constraints < 1:
        raise ValueError(f"num_constraints must be >= 1, got {num_constraints}")
    if combinatorial_dimension < 1:
        raise ValueError(
            f"combinatorial_dimension must be >= 1, got {combinatorial_dimension}"
        )
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    return 1.0 / (10.0 * combinatorial_dimension * num_constraints ** (1.0 / r))


@dataclass(frozen=True)
class EpsNetSpec:
    """All parameters of one eps-net sampling step of Algorithm 1.

    Attributes
    ----------
    epsilon:
        The eps-net parameter (``1 / (10 nu n^{1/r})`` by default).
    vc_dimension:
        VC dimension of the underlying set system.
    failure_probability:
        Per-iteration failure probability (2/3-success per Lemma 2.2 in the
        Las-Vegas variant; ``1/(n nu)`` in the Monte-Carlo variant).
    sample_scale:
        Multiplier applied to the theoretical sample size.  The theoretical
        constants (8 lambda / eps log ...) are loose; benchmarks may lower
        this to explore the practical trade-off.  ``1.0`` reproduces the
        paper's bound exactly.
    max_sample_size:
        Hard cap, typically ``n``; sampling more than the ground set is
        pointless.
    """

    epsilon: float
    vc_dimension: float
    failure_probability: float = 1.0 / 3.0
    sample_scale: float = 1.0
    max_sample_size: int | None = None

    def sample_size(self) -> int:
        """Sample size for this spec (scaled, capped, and at least 1)."""
        m = epsnet_sample_size(self.epsilon, self.vc_dimension, self.failure_probability)
        m = int(math.ceil(m * self.sample_scale))
        if self.max_sample_size is not None:
            m = min(m, self.max_sample_size)
        return max(1, m)

    @classmethod
    def for_algorithm(
        cls,
        num_constraints: int,
        combinatorial_dimension: int,
        vc_dimension: float,
        r: int,
        failure_probability: float = 1.0 / 3.0,
        sample_scale: float = 1.0,
    ) -> "EpsNetSpec":
        """Build the spec Algorithm 1 uses for an (n, nu, lambda, r) problem."""
        eps = algorithm_epsilon(num_constraints, combinatorial_dimension, r)
        return cls(
            epsilon=eps,
            vc_dimension=vc_dimension,
            failure_probability=failure_probability,
            sample_scale=sample_scale,
            max_sample_size=num_constraints,
        )


def is_eps_net(
    sample_indices: Sequence[int],
    weights: Sequence[float],
    epsilon: float,
    excludes: Callable[[int], bool] | Iterable[int],
) -> bool:
    """Empirically verify the eps-net property for one "witness point".

    A family ``N`` is an eps-net if for every point ``u`` whose excluding
    constraints carry at least an ``epsilon`` fraction of the total weight,
    ``N`` contains at least one constraint excluding ``u``.  This function
    checks the property for a single point ``u``, described by ``excludes``:
    either a predicate over constraint indices (``True`` means the constraint
    does *not* contain ``u``) or an iterable of excluding indices.

    This is a testing utility (used by the property-based tests); the solver
    itself never needs to verify the property explicitly.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    weights = list(weights)
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("total weight must be positive")

    if callable(excludes):
        excluded = {i for i in range(len(weights)) if excludes(i)}
    else:
        excluded = set(int(i) for i in excludes)

    excluded_weight = sum(weights[i] for i in excluded)
    if excluded_weight < epsilon * total:
        # The point is not "heavy"; the eps-net property imposes nothing.
        return True
    return any(int(i) in excluded for i in sample_indices)
