"""The model-agnostic Clarkson iteration engine (Algorithm 1).

The paper's central observation is that ONE meta-algorithm — Clarkson-style
iterative reweighting with an ``n^{1/r}`` boost — instantiates in the
sequential, multi-pass streaming, coordinator, and MPC models; only the
*substrate* (how a weighted sample is drawn and how constraint weights are
represented) changes between models.  This module owns that shared loop::

    repeat:
        sample  <- draw ~n^{1/r} constraints proportionally to their weights
        basis   <- solve the LP-type problem on the sample
        V       <- constraints violating the basis witness
        if V is empty:            terminate with the basis
        if w(V) <= eps * w(S):    multiply the weights of V by n^{1/r}

and delegates everything model-specific to three narrow strategy interfaces:

* :class:`SamplingStrategy` — how one weighted eps-net sample is obtained
  (in-memory weighted draw, a reservoir pass over a stream, a multinomial
  split across coordinator sites, or MPC tree rounds);
* :class:`WeightSubstrate` — how the weights live (an explicit vector, or
  implicitly as the stored bases of successful iterations) and how the
  success test ``w(V)/w(S) <= eps`` is measured;
* :class:`ViolationOracle` — vectorised violation tests against one
  problem, so no strategy ever calls ``problem.violates`` in a Python loop.

The four drivers (``repro.core.clarkson`` and ``repro.algorithms.*``) are
thin bindings of model substrates onto this engine; their pass/round/
communication accounting happens inside their strategy objects, so the
engine itself never needs to know which model it is running in.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from .budget import active_checkpoint, active_meter, active_tap
from .exceptions import InvalidConfigError, IterationLimitError
from .lptype import BasisResult, LPTypeProblem
from .result import IterationRecord
from .sampling import gumbel_top_k
from .weights import ExplicitWeights

__all__ = [
    "ViolationOracle",
    "ViolationStats",
    "SamplingStrategy",
    "WeightSubstrate",
    "BasisCache",
    "EngineConfig",
    "EngineOutcome",
    "ClarksonEngine",
    "InMemorySampling",
    "ExplicitWeightSubstrate",
    "iteration_budget",
]


def iteration_budget(problem: LPTypeProblem, r: int, max_iterations: Optional[int]) -> int:
    """Iteration budget shared by all four drivers.

    An explicit ``max_iterations`` wins; ``None`` falls back to a generous
    version of the ``O(nu * r)`` bound of Lemma 3.3.  Non-positive values are
    rejected loudly (historically they fell through to the default via
    truthiness, silently ignoring the caller's budget).
    """
    if max_iterations is None:
        return 40 * problem.combinatorial_dimension * r + 40
    if int(max_iterations) < 1:
        raise InvalidConfigError(
            f"max_iterations must be >= 1 or None (got {max_iterations!r})"
        )
    return int(max_iterations)


class ViolationOracle:
    """Vectorised violation tests against one LP-type problem.

    A thin adapter over the batch methods of :class:`LPTypeProblem` so that
    strategies and drivers have a single place to ask "which of these
    constraints violate this witness?" and "how many of these witnesses does
    each constraint violate?" without scalar ``violates`` loops.  The oracle
    counts its calls (and the constraints they touched) so drivers can report
    them in :class:`~repro.core.result.ResourceUsage.oracle_calls`.
    """

    def __init__(self, problem: LPTypeProblem) -> None:
        self.problem = problem
        self.calls = 0
        self.constraints_tested = 0

    def _count(self, indices) -> None:
        self.calls += 1
        self.constraints_tested += int(len(indices))

    def record_external(self, calls: int, constraints: int) -> None:
        """Fold in violation tests that ran outside this oracle object.

        The fabric drivers evaluate masks *inside* node tasks (possibly in
        another process), where this oracle is unreachable; the driver
        reports those evaluations here so ``ResourceUsage.oracle_calls``
        stays comparable across models and transports.
        """
        self.calls += int(calls)
        self.constraints_tested += int(constraints)

    def mask(self, witness: Any, indices: np.ndarray) -> np.ndarray:
        """Boolean mask over ``indices``: which constraints violate ``witness``."""
        self._count(indices)
        return self.problem.violation_mask(witness, indices)

    def sweep(
        self,
        witness: Any,
        indices: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        need_total: bool = True,
        log_weights: Optional[np.ndarray] = None,
        log_shift: float = 0.0,
    ):
        """One fused violation sweep (mask + count + weight sums) over ``indices``.

        ``indices=None`` sweeps the full constraint set.  Counts as one
        oracle call touching every swept constraint, exactly like
        :meth:`violating` did on the same index set.
        """
        self.calls += 1
        self.constraints_tested += (
            self.problem.num_constraints if indices is None else int(len(indices))
        )
        return self.problem.violation_sweep(
            witness,
            indices,
            weights=weights,
            need_total=need_total,
            log_weights=log_weights,
            log_shift=log_shift,
        )

    def violating(self, witness: Any, indices: np.ndarray) -> np.ndarray:
        """Violating indices among ``indices`` (ascending)."""
        self._count(indices)
        return self.problem.violating_indices(witness, indices)

    def count_matrix(self, witnesses: Sequence[Any], indices: np.ndarray) -> np.ndarray:
        """Per-constraint count of violated witnesses (implicit-weight exponents)."""
        self._count(indices)
        return self.problem.violation_count_matrix(witnesses, indices)


class BasisCache:
    """Memo of ``solve_subset`` results keyed by the sorted index tuple.

    Clarkson re-solves heavily overlapping index sets: the terminal
    iterations of a run tend to rediscover the optimal basis, repeated runs
    re-solve the same samples, and every solved sample also certifies its own
    basis (``f(B) = f(A)`` for a basis ``B`` of ``A``), which is entered as a
    second key.  The cache is owned by one :class:`ClarksonEngine` — never
    shared across runs — so cached entries can only be observed by the run
    that computed them and repeated solves stay bit-identical.

    Index tuples are digested to 128-bit BLAKE2 fingerprints before storage,
    so an entry costs the fingerprint plus the (small) :class:`BasisResult`
    — the eps-net sample tuples themselves are never retained.  Like the
    streaming driver's chunk buffers, the cache is *simulator-side* scratch:
    it memoises the host's basis computations and is deliberately excluded
    from the modelled space/load accounting of the paper's theorems (see
    ``EXPERIMENTS.md`` on simulator scratch vs. modelled footprint).

    Eviction is insertion-ordered (FIFO) with a small fixed capacity; hits
    and misses are surfaced through
    :class:`~repro.core.result.ResourceUsage.basis_cache_hits` / ``_misses``.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self._entries: dict[bytes, BasisResult] = {}

    @staticmethod
    def _digest(key) -> bytes:
        """Digest a sorted index collection (tuple or int ndarray)."""
        payload = np.asarray(key, dtype=np.int64).tobytes()
        return hashlib.blake2b(payload, digest_size=16).digest()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key) -> BasisResult | None:
        entry = self._entries.get(self._digest(key))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key, basis: BasisResult) -> None:
        digest = self._digest(key)
        if digest not in self._entries and len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[digest] = basis

    def record(self, key, basis: BasisResult) -> None:
        """Store a solved sample and seed the entry for its own basis."""
        self.put(key, basis)
        basis_key = tuple(sorted(int(i) for i in basis.indices))
        if basis_key and (
            len(basis_key) != len(key) or self._digest(basis_key) != self._digest(key)
        ):
            self.put(
                basis_key,
                BasisResult(
                    indices=basis.indices,
                    value=basis.value,
                    witness=basis.witness,
                    subset_size=len(basis.indices),
                ),
            )


@dataclass(frozen=True)
class ViolationStats:
    """Outcome of the per-iteration violation measurement (success test input).

    ``context`` is an opaque, model-specific payload carried from
    :meth:`WeightSubstrate.measure` to :meth:`WeightSubstrate.boost` (e.g.
    the violator index array for explicit weights, or the per-site violator
    positions in the coordinator model).
    """

    num_violators: int
    weight_fraction: float
    context: Any = None


class SamplingStrategy(abc.ABC):
    """Draws one weighted eps-net sample per iteration.

    Implementations perform whatever model bookkeeping the draw costs (a
    streaming pass, two coordinator rounds, MPC tree rounds, ...) as a side
    effect; the engine only sees the resulting index array.
    """

    @abc.abstractmethod
    def draw(self, sample_size: int) -> np.ndarray:
        """Return distinct constraint indices sampled proportionally to weight."""


class WeightSubstrate(abc.ABC):
    """Represents the constraint weights and the Algorithm 1 success test."""

    @abc.abstractmethod
    def measure(self, sample: np.ndarray, basis: BasisResult) -> ViolationStats:
        """Measure the violators of ``basis`` and their weight fraction.

        Implementations account the model cost of the measurement (the
        verification pass / violation round / aggregation trees) and may
        stash model-specific state in :attr:`ViolationStats.context`.
        """

    @abc.abstractmethod
    def boost(self, stats: ViolationStats) -> None:
        """Apply the ``n^{1/r}`` boost to the violators of a successful iteration."""


@dataclass(frozen=True)
class EngineConfig:
    """Resolved per-run parameters of the engine loop.

    ``sample_size`` and ``epsilon`` come from
    :func:`repro.core.clarkson.resolve_sampling`, ``budget`` from
    :func:`iteration_budget`; the drivers resolve them once so that all four
    models agree on the sampling regime.
    """

    sample_size: int
    epsilon: float
    budget: int
    keep_trace: bool = True
    name: str = "clarkson"
    basis_cache: bool = True
    basis_cache_capacity: int = 256


@dataclass
class EngineOutcome:
    """What the engine loop produced: the final basis plus the iteration story."""

    basis: BasisResult
    iterations: int
    successful_iterations: int
    trace: list[IterationRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Witnesses of the bases of successful iterations, in order.  This is
    #: the run's weight state in its model-independent form (Section 3.2:
    #: the weight of a constraint is ``boost ** #violated-stored-bases``);
    #: the session API carries it between solves to warm-start re-solves.
    successful_witnesses: list[Any] = field(default_factory=list)


class ClarksonEngine:
    """Owns the Algorithm 1 loop; model behaviour is injected via strategies.

    The engine guarantees identical iteration semantics across models: the
    same success test, the same trace records, the same termination rule
    (empty violator set) and the same budget handling.  Resource accounting
    is entirely the strategies' business.
    """

    def __init__(
        self,
        problem: LPTypeProblem,
        sampler: SamplingStrategy,
        substrate: WeightSubstrate,
        config: EngineConfig,
    ) -> None:
        self.problem = problem
        self.sampler = sampler
        self.substrate = substrate
        self.config = config
        # The basis-solve cache is strictly per-engine (= per-run) state:
        # sharing it across runs would leak one run's numerics into another.
        self.basis_cache = (
            BasisCache(config.basis_cache_capacity) if config.basis_cache else None
        )

    def _solve_sample(self, sample: np.ndarray) -> BasisResult:
        """Solve the sampled subset, going through the basis cache if enabled."""
        cache = self.basis_cache
        if cache is None:
            return self.problem.solve_subset(sample)
        # The digest works on the raw int64 array — building a Python tuple
        # of a 10^4-element sample costs more than the subset solve's setup.
        key = np.sort(np.asarray(sample, dtype=np.int64))
        basis = cache.get(key)
        if basis is None:
            basis = self.problem.solve_subset(sample)
            cache.record(key, basis)
        return basis

    def run(self) -> EngineOutcome:
        config = self.config
        trace: list[IterationRecord] = []
        successful = 0
        successful_witnesses: list[Any] = []
        final_basis: BasisResult | None = None
        iterations = 0
        # Per-request budget (if any): charged once per iteration so a
        # budgeted request aborts at an iteration boundary.  Unbudgeted
        # solves see a single ``None`` check per iteration.  The progress
        # tap (if any) is the service front end's SSE feed.
        meter = active_meter()
        tap = active_tap()
        # Checkpoint store (if any): snapshotted after each successful
        # iteration so a transport failure can resume from the accumulated
        # witnesses instead of restarting the solve.
        store = active_checkpoint()

        for iteration in range(config.budget):
            if meter is not None:
                meter.charge_iteration()
            sample = self.sampler.draw(config.sample_size)
            basis = self._solve_sample(sample)
            stats = self.substrate.measure(sample, basis)
            success = stats.weight_fraction <= config.epsilon
            if tap is not None:
                tap.emit(
                    "iteration",
                    iteration=iteration,
                    sample_size=int(len(sample)),
                    num_violators=int(stats.num_violators),
                    violator_weight_fraction=float(stats.weight_fraction),
                    successful=bool(success),
                )
            if config.keep_trace:
                trace.append(
                    IterationRecord(
                        iteration=iteration,
                        sample_size=int(len(sample)),
                        num_violators=int(stats.num_violators),
                        violator_weight_fraction=float(stats.weight_fraction),
                        successful=success,
                        basis_indices=basis.indices,
                    )
                )
            if stats.num_violators == 0:
                final_basis = basis
                iterations = iteration + 1
                break
            if success:
                self.substrate.boost(stats)
                successful += 1
                successful_witnesses.append(basis.witness)
                if store is not None:
                    store.record(iteration, successful_witnesses)
        else:
            raise IterationLimitError(
                f"{config.name} did not terminate within {config.budget} iterations "
                f"(n={self.problem.num_constraints}); this is astronomically "
                "unlikely for a correct problem implementation"
            )

        assert final_basis is not None
        return EngineOutcome(
            basis=final_basis,
            iterations=iterations,
            successful_iterations=successful,
            trace=trace,
            cache_hits=self.basis_cache.hits if self.basis_cache else 0,
            cache_misses=self.basis_cache.misses if self.basis_cache else 0,
            successful_witnesses=successful_witnesses,
        )


# ---------------------------------------------------------------------- #
# The in-memory (sequential) binding, used by ``repro.core.clarkson`` and
# as the reference implementation of the strategy interfaces.
# ---------------------------------------------------------------------- #


class InMemorySampling(SamplingStrategy):
    """Weighted draw without replacement from an explicit weight vector.

    Draws Gumbel top-k keys directly from the log-space weight vector, so no
    ``O(n)`` exponentiated copy of the weights is materialised per draw.
    """

    def __init__(self, weights: ExplicitWeights, rng: np.random.Generator) -> None:
        self.weights = weights
        self.rng = rng

    def draw(self, sample_size: int) -> np.ndarray:
        return gumbel_top_k(self.weights.log_weights, sample_size, rng=self.rng)


class ExplicitWeightSubstrate(WeightSubstrate):
    """Explicit weight vector over all constraints (the sequential substrate).

    Also tracks the peak number of constraints materialised at once (the
    sample plus the stored bases), which is what Theorem 1 bounds for the
    sequential reference implementation.
    """

    def __init__(
        self,
        problem: LPTypeProblem,
        weights: ExplicitWeights,
        oracle: ViolationOracle | None = None,
    ) -> None:
        self.problem = problem
        self.weights = weights
        self.oracle = oracle or ViolationOracle(problem)
        self._all_indices = problem.all_indices()
        self._boosts = 0
        self.peak_items = 0

    def measure(self, sample: np.ndarray, basis: BasisResult) -> ViolationStats:
        # One fused sweep replaces the historical mask -> sort-indices ->
        # gather-weights -> sum sequence.  Weights go in as logs plus the
        # max shift: blocked backends exponentiate cache-resident blocks
        # inside the sweep, so no full scaled vector is ever materialised
        # on the per-iteration path; the violated/total ratio equals
        # ``weights.fraction`` of the violator set.
        log_weights = self.weights.log_weights
        stats = self.oracle.sweep(
            basis.witness,
            None,
            need_total=True,
            log_weights=log_weights,
            log_shift=float(log_weights.max()),
        )
        self.peak_items = max(
            self.peak_items,
            len(sample) + (self._boosts + 1) * self.problem.combinatorial_dimension,
        )
        fraction = (
            stats.violated_weight / stats.total_weight if stats.count else 0.0
        )
        return ViolationStats(
            num_violators=int(stats.count),
            weight_fraction=float(fraction),
            context=stats.mask,
        )

    def boost(self, stats: ViolationStats) -> None:
        # ``context`` is the violation mask; materialise indices only on the
        # (success) iterations that actually boost.
        self.weights.multiply(np.flatnonzero(stats.context))
        self._boosts += 1
