"""Per-request resource budgets for the session/service front end.

A :class:`ResourceBudget` declares hard limits on one solve — wall time,
meta-algorithm iterations, measured communication bits — and a
:class:`BudgetMeter` enforces them cooperatively: the
:class:`~repro.core.engine.ClarksonEngine` charges one iteration per loop
pass and the fabric topologies charge every measured message, so a budgeted
request aborts at the next iteration or message boundary with a
:class:`~repro.core.exceptions.BudgetExceededError` carrying the partial
:class:`~repro.core.result.ResourceUsage`.  Enforcement is cooperative at
exactly those boundaries: a solve that never enters the engine loop and
moves no messages (a tiny instance handled by the direct-solve path, or a
session fast-path re-certification) runs to completion even if its wall
budget expires mid-way.

The active meter travels in a :mod:`contextvars` context variable rather
than through the driver signatures: budgets are a *service-level* concern
and the drivers stay oblivious (an unbudgeted solve never even looks at the
clock).  :func:`metered` installs a meter for the duration of one solve;
:func:`active_meter` is what the engine and topologies consult.

The same pattern carries **progress taps**: a :class:`ProgressTap` installed
with :func:`tapping` receives one event per engine iteration (emitted by the
engine loop) and one per communication round (emitted by the topology
ledger), which is how the HTTP front end streams per-round progress over SSE
without the drivers knowing a network exists.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from .exceptions import BudgetExceededError, InvalidConfigError
from .result import ResourceUsage

__all__ = [
    "ResourceBudget",
    "BudgetMeter",
    "ProgressTap",
    "Checkpoint",
    "CheckpointStore",
    "active_checkpoint",
    "active_meter",
    "active_tap",
    "checkpointing",
    "metered",
    "tapping",
]


@dataclass(frozen=True)
class ResourceBudget:
    """Hard per-request limits; ``None`` disables a currency.

    Attributes
    ----------
    wall_time_s:
        Wall-clock limit in seconds, measured from the meter's start (the
        service anchors it at execution start; a request *deadline* is the
        same mechanism anchored at submission).
    iterations:
        Maximum meta-algorithm iterations across the request.
    communication_bits:
        Maximum measured communication bits across the request.
    """

    wall_time_s: Optional[float] = None
    iterations: Optional[int] = None
    communication_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wall_time_s is not None and self.wall_time_s <= 0:
            raise InvalidConfigError(
                f"ResourceBudget.wall_time_s must be > 0 (got {self.wall_time_s!r})"
            )
        if self.iterations is not None and self.iterations < 1:
            raise InvalidConfigError(
                f"ResourceBudget.iterations must be >= 1 (got {self.iterations!r})"
            )
        if self.communication_bits is not None and self.communication_bits < 1:
            raise InvalidConfigError(
                "ResourceBudget.communication_bits must be >= 1 "
                f"(got {self.communication_bits!r})"
            )

    @property
    def unlimited(self) -> bool:
        return (
            self.wall_time_s is None
            and self.iterations is None
            and self.communication_bits is None
        )


class BudgetMeter:
    """Running totals of one budgeted request, with trip-wire checks.

    ``started_at`` (a :func:`time.monotonic` stamp) defaults to "now"; the
    service passes the submission stamp when enforcing a queue-inclusive
    deadline.
    """

    def __init__(
        self, budget: ResourceBudget, started_at: Optional[float] = None
    ) -> None:
        self.budget = budget
        self.started_at = time.monotonic() if started_at is None else float(started_at)
        self.iterations = 0
        self.communication_bits = 0

    def elapsed_s(self) -> float:
        return time.monotonic() - self.started_at

    def usage(self) -> ResourceUsage:
        """Partial usage in the currencies the meter tracks."""
        return ResourceUsage(
            total_communication_bits=self.communication_bits,
        )

    def _trip(self, reason: str, detail: str) -> None:
        raise BudgetExceededError(
            f"resource budget exceeded: {detail} "
            f"(after {self.elapsed_s():.3f}s, {self.iterations} iterations, "
            f"{self.communication_bits} communication bits)",
            reason=reason,
            elapsed_s=self.elapsed_s(),
            iterations=self.iterations,
            communication_bits=self.communication_bits,
            usage=self.usage(),
        )

    def check_wall_time(self) -> None:
        limit = self.budget.wall_time_s
        if limit is not None and self.elapsed_s() > limit:
            self._trip("wall_time", f"wall time limit of {limit:g}s")

    def charge_iteration(self) -> None:
        """One engine-loop iteration is about to run: check, then count it."""
        self.check_wall_time()
        limit = self.budget.iterations
        if limit is not None and self.iterations >= limit:
            self._trip("iterations", f"iteration limit of {limit}")
        self.iterations += 1

    def charge_bits(self, bits: int) -> None:
        """One measured message moved ``bits`` bits: count, then check."""
        self.communication_bits += int(bits)
        limit = self.budget.communication_bits
        if limit is not None and self.communication_bits > limit:
            self._trip(
                "communication_bits", f"communication limit of {limit} bits"
            )
        self.check_wall_time()


_ACTIVE_METER: ContextVar[Optional[BudgetMeter]] = ContextVar(
    "repro_budget_meter", default=None
)


def active_meter() -> Optional[BudgetMeter]:
    """The meter of the enclosing budgeted request, if any."""
    return _ACTIVE_METER.get()


@contextmanager
def metered(
    budget: Optional[ResourceBudget], started_at: Optional[float] = None
) -> Iterator[Optional[BudgetMeter]]:
    """Install a budget meter for the duration of one solve.

    ``None`` (or an all-``None`` budget) installs nothing, keeping the
    unbudgeted hot path free of clock reads.  Meters do not nest: an inner
    ``metered`` replaces the outer one for its extent (the service is the
    only installer in practice, one meter per request).
    """
    if budget is None or budget.unlimited:
        yield None
        return
    meter = BudgetMeter(budget, started_at=started_at)
    token = _ACTIVE_METER.set(meter)
    try:
        yield meter
    finally:
        _ACTIVE_METER.reset(token)


class ProgressTap:
    """Receives per-iteration / per-round progress events of one solve.

    A tap wraps one callback; the engine loop emits an ``"iteration"`` event
    per meta-algorithm iteration and the topology ledger emits a ``"round"``
    event per recorded communication round (stream passes included).  Every
    event is a flat dict with an ``"event"`` key plus the emitter's fields,
    delivered synchronously in the solving thread — callbacks must be cheap
    and thread-safe (the service front end appends to a per-ticket queue).
    """

    __slots__ = ("_callback",)

    def __init__(self, callback: Callable[[dict], Any]) -> None:
        self._callback = callback

    def emit(self, event: str, **fields: Any) -> None:
        self._callback({"event": event, **fields})


_ACTIVE_TAP: ContextVar[Optional[ProgressTap]] = ContextVar(
    "repro_progress_tap", default=None
)


def active_tap() -> Optional[ProgressTap]:
    """The progress tap of the enclosing solve, if any."""
    return _ACTIVE_TAP.get()


@contextmanager
def tapping(tap: Optional[ProgressTap]) -> Iterator[Optional[ProgressTap]]:
    """Install a progress tap for the duration of one solve.

    ``None`` installs nothing (the untapped hot path stays a single ``None``
    check per iteration).  Like budget meters, taps do not nest: an inner
    ``tapping`` replaces the outer one for its extent.
    """
    if tap is None:
        yield None
        return
    token = _ACTIVE_TAP.set(tap)
    try:
        yield tap
    finally:
        _ACTIVE_TAP.reset(token)


@dataclass(frozen=True)
class Checkpoint:
    """One recoverable snapshot of an in-flight solve.

    The engine's entire recoverable state after a successful iteration is
    the list of certified basis witnesses accumulated so far — the same
    Section-3.2 representation the warm-start path consumes — because the
    warm==cold determinism contract guarantees that re-solving on the union
    of those witnesses certifies the same basis as finishing the original
    run.  ``iteration`` records how far the solve had progressed when the
    snapshot was taken (for accounting; the resume itself is witness-driven).
    """

    iteration: int
    witnesses: tuple


class CheckpointStore:
    """Collects engine checkpoints during one solve.

    Installed with :func:`checkpointing` (the same contextvar pattern as
    budget meters and progress taps), consulted by the engine loop after
    every *successful* iteration: every ``interval``-th accumulated witness
    snapshots the full witness list.  The store is in-memory and per-ticket;
    the service's retry path reads :meth:`latest` to resume a solve whose
    transport failed mid-run instead of restarting from scratch.
    """

    def __init__(self, interval: int = 1) -> None:
        if int(interval) < 1:
            raise InvalidConfigError(
                f"CheckpointStore.interval must be >= 1, got {interval!r}"
            )
        self.interval = int(interval)
        self.snapshots = 0
        self._latest: Optional[Checkpoint] = None

    def record(self, iteration: int, witnesses: Any) -> None:
        """Snapshot the witness list if it hit an interval boundary."""
        count = len(witnesses)
        if count == 0 or count % self.interval != 0:
            return
        self._latest = Checkpoint(iteration=int(iteration), witnesses=tuple(witnesses))
        self.snapshots += 1

    def latest(self) -> Optional[Checkpoint]:
        """The most recent snapshot, or ``None`` if nothing was recorded."""
        return self._latest


_ACTIVE_CHECKPOINT: ContextVar[Optional[CheckpointStore]] = ContextVar(
    "repro_checkpoint_store", default=None
)


def active_checkpoint() -> Optional[CheckpointStore]:
    """The checkpoint store of the enclosing solve, if any."""
    return _ACTIVE_CHECKPOINT.get()


@contextmanager
def checkpointing(store: Optional[CheckpointStore]) -> Iterator[Optional[CheckpointStore]]:
    """Install a checkpoint store for the duration of one solve.

    ``None`` installs nothing (the unsupervised hot path stays a single
    ``None`` check per successful iteration).  Like meters and taps, stores
    do not nest: an inner ``checkpointing`` replaces the outer one.
    """
    if store is None:
        yield None
        return
    token = _ACTIVE_CHECKPOINT.set(store)
    try:
        yield store
    finally:
        _ACTIVE_CHECKPOINT.reset(token)
