"""Multi-pass streaming implementation of the meta-algorithm (Theorem 1).

The streaming driver cannot store per-constraint weights.  Following
Section 3.2 of the paper, it instead stores the bases of all *successful*
iterations; the weight of a constraint during pass ``t`` is
``boost ** a_i`` where ``a_i`` is the number of stored bases the constraint
violates.  With those implicit weights, each iteration of Algorithm 1 is
implemented with

* one **sampling pass** that feeds every constraint (with its on-the-fly
  weight) into a weighted reservoir of size ``m`` (the eps-net size), and
* one **verification pass** that, given the basis computed from the sample,
  measures the weight fraction of the violating constraints (the success
  test of Algorithm 1) and detects termination.

This costs two passes per iteration — a factor-2 over the idealised
one-pass-per-iteration accounting in the paper, recorded as such in
EXPERIMENTS.md — for a total of ``O(nu * r)`` passes.  The peak memory is the
reservoir plus the stored bases: ``O~(lambda * nu * n^{1/r} + nu^2 * r)``
constraints, matching Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..core.clarkson import ClarksonParameters, resolve_sampling, solve_small_problem
from ..core.exceptions import IterationLimitError
from ..core.lptype import BasisResult, LPTypeProblem
from ..core.result import IterationRecord, ResourceUsage, SolveResult
from ..core.rng import SeedLike, as_generator
from ..core.sampling import ExponentialKeyReservoir
from ..core.weights import boost_factor
from ..models.streaming import MultiPassStream, StreamingMemory

__all__ = ["streaming_clarkson_solve"]


@dataclass
class _StoredBasis:
    """A basis retained from a successful iteration (indices + witness)."""

    indices: tuple[int, ...]
    witness: object


def _implicit_log_weight(
    problem: LPTypeProblem, bases: list[_StoredBasis], index: int, log_boost: float
) -> tuple[int, float]:
    """Exponent and (relative) log-weight of a constraint under stored bases."""
    exponent = sum(1 for basis in bases if problem.violates(basis.witness, index))
    return exponent, exponent * log_boost


def streaming_clarkson_solve(
    problem: LPTypeProblem,
    r: int = 2,
    order: Sequence[int] | np.ndarray | None = None,
    params: ClarksonParameters | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve an LP-type problem in the multi-pass streaming model.

    Parameters
    ----------
    problem:
        The LP-type problem; the driver only accesses constraints by the
        indices the stream yields.
    r:
        Pass/space trade-off parameter of Theorem 1.
    order:
        Optional arrival order of the constraints (default: natural order).
    params:
        Optional meta-algorithm parameters; ``params.r`` is overridden by
        ``r``.
    rng:
        Randomness for the reservoir sampling.

    Returns
    -------
    SolveResult
        ``resources.passes`` and ``resources.space_peak_items`` /
        ``space_peak_bits`` carry the streaming costs of the run.
    """
    base_params = params or ClarksonParameters()
    params = replace(base_params, r=r)
    gen = as_generator(rng)
    n = problem.num_constraints
    nu = problem.combinatorial_dimension
    stream = MultiPassStream(n, order=order)
    memory = StreamingMemory()
    bit_size = problem.bit_size()

    sample_size, epsilon = resolve_sampling(problem, params)
    if sample_size >= n:
        # The sample would contain the whole stream: one pass, full storage.
        for _ in stream.scan():
            pass
        result = solve_small_problem(problem)
        result.resources.passes = stream.passes
        result.resources.space_peak_items = n
        result.resources.space_peak_bits = n * bit_size
        result.metadata.update({"algorithm": "streaming_clarkson", "r": params.r})
        return result

    boost = params.boost if params.boost is not None else boost_factor(n, params.r)
    log_boost = float(np.log(boost))
    budget = params.max_iterations or (40 * nu * params.r + 40)

    stored_bases: list[_StoredBasis] = []
    trace: list[IterationRecord] = []
    successful = 0
    final_basis: BasisResult | None = None

    for iteration in range(budget):
        # ---------------- sampling pass ---------------- #
        reservoir = ExponentialKeyReservoir.create(sample_size, gen)
        max_exponent = len(stored_bases)
        for index in stream.scan():
            exponent, _ = _implicit_log_weight(problem, stored_bases, index, log_boost)
            # Relative weights (divided by boost ** max_exponent) avoid overflow.
            weight = float(boost ** (exponent - max_exponent))
            reservoir.offer(index, weight)
        # Peak footprint of the sampling pass: the reservoir, the stored
        # bases, and the single in-flight stream item.
        memory.set_usage(
            items=len(reservoir) + len(stored_bases) * nu + 1,
            bits=(len(reservoir) + len(stored_bases) * nu + 1) * bit_size,
        )
        sample = sorted(int(i) for i in reservoir.sample())
        basis = problem.solve_subset(sample)

        # ---------------- verification pass ---------------- #
        violator_count = 0
        violator_weight = 0.0
        total_weight = 0.0
        for index in stream.scan():
            exponent, _ = _implicit_log_weight(problem, stored_bases, index, log_boost)
            weight = float(boost ** (exponent - max_exponent))
            total_weight += weight
            if problem.violates(basis.witness, index):
                violator_count += 1
                violator_weight += weight
        memory.set_usage(
            items=len(sample) + len(stored_bases) * nu + 1,
            bits=(len(sample) + len(stored_bases) * nu + 1) * bit_size,
        )

        fraction = violator_weight / total_weight if total_weight > 0 else 0.0
        success = fraction <= epsilon
        if params.keep_trace:
            trace.append(
                IterationRecord(
                    iteration=iteration,
                    sample_size=len(sample),
                    num_violators=violator_count,
                    violator_weight_fraction=float(fraction),
                    successful=success,
                    basis_indices=basis.indices,
                )
            )
        if violator_count == 0:
            final_basis = basis
            break
        if success:
            stored_bases.append(_StoredBasis(indices=basis.indices, witness=basis.witness))
            successful += 1
    else:
        raise IterationLimitError(
            f"streaming Clarkson did not terminate within {budget} iterations"
        )

    assert final_basis is not None
    resources = ResourceUsage(
        passes=stream.passes,
        space_peak_items=memory.peak_items,
        space_peak_bits=memory.peak_bits,
    )
    return SolveResult(
        value=final_basis.value,
        witness=final_basis.witness,
        basis_indices=final_basis.indices,
        iterations=len(trace) if params.keep_trace else stream.passes // 2,
        successful_iterations=successful,
        resources=resources,
        trace=trace,
        metadata={
            "algorithm": "streaming_clarkson",
            "r": params.r,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
            "stored_bases": len(stored_bases),
        },
    )
