"""Multi-pass streaming binding of the Clarkson engine (Theorem 1), on the fabric.

The streaming driver cannot store per-constraint weights.  Following
Section 3.2 of the paper, it instead stores the bases of all *successful*
iterations; the weight of a constraint during pass ``t`` is
``boost ** a_i`` where ``a_i`` is the number of stored bases the constraint
violates.  With those implicit weights, each iteration of Algorithm 1 is
implemented with

* one **sampling pass** that draws a weighted reservoir sample of size ``m``
  (the eps-net size) from the stream, and
* one **verification pass** that, given the basis computed from the sample,
  measures the weight fraction of the violating constraints (the success
  test of Algorithm 1) and detects termination.

The stream reader is a fabric node on a
:class:`~repro.fabric.topology.StreamTopology`: each pass executes as one
node task (the reader's RNG, stored bases, and arrival order live in its
node state), so under ``TransportConfig(kind="process")`` every pass runs in
a real worker process — bit-identical to the in-process default, because the
task code and the shipped RNG state are the same.  One ledger round is
recorded per pass, which is what ``SolveResult.communication`` surfaces.

Both passes consume the stream in bounded chunks: each chunk's implicit
weights are evaluated against all stored bases in one vectorised
``violation_count_matrix`` call, and the sampling pass turns each chunk into
batch exponential keys, keeping a running top-``m`` — statistically
identical to offering the items to the reservoir one at a time.  The
simulator's live scratch is therefore ``O(chunk + m + nu * r)``, mirroring
the block buffering a real streaming system would use; the *reported*
footprint counts the modelled algorithm's reservoir, stored bases, and
in-flight item, which is the Theorem 1 quantity.

This costs two passes per iteration — a factor-2 over the idealised
one-pass-per-iteration accounting in the paper, recorded as such in
EXPERIMENTS.md — for a total of ``O(nu * r)`` passes.  The peak memory is the
reservoir plus the stored bases: ``O~(lambda * nu * n^{1/r} + nu^2 * r)``
constraints, matching Theorem 1.

The iteration loop itself (sample -> solve -> success test -> reweight ->
terminate) lives in :class:`repro.core.engine.ClarksonEngine`; this module
only provides the streaming substrate binding.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from .. import kernels
from ..core.clarkson import (
    ClarksonParameters,
    _warm_stats,
    resolve_sampling,
    solve_small_problem,
)
from ..core.engine import (
    ClarksonEngine,
    EngineConfig,
    SamplingStrategy,
    ViolationOracle,
    ViolationStats,
    WeightSubstrate,
    iteration_budget,
)
from ..core.lptype import BasisResult, LPTypeProblem
from ..core.result import ResourceUsage, SolveResult
from ..core.rng import SeedLike, as_generator
from ..core.sampling import exponential_keys
from ..core.weights import boost_factor
from ..fabric.topology import StreamTopology
from ..fabric.transport import SharedRef, resolve_transport
from ..models.streaming import StreamingMemory
from ..api.config import StreamingConfig, TransportConfig
from ..api.registry import register_model, warn_legacy_entry_point

__all__ = ["streaming_clarkson_solve"]

#: Number of stream items buffered per vectorised evaluation.  Bounded and
#: independent of ``n``: the simulator's live scratch per pass is
#: ``O(_CHUNK_ITEMS + m + nu * r)`` regardless of the stream length.
_CHUNK_ITEMS = 8192


# ---------------------------------------------------------------------- #
# Reader tasks: top-level functions so the process transport can ship them.
# The single stream-reader node holds the order, the RNG, and the stored
# bases; one task call is one full pass.
# ---------------------------------------------------------------------- #


def _chunk_weights(state: dict, chunk: np.ndarray) -> np.ndarray:
    """Relative implicit weights of one chunk, in one vectorised sweep."""
    exponents = state["problem"].violation_count_matrix(state["witnesses"], chunk)
    return state["boost"] ** (exponents - len(state["witnesses"])).astype(float)


def _reader_sampling_pass(state: dict, sample_size: int) -> tuple[dict, np.ndarray]:
    """One sampling pass: a weighted reservoir over on-the-fly implicit weights.

    Each chunk's exponential keys are drawn in a batch (one uniform per
    item, in stream order — exactly the uniforms the one-at-a-time
    reservoir would consume) and a running top-``m`` is kept, so the drawn
    sample has precisely the Efraimidis-Spirakis distribution while the
    live scratch stays ``O(chunk + m)``.
    """
    best_keys = np.empty(0, dtype=float)
    best_items = np.empty(0, dtype=int)
    with kernels.use_backend(state.get("kernel")):
        for chunk in StreamTopology.iter_chunks(state["order"], _CHUNK_ITEMS):
            weights = _chunk_weights(state, chunk)
            keys = exponential_keys(weights, rng=state["rng"])
            cand_keys = np.concatenate([best_keys, keys])
            cand_items = np.concatenate([best_items, chunk])
            if cand_keys.size > sample_size:
                top = np.argpartition(cand_keys, cand_keys.size - sample_size)
                top = top[cand_keys.size - sample_size:]
                best_keys, best_items = cand_keys[top], cand_items[top]
            else:
                best_keys, best_items = cand_keys, cand_items
    return state, np.sort(best_items)


def _reader_verification_pass(
    state: dict, witness
) -> tuple[dict, tuple[float, float, int]]:
    """One verification pass: violator weight / total weight / violator count.

    Each chunk is one fused kernel sweep (mask, violator count, violated and
    total weight in a single blocked pass); the reader node's state carries
    the kernel backend name so a process-transport worker executes on the
    same backend the coordinator resolved.
    """
    violator_count = 0
    violator_weight = 0.0
    total_weight = 0.0
    with kernels.use_backend(state.get("kernel")):
        for chunk in StreamTopology.iter_chunks(state["order"], _CHUNK_ITEMS):
            weights = _chunk_weights(state, chunk)
            stats = state["problem"].violation_sweep(
                witness, chunk, weights=weights, need_total=True
            )
            total_weight += float(stats.total_weight)
            violator_weight += float(stats.violated_weight)
            violator_count += int(stats.count)
    return state, (violator_weight, total_weight, violator_count)


def _reader_store_basis(state: dict, witness) -> tuple[dict, None]:
    """A successful iteration: remember its basis witness (implicit weights)."""
    state["witnesses"].append(witness)
    return state, None


class _StreamingState:
    """Coordinator-side state shared between the streaming sampler and substrate."""

    def __init__(
        self,
        problem: LPTypeProblem,
        topology: StreamTopology,
        memory: StreamingMemory,
        oracle: ViolationOracle,
        boost: float,
        rng: np.random.Generator,
        warm_witnesses: Sequence | None = None,
        kernel_backend: str | None = None,
    ) -> None:
        self.problem = problem
        self.topology = topology
        self.memory = memory
        self.oracle = oracle
        self.nu = problem.combinatorial_dimension
        self.bit_size = problem.bit_size()
        # Warm re-solves (session API) seed the reader's stored bases with a
        # prior run's successful-iteration witnesses: the implicit weights
        # resume exactly where the prior run left them, and the carried
        # bases count toward the modelled footprint like freshly stored ones.
        warm = list(warm_witnesses) if warm_witnesses else []
        self.num_bases = len(warm)
        self.chunks_per_pass = max(
            1, -(-topology.num_items // _CHUNK_ITEMS)
        )
        topology.share("problem", problem)
        topology.init_state(
            0,
            {
                "problem": SharedRef("problem"),
                "order": topology.order(),
                "rng": rng,
                "witnesses": warm,
                "boost": boost,
                "kernel": kernel_backend,
            },
        )

    def record_footprint(self, stored_items: int) -> None:
        items = stored_items + self.num_bases * self.nu + 1
        self.memory.set_usage(items=items, bits=items * self.bit_size)


class ReservoirPassSampling(SamplingStrategy):
    """The sampling pass, executed as one reader-node task."""

    def __init__(self, state: _StreamingState) -> None:
        self.state = state

    def draw(self, sample_size: int) -> np.ndarray:
        state = self.state
        items = state.topology.run_pass(_reader_sampling_pass, sample_size)
        state.oracle.record_external(state.chunks_per_pass, state.topology.num_items)
        # Peak footprint of the sampling pass: the reservoir, the stored
        # bases, and the single in-flight stream item.
        state.record_footprint(int(items.size))
        return items


class ImplicitStreamSubstrate(WeightSubstrate):
    """Implicit stored-bases weights with a verification pass per iteration.

    The verification pass recomputes the implicit weights on the fly (as a
    real streaming algorithm must) and accumulates the violator / total
    weight chunk by chunk.
    """

    def __init__(self, state: _StreamingState) -> None:
        self.state = state

    def measure(self, sample: np.ndarray, basis: BasisResult) -> ViolationStats:
        state = self.state
        violator_weight, total_weight, violator_count = state.topology.run_pass(
            _reader_verification_pass, basis.witness
        )
        state.oracle.record_external(
            2 * state.chunks_per_pass, 2 * state.topology.num_items
        )
        state.record_footprint(int(len(sample)))
        fraction = violator_weight / total_weight if total_weight > 0 else 0.0
        return ViolationStats(
            num_violators=violator_count, weight_fraction=fraction, context=basis
        )

    def boost(self, stats: ViolationStats) -> None:
        basis: BasisResult = stats.context
        self.state.topology.run_on(0, _reader_store_basis, basis.witness)
        self.state.num_bases += 1


def _streaming_clarkson_solve(
    problem: LPTypeProblem,
    r: int = 2,
    order: Sequence[int] | np.ndarray | None = None,
    params: ClarksonParameters | None = None,
    rng: SeedLike = None,
    transport: Optional[TransportConfig] = None,
    warm_witnesses: list | None = None,
) -> SolveResult:
    """Streaming driver body; see :func:`streaming_clarkson_solve`.

    Internal entry point used by ``repro.solve(problem, model="streaming")``;
    identical to the public shim minus the deprecation warning.
    ``warm_witnesses`` (session API) seeds the implicit stored-bases weights
    with a prior run's successful-iteration witnesses.
    """
    base_params = params or ClarksonParameters()
    params = replace(base_params, r=r)
    gen = as_generator(rng)
    n = problem.num_constraints
    topology = StreamTopology(n, order=order, transport=resolve_transport(transport))
    memory = StreamingMemory()
    bit_size = problem.bit_size()

    backend = kernels.resolve_backend_name(params.kernel_backend)
    with kernels.use_backend(backend):
        sample_size, epsilon = resolve_sampling(problem, params)
        if sample_size >= n:
            # The sample would contain the whole stream: one pass, full storage.
            topology.record_pass()
            result = solve_small_problem(problem)
            result.resources.passes = topology.passes
            result.resources.space_peak_items = n
            result.resources.space_peak_bits = n * bit_size
            result.resources.per_round = topology.ledger.as_table()
            result.metadata.update(
                {
                    "algorithm": "streaming_clarkson",
                    "r": params.r,
                    "kernel_backend": backend,
                }
            )
            result.warm = _warm_stats(warm_witnesses, [])
            return result

        boost = params.boost if params.boost is not None else boost_factor(n, params.r)
        try:
            # State installation already talks to the transport (sharing the
            # problem, shipping the reader state), so it runs inside the same
            # try/finally that guarantees topology.close() — a run-private
            # process pool must not leak when installation fails.
            state = _StreamingState(
                problem=problem,
                topology=topology,
                memory=memory,
                oracle=ViolationOracle(problem),
                boost=boost,
                rng=gen,
                warm_witnesses=warm_witnesses,
                kernel_backend=backend,
            )
            engine = ClarksonEngine(
                problem=problem,
                sampler=ReservoirPassSampling(state),
                substrate=ImplicitStreamSubstrate(state),
                config=EngineConfig(
                    sample_size=sample_size,
                    epsilon=epsilon,
                    budget=iteration_budget(problem, params.r, params.max_iterations),
                    keep_trace=params.keep_trace,
                    name="streaming Clarkson",
                    basis_cache=params.basis_cache,
                ),
            )
            outcome = engine.run()
        finally:
            topology.close()

    resources = ResourceUsage(
        passes=topology.passes,
        space_peak_items=memory.peak_items,
        space_peak_bits=memory.peak_bits,
        oracle_calls=state.oracle.calls,
        basis_cache_hits=outcome.cache_hits,
        basis_cache_misses=outcome.cache_misses,
        per_round=topology.ledger.as_table(),
    )
    return SolveResult(
        value=outcome.basis.value,
        witness=outcome.basis.witness,
        basis_indices=outcome.basis.indices,
        iterations=outcome.iterations,
        successful_iterations=outcome.successful_iterations,
        resources=resources,
        trace=outcome.trace,
        metadata={
            "algorithm": "streaming_clarkson",
            "r": params.r,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
            "stored_bases": state.num_bases,
            "transport": topology.transport.name,
            "kernel_backend": backend,
        },
        warm=_warm_stats(warm_witnesses, outcome.successful_witnesses),
    )


def streaming_clarkson_solve(
    problem: LPTypeProblem,
    r: int = 2,
    order: Sequence[int] | np.ndarray | None = None,
    params: ClarksonParameters | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve an LP-type problem in the multi-pass streaming model.

    .. deprecated:: 1.1
        Use ``repro.solve(problem, model="streaming")`` instead; this shim
        emits a :class:`DeprecationWarning` and forwards to the same
        implementation.

    Parameters
    ----------
    problem:
        The LP-type problem; the driver only accesses constraints by the
        indices the stream yields.
    r:
        Pass/space trade-off parameter of Theorem 1.
    order:
        Optional arrival order of the constraints (default: natural order).
    params:
        Optional meta-algorithm parameters; ``params.r`` is overridden by
        ``r``.
    rng:
        Randomness for the reservoir sampling.

    Returns
    -------
    SolveResult
        ``resources.passes`` and ``resources.space_peak_items`` /
        ``space_peak_bits`` carry the streaming costs of the run.
    """
    warn_legacy_entry_point("streaming_clarkson_solve", "streaming")
    return _streaming_clarkson_solve(problem, r=r, order=order, params=params, rng=rng)


def _run_streaming(
    problem: LPTypeProblem, config: StreamingConfig, warm_witnesses=None
) -> SolveResult:
    """Runner and warm-runner in one (the session passes ``warm_witnesses``),
    so the cold and warm paths can never drift in config handling."""
    return _streaming_clarkson_solve(
        problem,
        r=config.r,
        order=config.order,
        params=config.to_parameters(),
        rng=config.seed,
        transport=config.transport,
        warm_witnesses=warm_witnesses,
    )


register_model(
    "streaming",
    _run_streaming,
    config_cls=StreamingConfig,
    description=(
        "Multi-pass streaming Clarkson (Theorem 1): implicit stored-bases "
        "weights, two passes per iteration, O~(n^{1/r}) space."
    ),
    currencies=("passes", "space_peak_items", "space_peak_bits"),
    replaces="streaming_clarkson_solve",
    transports=("inprocess", "process", "tcp"),
    warm_runner=_run_streaming,
    capabilities=("warm_restart", "ingest"),
)
