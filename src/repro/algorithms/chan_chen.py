"""Chan-Chen-style multi-pass streaming baseline (Section 1.1, reference [13]).

Chan and Chen gave an ``O(r^{d-1})``-pass, ``O~(n^{1/r})``-space streaming
algorithm for low-dimensional linear programming based on deterministic
prune-and-search.  Two artefacts are provided here:

* :func:`chan_chen_pass_count` / :func:`clarkson_pass_count` — closed-form
  pass-complexity models of the two algorithms, used by the E6 benchmark to
  compare the exponential-in-``d`` behaviour of the baseline against the
  ``O(d * r)`` behaviour of the paper's algorithm (this is the comparison
  the paper itself makes; neither quantity depends on the data);

* :func:`chan_chen_2d_streaming` — a working two-dimensional multi-pass
  prune-and-search streaming LP solver in the Chan-Chen spirit: each pass
  evaluates the upper envelope of the constraint lines on a grid of
  ``O(n^{1/r})`` abscissae inside the current search interval and narrows
  the interval around the minimiser; after the interval is small enough the
  final pass collects the (few) constraints still active near the optimum
  and solves them exactly.  This gives an executable 2-d baseline whose
  pass/space trade-off can be measured alongside the randomised algorithm.

The 2-d solver expects the LP in "upper envelope" form::

    minimise  y   subject to   y >= a_j * x + b_j     for all j,

which is the form the two-curve-intersection reduction of Section 5.2
produces; general 2-d LPs can be brought to this form by standard duality
when they are bounded in the ``y`` direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import InvalidInstanceError
from ..core.result import ResourceUsage, SolveResult
from ..models.streaming import MultiPassStream, StreamingMemory

__all__ = [
    "chan_chen_pass_count",
    "clarkson_pass_count",
    "EnvelopeLP",
    "chan_chen_2d_streaming",
]


def chan_chen_pass_count(dimension: int, r: int) -> int:
    """Pass-complexity model ``O(r^{d-1})`` of the Chan-Chen algorithm."""
    if dimension < 1 or r < 1:
        raise ValueError("dimension and r must be >= 1")
    return int(r ** max(0, dimension - 1))


def clarkson_pass_count(dimension: int, r: int) -> int:
    """Pass-complexity model ``O(d * r)`` of the paper's algorithm.

    The constant 2 reflects the sampling + verification pass split of the
    streaming driver; the ``+ 1`` covers the final (terminating) iteration.
    """
    if dimension < 1 or r < 1:
        raise ValueError("dimension and r must be >= 1")
    return 2 * (dimension + 1) * r + 1


@dataclass(frozen=True)
class EnvelopeLP:
    """A 2-d LP in upper-envelope form: minimise the max of ``a_j x + b_j``.

    Attributes
    ----------
    slopes, intercepts:
        Coefficients of the constraint lines.
    x_low, x_high:
        Search interval known to contain the minimiser of the envelope.
    """

    slopes: np.ndarray
    intercepts: np.ndarray
    x_low: float
    x_high: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "slopes", np.asarray(self.slopes, dtype=float))
        object.__setattr__(self, "intercepts", np.asarray(self.intercepts, dtype=float))
        if self.slopes.shape != self.intercepts.shape:
            raise InvalidInstanceError("slopes and intercepts must have the same shape")
        if self.x_low >= self.x_high:
            raise InvalidInstanceError("x_low must be smaller than x_high")

    @property
    def num_constraints(self) -> int:
        return int(self.slopes.size)

    def envelope_at(self, x: float) -> float:
        """Value of the upper envelope at ``x`` (full-memory reference)."""
        return float(np.max(self.slopes * x + self.intercepts))


def chan_chen_2d_streaming(
    lp: EnvelopeLP,
    r: int = 2,
    grid_multiplier: float = 1.0,
) -> SolveResult:
    """Two-dimensional prune-and-search multi-pass streaming LP baseline.

    Parameters
    ----------
    lp:
        The envelope-form LP.
    r:
        Number of interval-narrowing passes; the grid (and hence the space)
        per pass is ``~ n^{1/r}`` points.
    grid_multiplier:
        Multiplier on the grid size (for space/pass trade-off exploration).

    Returns
    -------
    SolveResult
        ``witness`` is the minimising ``(x, y)`` pair; ``value`` is the
        envelope minimum ``y``.  ``resources`` carries passes and peak space.
    """
    n = lp.num_constraints
    if n == 0:
        raise InvalidInstanceError("the LP has no constraints")
    if r < 1:
        raise ValueError("r must be >= 1")

    stream = MultiPassStream(n)
    memory = StreamingMemory()
    grid_size = max(3, int(np.ceil(grid_multiplier * n ** (1.0 / r))) + 1)
    low, high = float(lp.x_low), float(lp.x_high)

    for _ in range(r):
        grid = np.linspace(low, high, grid_size)
        envelope = np.full(grid_size, -np.inf)
        # One pass: evaluate every line on the grid, keep the running max.
        for index in stream.scan():
            values = lp.slopes[index] * grid + lp.intercepts[index]
            np.maximum(envelope, values, out=envelope)
        memory.set_usage(items=2 * grid_size, bits=2 * grid_size * 64)
        best = int(np.argmin(envelope))
        # The minimiser of the convex envelope lies in the two grid cells
        # around the best grid point.
        low_index = max(0, best - 1)
        high_index = min(grid_size - 1, best + 1)
        low, high = float(grid[low_index]), float(grid[high_index])

    # Final pass: collect every constraint that could attain the envelope
    # somewhere in the final interval, then solve those exactly.  A line that
    # is maximal at some interior point is, at the left endpoint, within
    # ``2 * max_slope * span`` of the smaller endpoint envelope value, so the
    # filter below keeps a superset of the relevant lines (the extra ones
    # only cost space, which is measured honestly).
    end_values_low: list[float] = []
    end_values_high: list[float] = []
    max_abs_slope = 0.0
    for index in stream.scan():
        end_values_low.append(lp.slopes[index] * low + lp.intercepts[index])
        end_values_high.append(lp.slopes[index] * high + lp.intercepts[index])
        max_abs_slope = max(max_abs_slope, abs(float(lp.slopes[index])))
    env_low = max(end_values_low)
    env_high = max(end_values_high)
    span = abs(high - low)
    slack = 2.0 * max_abs_slope * span + 1e-9 * max(1.0, abs(env_low), abs(env_high)) + 1e-9
    threshold = min(env_low, env_high) - slack
    active = [
        index
        for index in range(n)
        if max(end_values_low[index], end_values_high[index]) >= threshold
    ]
    memory.set_usage(items=len(active) + 2, bits=(len(active) + 2) * 64)

    # Exact minimisation of the envelope of the active lines on [low, high]:
    # the candidate minimisers are the interval endpoints and the pairwise
    # intersections of active lines inside the interval.
    candidates = [low, high]
    active_slopes = lp.slopes[active]
    active_intercepts = lp.intercepts[active]
    for i in range(len(active)):
        for j in range(i + 1, len(active)):
            denom = active_slopes[i] - active_slopes[j]
            if abs(denom) < 1e-15:
                continue
            x_cross = (active_intercepts[j] - active_intercepts[i]) / denom
            if low - 1e-12 <= x_cross <= high + 1e-12:
                candidates.append(float(x_cross))
    best_x = None
    best_y = np.inf
    for x in candidates:
        y = float(np.max(active_slopes * x + active_intercepts))
        if y < best_y:
            best_x, best_y = float(x), y

    return SolveResult(
        value=best_y,
        witness=np.array([best_x, best_y]),
        basis_indices=tuple(active[:3]),
        iterations=r + 1,
        successful_iterations=r + 1,
        resources=ResourceUsage(
            passes=stream.passes,
            space_peak_items=memory.peak_items,
            space_peak_bits=memory.peak_bits,
        ),
        metadata={
            "algorithm": "chan_chen_2d",
            "r": r,
            "grid_size": grid_size,
            "active_constraints": len(active),
        },
    )
