"""Baseline algorithms the paper compares against (Section 1.1).

* :func:`exact_in_memory` — solve the problem directly with full memory
  (the ground truth for all tests and the "no big-data constraint"
  reference point).
* :func:`single_pass_full_memory_streaming` — the trivial streaming
  algorithm: one pass, store everything.
* :func:`ship_all_coordinator` — the trivial coordinator algorithm: one
  round, every site ships its whole input to the coordinator, for a total
  of ``Theta(n)`` constraints of communication.  The E7 benchmark compares
  its communication against the ``~n^{1/r}`` of Theorem 2.
* :func:`clarkson_classic_reweighting` — Clarkson's original reweighting
  (doubling the violator weights), i.e. Algorithm 1 with ``boost = 2``.
  Used by the A1 ablation to show why the ``n^{1/r}`` boost is what buys the
  ``O(d * r)`` iteration bound.
"""

from __future__ import annotations

from ..core.accounting import BitCostModel
from ..core.clarkson import ClarksonParameters, _clarkson_solve, solve_small_problem
from ..core.lptype import LPTypeProblem
from ..core.result import ResourceUsage, SolveResult
from ..core.rng import SeedLike
from ..models.coordinator import CoordinatorNetwork, Message
from ..models.partition import partition_indices
from ..models.streaming import MultiPassStream
from ..api.config import CoordinatorConfig, SolverConfig
from ..api.registry import register_model

__all__ = [
    "exact_in_memory",
    "single_pass_full_memory_streaming",
    "ship_all_coordinator",
    "clarkson_classic_reweighting",
]


def exact_in_memory(problem: LPTypeProblem) -> SolveResult:
    """Solve the problem directly on one machine with full memory."""
    result = solve_small_problem(problem)
    result.metadata["algorithm"] = "exact_in_memory"
    return result


def single_pass_full_memory_streaming(problem: LPTypeProblem) -> SolveResult:
    """The trivial streaming algorithm: one pass, remember every constraint."""
    stream = MultiPassStream(problem.num_constraints)
    stored: list[int] = []
    for index in stream.scan():
        stored.append(index)
    basis = problem.solve_subset(stored)
    bit_size = problem.bit_size()
    return SolveResult(
        value=basis.value,
        witness=basis.witness,
        basis_indices=basis.indices,
        iterations=1,
        successful_iterations=1,
        resources=ResourceUsage(
            passes=stream.passes,
            space_peak_items=len(stored),
            space_peak_bits=len(stored) * bit_size,
        ),
        metadata={"algorithm": "single_pass_full_memory"},
    )


def ship_all_coordinator(
    problem: LPTypeProblem,
    num_sites: int = 4,
    cost_model: BitCostModel | None = None,
) -> SolveResult:
    """The trivial coordinator algorithm: every site ships its whole input."""
    cost_model = cost_model or BitCostModel()
    partition = partition_indices(problem.num_constraints, num_sites, method="round_robin")
    network = CoordinatorNetwork(partition, cost_model=cost_model)
    payload_coeffs = problem.payload_num_coefficients()

    network.begin_round()
    received: list[int] = []
    for site in network.sites:
        network.coordinator_to_site(site.site_id, Message(("send-all", 1), cost_model.counters(1)))
        # Same convention as the fabric's measured ConstraintBlock: the
        # coefficient rows plus one counter per constraint identity.
        network.site_to_coordinator(
            site.site_id,
            Message(
                site.local_indices,
                cost_model.coefficients(site.num_local * payload_coeffs)
                + cost_model.counters(site.num_local),
            ),
        )
        received.extend(int(i) for i in site.local_indices)
    network.end_round()

    basis = problem.solve_subset(sorted(received))
    return SolveResult(
        value=basis.value,
        witness=basis.witness,
        basis_indices=basis.indices,
        iterations=1,
        successful_iterations=1,
        resources=ResourceUsage(
            rounds=network.rounds,
            total_communication_bits=network.total_bits,
            max_message_bits=network.max_message_bits,
            machine_count=network.num_sites,
        ),
        metadata={"algorithm": "ship_all_coordinator", "k": network.num_sites},
    )


def clarkson_classic_reweighting(
    problem: LPTypeProblem,
    r: int = 2,
    rng: SeedLike = None,
    sample_scale: float = 1.0,
) -> SolveResult:
    """Algorithm 1 with Clarkson's classical factor-2 reweighting.

    Keeping the eps-net sample size of the paper but boosting violator
    weights only by a factor of 2 requires ``Omega(nu log n)`` successful
    iterations instead of ``O(nu r)``; the A1 ablation benchmark measures
    the difference directly.
    """
    params = ClarksonParameters(r=r, boost=2.0, sample_scale=sample_scale, max_iterations=4000)
    result = _clarkson_solve(problem, params=params, rng=rng)
    result.metadata["algorithm"] = "clarkson_classic_reweighting"
    return result


# --------------------------------------------------------------------------- #
# Registry bindings: the baselines are first-class models of the front door,
# so `compare_models(problem, models=("streaming", "ship_all_coordinator"))`
# reproduces the paper's algorithm-vs-naive tables through one call.
# --------------------------------------------------------------------------- #


@register_model(
    "exact",
    config_cls=SolverConfig,
    description=(
        "Solve directly with full memory (ground truth; no big-data "
        "constraint).  Deterministic and configuration-free: the "
        "meta-algorithm config keys have no effect."
    ),
    currencies=("space_peak_items",),
)
def _run_exact(problem: LPTypeProblem, config: SolverConfig) -> SolveResult:
    return exact_in_memory(problem)


@register_model(
    "single_pass_streaming",
    config_cls=SolverConfig,
    description=(
        "Trivial streaming baseline: one pass, store every constraint.  "
        "Deterministic and configuration-free: the meta-algorithm config "
        "keys have no effect."
    ),
    currencies=("passes", "space_peak_items", "space_peak_bits"),
)
def _run_single_pass(problem: LPTypeProblem, config: SolverConfig) -> SolveResult:
    return single_pass_full_memory_streaming(problem)


@register_model(
    "ship_all_coordinator",
    config_cls=CoordinatorConfig,
    description=(
        "Trivial coordinator baseline: one round, every site ships its whole "
        "input (Theta(n) communication).  Deterministic; only num_sites and "
        "cost_model take effect."
    ),
    currencies=(
        "rounds",
        "total_communication_bits",
        "max_message_bits",
        "machine_count",
    ),
)
def _run_ship_all(problem: LPTypeProblem, config: CoordinatorConfig) -> SolveResult:
    return ship_all_coordinator(
        problem, num_sites=config.num_sites, cost_model=config.cost_model
    )


@register_model(
    "classic_reweighting",
    config_cls=SolverConfig,
    description=(
        "Clarkson's original factor-2 reweighting (the A1 ablation): "
        "Omega(nu log n) successful iterations instead of O(nu r).  The "
        "boost field is fixed to 2 — that is the baseline's definition."
    ),
    currencies=("space_peak_items",),
)
def _run_classic(problem: LPTypeProblem, config: SolverConfig) -> SolveResult:
    from dataclasses import replace

    params = replace(config.to_parameters(), boost=2.0)
    if config.max_iterations is None:
        # The factor-2 boost needs far more iterations than the Lemma 3.3
        # budget the engine would otherwise derive.
        params = replace(params, max_iterations=4000)
    result = _clarkson_solve(problem, params=params, rng=config.seed)
    result.metadata["algorithm"] = "clarkson_classic_reweighting"
    return result
