"""Baseline algorithms the paper compares against (Section 1.1).

* :func:`exact_in_memory` — solve the problem directly with full memory
  (the ground truth for all tests and the "no big-data constraint"
  reference point).
* :func:`single_pass_full_memory_streaming` — the trivial streaming
  algorithm: one pass, store everything.
* :func:`ship_all_coordinator` — the trivial coordinator algorithm: one
  round, every site ships its whole input to the coordinator, for a total
  of ``Theta(n)`` constraints of communication.  The E7 benchmark compares
  its communication against the ``~n^{1/r}`` of Theorem 2.
* :func:`clarkson_classic_reweighting` — Clarkson's original reweighting
  (doubling the violator weights), i.e. Algorithm 1 with ``boost = 2``.
  Used by the A1 ablation to show why the ``n^{1/r}`` boost is what buys the
  ``O(d * r)`` iteration bound.
"""

from __future__ import annotations

from ..core.accounting import BitCostModel
from ..core.clarkson import ClarksonParameters, clarkson_solve, solve_small_problem
from ..core.lptype import LPTypeProblem
from ..core.result import ResourceUsage, SolveResult
from ..core.rng import SeedLike
from ..models.coordinator import CoordinatorNetwork, Message
from ..models.partition import partition_indices
from ..models.streaming import MultiPassStream

__all__ = [
    "exact_in_memory",
    "single_pass_full_memory_streaming",
    "ship_all_coordinator",
    "clarkson_classic_reweighting",
]


def exact_in_memory(problem: LPTypeProblem) -> SolveResult:
    """Solve the problem directly on one machine with full memory."""
    result = solve_small_problem(problem)
    result.metadata["algorithm"] = "exact_in_memory"
    return result


def single_pass_full_memory_streaming(problem: LPTypeProblem) -> SolveResult:
    """The trivial streaming algorithm: one pass, remember every constraint."""
    stream = MultiPassStream(problem.num_constraints)
    stored: list[int] = []
    for index in stream.scan():
        stored.append(index)
    basis = problem.solve_subset(stored)
    bit_size = problem.bit_size()
    return SolveResult(
        value=basis.value,
        witness=basis.witness,
        basis_indices=basis.indices,
        iterations=1,
        successful_iterations=1,
        resources=ResourceUsage(
            passes=stream.passes,
            space_peak_items=len(stored),
            space_peak_bits=len(stored) * bit_size,
        ),
        metadata={"algorithm": "single_pass_full_memory"},
    )


def ship_all_coordinator(
    problem: LPTypeProblem,
    num_sites: int = 4,
    cost_model: BitCostModel | None = None,
) -> SolveResult:
    """The trivial coordinator algorithm: every site ships its whole input."""
    cost_model = cost_model or BitCostModel()
    partition = partition_indices(problem.num_constraints, num_sites, method="round_robin")
    network = CoordinatorNetwork(partition, cost_model=cost_model)
    payload_coeffs = problem.payload_num_coefficients()

    network.begin_round()
    received: list[int] = []
    for site in network.sites:
        network.coordinator_to_site(site.site_id, Message("send-all", cost_model.counters(1)))
        network.site_to_coordinator(
            site.site_id,
            Message(
                site.local_indices,
                cost_model.coefficients(site.num_local * payload_coeffs),
            ),
        )
        received.extend(int(i) for i in site.local_indices)
    network.end_round()

    basis = problem.solve_subset(sorted(received))
    return SolveResult(
        value=basis.value,
        witness=basis.witness,
        basis_indices=basis.indices,
        iterations=1,
        successful_iterations=1,
        resources=ResourceUsage(
            rounds=network.rounds,
            total_communication_bits=network.total_bits,
            max_message_bits=network.max_message_bits,
            machine_count=network.num_sites,
        ),
        metadata={"algorithm": "ship_all_coordinator", "k": network.num_sites},
    )


def clarkson_classic_reweighting(
    problem: LPTypeProblem,
    r: int = 2,
    rng: SeedLike = None,
    sample_scale: float = 1.0,
) -> SolveResult:
    """Algorithm 1 with Clarkson's classical factor-2 reweighting.

    Keeping the eps-net sample size of the paper but boosting violator
    weights only by a factor of 2 requires ``Omega(nu log n)`` successful
    iterations instead of ``O(nu r)``; the A1 ablation benchmark measures
    the difference directly.
    """
    params = ClarksonParameters(r=r, boost=2.0, sample_scale=sample_scale, max_iterations=4000)
    result = clarkson_solve(problem, params=params, rng=rng)
    result.metadata["algorithm"] = "clarkson_classic_reweighting"
    return result
