"""Coordinator-model binding of the Clarkson engine (Theorem 2), on the fabric.

The constraint set is partitioned over ``k`` sites.  Every iteration of
Algorithm 1 is simulated with three coordinator exchanges:

1. **weight round** — the coordinator tells every site whether the previous
   iteration succeeded (so the sites boost the violators they remembered)
   and gathers the local weight totals ``w(S_i)``;
2. **sampling round** — the coordinator draws a multinomial split of the
   eps-net size over the per-site totals (Lemma 3.7) and scatters the count
   ``y_i`` to each site; each site replies with ``y_i`` constraints sampled
   proportionally to its local weights, shipped as a measured
   :class:`~repro.fabric.payload.ConstraintBlock`;
3. **violation round** — the coordinator broadcasts the basis (a measured
   :class:`~repro.fabric.payload.BasisPayload`: basis constraints plus the
   encoded witness); each site measures its local violators with one
   vectorised ``violation_mask`` call and replies with the violator weight,
   its weight total, and the violator count.

All communication flows through a :class:`~repro.fabric.topology.StarTopology`
(the classic coordinator model: one ledger round per exchange) or a
:class:`~repro.fabric.topology.TreeTopology` (the aggregation-tree variant:
``ceil(log_fanout k)`` rounds per exchange, but the coordinator's per-round
load drops from ``k * b`` to ``O(fanout * b)`` on combinable gathers).  Site
state — local weights, the per-site RNG derived from the run seed, and the
remembered violator positions — lives with the configured
:class:`~repro.fabric.transport.Transport`: in-process by default, or on
real worker processes with ``TransportConfig(kind="process")``, with
bit-identical results either way.

On the star this uses ``3`` rounds per iteration (a constant factor over the
idealised accounting, recorded in EXPERIMENTS.md) and
``O~(lambda * nu * n^{1/r} + k)`` constraints of communication per run,
matching Theorem 2.  The iteration loop itself lives in
:class:`repro.core.engine.ClarksonEngine`; rounds 1-2 happen inside the
sampling strategy, round 3 inside the weight substrate.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from .. import kernels
from ..core.accounting import BitCostModel
from ..core.clarkson import (
    ClarksonParameters,
    _warm_stats,
    resolve_sampling,
    solve_small_problem,
)
from ..core.engine import (
    ClarksonEngine,
    EngineConfig,
    SamplingStrategy,
    ViolationOracle,
    ViolationStats,
    WeightSubstrate,
    iteration_budget,
)
from ..core.exceptions import IterationLimitError
from ..core.lptype import BasisResult, LPTypeProblem
from ..core.result import ResourceUsage, SolveResult
from ..core.rng import SeedLike, as_generator, spawn
from ..core.sampling import multinomial_split, weighted_sample_without_replacement
from ..core.weights import ExplicitWeights, boost_factor
from ..fabric.payload import (
    BasisPayload,
    ConstraintBlock,
    Count,
    Flag,
    Scalar,
    StatsBlock,
    constraint_rows,
    encode_witness_vector,
)
from ..fabric.topology import StarTopology, TreeTopology
from ..fabric.transport import SharedRef, resolve_transport
from ..models.partition import partition_indices
from ..api.config import CoordinatorConfig, TransportConfig
from ..api.registry import register_model, warn_legacy_entry_point

__all__ = ["coordinator_clarkson_solve"]


# ---------------------------------------------------------------------- #
# Site tasks: top-level functions so the process transport can ship them.
# Each takes the site state dict, returns ``(state, result)``.
# ---------------------------------------------------------------------- #


def _site_weight_round(state: dict, apply_boost: int) -> tuple[dict, float]:
    """Round 1, site side: boost remembered violators, report the total."""
    if apply_boost and state["pending"] is not None and state["local_indices"].size:
        state["weights"].multiply(state["pending"])
    state["pending"] = None
    with kernels.use_backend(state.get("kernel")):
        total = (
            float(np.exp(state["weights"].total_weight_log()))
            if state["local_indices"].size
            else 0.0
        )
    return state, total


def _site_sample_round(state: dict, count: int) -> tuple[dict, ConstraintBlock]:
    """Round 2, site side: draw ``count`` local constraints by weight."""
    site_n = int(state["local_indices"].size)
    y = int(min(count, site_n))
    if y > 0:
        local_sample = weighted_sample_without_replacement(
            state["weights"].weights(), y, rng=state["rng"]
        )
        chosen = state["local_indices"][local_sample]
    else:
        chosen = np.empty(0, dtype=int)
    payload = ConstraintBlock(
        indices=chosen, rows=constraint_rows(state["problem"], chosen)
    )
    return state, payload


def _site_violation_round(state: dict, witness) -> tuple[dict, tuple[float, float, int]]:
    """Round 3, site side: measure local violators, remember their positions.

    One fused kernel sweep per site: the violation mask, the violator count,
    and the violated-weight sum come out of a single blocked pass over the
    site's local constraints (no full margin temporaries).
    """
    idx = state["local_indices"]
    if idx.size == 0:
        state["pending"] = np.empty(0, dtype=int)
        return state, (0.0, 0.0, 0)
    weights: ExplicitWeights = state["weights"]
    with kernels.use_backend(state.get("kernel")):
        stats = state["problem"].violation_sweep(
            witness, idx, weights=weights.weights(), need_total=False
        )
        site_total = float(np.exp(weights.total_weight_log()))
        violator_weight = (stats.violated_weight / weights.scaled_total) * site_total
    state["pending"] = np.flatnonzero(stats.mask)
    return state, (float(violator_weight), site_total, int(stats.count))


def _site_ship_all(state: dict) -> tuple[dict, ConstraintBlock]:
    """Small-instance path: ship the whole local share to the coordinator."""
    idx = state["local_indices"]
    return state, ConstraintBlock(indices=idx, rows=constraint_rows(state["problem"], idx))


class _CoordinatorState:
    """Coordinator-side run state: the topology plus the protocol flags."""

    def __init__(
        self,
        problem: LPTypeProblem,
        topology: StarTopology | TreeTopology,
        oracle: ViolationOracle,
        gen: np.random.Generator,
        kernel_backend: str | None = None,
    ) -> None:
        self.problem = problem
        self.topology = topology
        self.oracle = oracle
        self.gen = gen
        self.kernel_backend = kernel_backend
        self.num_sites = topology.num_sites
        self.site_sizes: list[int] = []
        # Whether the previous iteration succeeded (sites then apply the
        # boost they remembered during the last violation round).
        self.pending_boost = False

    def install_sites(
        self,
        partition: Sequence[np.ndarray],
        boost: float,
        warm_exponents: np.ndarray | None = None,
    ) -> None:
        site_rngs = spawn(self.gen, self.num_sites)
        # Ship the (large, read-only) problem once per transport worker; the
        # per-site states hold a reference, not a copy.
        self.topology.share("problem", self.problem)
        for site_id, local in enumerate(partition):
            local = np.asarray(local, dtype=int)
            self.site_sizes.append(int(local.size))
            if warm_exponents is not None and local.size:
                # Warm re-solve (session API): each site resumes the weight
                # state its constraints carried at the end of the prior run
                # (boost ** #violated-prior-bases, Section 3.2 applied to
                # the explicit per-site vectors).
                weights = ExplicitWeights.from_exponents(
                    warm_exponents[local], boost
                )
            else:
                weights = ExplicitWeights.uniform(max(1, local.size), boost)
            self.topology.init_state(
                site_id,
                {
                    "problem": SharedRef("problem"),
                    "local_indices": local,
                    "weights": weights,
                    "rng": site_rngs[site_id],
                    "pending": None,
                    "kernel": self.kernel_backend,
                },
            )


class MultinomialSplitSampling(SamplingStrategy):
    """Rounds 1-2 of an iteration: weight totals, then a Lemma 3.7 split."""

    def __init__(self, state: _CoordinatorState) -> None:
        self.state = state

    def draw(self, sample_size: int) -> np.ndarray:
        state = self.state
        topology = state.topology
        k = state.num_sites

        # ---------------- round 1: weight totals (and weight update) ---------------- #
        flag = 1 if state.pending_boost else 0
        topology.begin_round()
        topology.broadcast_down(Flag("update?", flag))
        totals = topology.run_all(_site_weight_round, [(flag,)] * k)
        # The coordinator consumes every site's individual total (the
        # Lemma 3.7 split needs the full vector), so a tree must forward
        # them verbatim — a combine-summed gather could not deliver them.
        delivered = topology.gather_up(
            [Scalar(t) for t in totals], combinable=False
        )
        topology.end_round()
        state.pending_boost = False
        totals = np.asarray([p.value for p in delivered], dtype=float)

        # ---------------- round 2: multinomial split and local sampling ---------------- #
        if totals.sum() <= 0:
            raise IterationLimitError("all site weights vanished; invalid state")
        counts = multinomial_split(totals, sample_size, rng=state.gen)
        topology.begin_round()
        topology.scatter_down([Count(int(c)) for c in counts])
        blocks = topology.run_all(
            _site_sample_round, [(int(c),) for c in counts]
        )
        delivered_blocks = topology.gather_up(blocks)
        topology.end_round()
        sampled: set[int] = set()
        for block in delivered_blocks:
            sampled.update(int(i) for i in block.indices)
        return np.asarray(sorted(sampled), dtype=int)


class PartitionedWeightSubstrate(WeightSubstrate):
    """Round 3 of an iteration: basis broadcast plus violation statistics."""

    def __init__(self, state: _CoordinatorState) -> None:
        self.state = state

    def measure(self, sample: np.ndarray, basis: BasisResult) -> ViolationStats:
        state = self.state
        topology = state.topology
        problem = state.problem
        k = state.num_sites

        basis_idx = np.asarray(basis.indices, dtype=int)
        payload = BasisPayload(
            indices=basis_idx,
            rows=constraint_rows(problem, basis_idx),
            witness=encode_witness_vector(problem, basis.witness),
        )
        topology.begin_round()
        topology.broadcast_down(payload)
        stats = topology.run_all(_site_violation_round, [(basis.witness,)] * k)
        delivered = topology.gather_up(
            [StatsBlock(np.asarray(s, dtype=float)) for s in stats], combinable=True
        )
        topology.end_round()
        state.oracle.record_external(
            sum(1 for size in state.site_sizes if size), sum(state.site_sizes)
        )

        violator_weight = sum(float(p.values[0]) for p in delivered)
        total_weight = sum(float(p.values[1]) for p in delivered)
        violator_count = sum(int(p.values[2]) for p in delivered)
        fraction = violator_weight / total_weight if total_weight > 0 else 0.0
        return ViolationStats(
            num_violators=violator_count, weight_fraction=fraction, context=None
        )

    def boost(self, stats: ViolationStats) -> None:
        # The boost is applied by the sites during the next weight round,
        # from the violator positions they remembered locally.
        self.state.pending_boost = True


def _build_topology(
    num_sites: int,
    topology: str,
    fanout: int,
    transport_config: Optional[TransportConfig],
    cost_model: BitCostModel,
) -> StarTopology | TreeTopology:
    transport = resolve_transport(transport_config)
    if topology == "tree":
        return TreeTopology(num_sites, fanout=fanout, transport=transport, cost_model=cost_model)
    if topology == "star":
        return StarTopology(num_sites, transport=transport, cost_model=cost_model)
    raise ValueError(f"unknown coordinator topology {topology!r}")


def _coordinator_clarkson_solve(
    problem: LPTypeProblem,
    num_sites: int = 4,
    r: int = 2,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
    topology: str = "star",
    fanout: int = 2,
    transport: Optional[TransportConfig] = None,
    warm_witnesses: list | None = None,
) -> SolveResult:
    """Coordinator driver body; see :func:`coordinator_clarkson_solve`.

    Internal entry point used by ``repro.solve(problem, model="coordinator")``;
    identical to the public shim minus the deprecation warning.
    ``warm_witnesses`` (session API) seeds the per-site weight vectors from a
    prior run's successful-iteration bases; the prior run already broadcast
    those bases to every site, so re-deriving the local weights costs no
    additional communication.
    """
    base_params = params or ClarksonParameters()
    params = replace(base_params, r=r)
    gen = as_generator(rng)
    n = problem.num_constraints
    cost_model = cost_model or BitCostModel()

    if partition is None:
        partition = partition_indices(n, num_sites, method="round_robin")
    net = _build_topology(len(partition), topology, fanout, transport, cost_model)

    sample_size, epsilon = resolve_sampling(problem, params)
    boost = params.boost if params.boost is not None else boost_factor(n, params.r)
    backend = kernels.resolve_backend_name(params.kernel_backend)

    state = _CoordinatorState(
        problem=problem,
        topology=net,
        oracle=ViolationOracle(problem),
        gen=gen,
        kernel_backend=backend,
    )
    warm_exponents = None
    if warm_witnesses:
        # One vectorised sweep recovers the carried weight state; in a real
        # deployment each site would evaluate its own slice against the
        # bases it already holds from the prior run's broadcasts.
        with kernels.use_backend(backend):
            warm_exponents = state.oracle.count_matrix(
                warm_witnesses, problem.all_indices()
            )
    try:
        state.install_sites(partition, boost, warm_exponents=warm_exponents)

        if sample_size >= n:
            # Cheaper to ship everything to the coordinator in one exchange.
            net.begin_round()
            net.broadcast_down(Flag("send-all", 1))
            blocks = net.run_all(_site_ship_all, [()] * net.num_sites)
            net.gather_up(blocks)
            net.end_round()
            with kernels.use_backend(backend):
                result = solve_small_problem(problem)
            result.resources.rounds = net.rounds
            result.resources.total_communication_bits = net.total_bits
            result.resources.max_message_bits = net.max_message_bits
            result.resources.max_machine_load_bits = net.max_load_bits
            result.resources.machine_count = net.num_sites
            result.resources.per_round = net.ledger.as_table()
            result.metadata.update(
                {
                    "algorithm": "coordinator_clarkson",
                    "r": params.r,
                    "k": net.num_sites,
                    "topology": topology,
                    "transport": net.transport.name,
                    "kernel_backend": backend,
                }
            )
            result.warm = _warm_stats(warm_witnesses, [])
            return result

        engine = ClarksonEngine(
            problem=problem,
            sampler=MultinomialSplitSampling(state),
            substrate=PartitionedWeightSubstrate(state),
            config=EngineConfig(
                sample_size=sample_size,
                epsilon=epsilon,
                budget=iteration_budget(problem, params.r, params.max_iterations),
                keep_trace=params.keep_trace,
                name="coordinator Clarkson",
                basis_cache=params.basis_cache,
            ),
        )
        with kernels.use_backend(backend):
            outcome = engine.run()
    finally:
        net.close()

    resources = ResourceUsage(
        rounds=net.rounds,
        total_communication_bits=net.total_bits,
        max_message_bits=net.max_message_bits,
        max_machine_load_bits=net.max_load_bits,
        machine_count=net.num_sites,
        oracle_calls=state.oracle.calls,
        basis_cache_hits=outcome.cache_hits,
        basis_cache_misses=outcome.cache_misses,
        per_round=net.ledger.as_table(),
    )
    return SolveResult(
        value=outcome.basis.value,
        witness=outcome.basis.witness,
        basis_indices=outcome.basis.indices,
        iterations=outcome.iterations,
        successful_iterations=outcome.successful_iterations,
        resources=resources,
        trace=outcome.trace,
        metadata={
            "algorithm": "coordinator_clarkson",
            "r": params.r,
            "k": net.num_sites,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
            "topology": topology,
            "transport": net.transport.name,
            "kernel_backend": backend,
        },
        warm=_warm_stats(warm_witnesses, outcome.successful_witnesses),
    )


def coordinator_clarkson_solve(
    problem: LPTypeProblem,
    num_sites: int = 4,
    r: int = 2,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve an LP-type problem in the coordinator model.

    .. deprecated:: 1.1
        Use ``repro.solve(problem, model="coordinator")`` instead; this shim
        emits a :class:`DeprecationWarning` and forwards to the same
        implementation.

    Parameters
    ----------
    problem:
        The LP-type problem (shared read-only by the simulator; sites only
        touch their own constraints and what they received).
    num_sites:
        Number of sites ``k`` (ignored if ``partition`` is given).
    r:
        Round/communication trade-off parameter of Theorem 2.
    partition:
        Optional explicit partition of the constraint indices over the sites.
    params:
        Meta-algorithm parameters (``params.r`` is overridden by ``r``).
    cost_model:
        Bit-cost model used for the communication accounting.
    rng:
        Randomness (coordinator and per-site generators are derived from it).

    Returns
    -------
    SolveResult
        ``resources.rounds`` and ``resources.total_communication_bits`` carry
        the coordinator-model costs; ``result.communication`` has the
        per-round trace.
    """
    warn_legacy_entry_point("coordinator_clarkson_solve", "coordinator")
    return _coordinator_clarkson_solve(
        problem,
        num_sites=num_sites,
        r=r,
        partition=partition,
        params=params,
        cost_model=cost_model,
        rng=rng,
    )


def _run_coordinator(
    problem: LPTypeProblem, config: CoordinatorConfig, warm_witnesses=None
) -> SolveResult:
    """Runner and warm-runner in one (the session passes ``warm_witnesses``),
    so the cold and warm paths can never drift in config handling."""
    return _coordinator_clarkson_solve(
        problem,
        num_sites=config.num_sites,
        r=config.r,
        partition=config.partition,
        params=config.to_parameters(),
        cost_model=config.cost_model,
        rng=config.seed,
        topology=config.topology,
        fanout=config.fanout,
        transport=config.transport,
        warm_witnesses=warm_witnesses,
    )


register_model(
    "coordinator",
    _run_coordinator,
    config_cls=CoordinatorConfig,
    description=(
        "Coordinator-model Clarkson (Theorem 2): per-site explicit weights, "
        "three exchanges per iteration over a star or aggregation-tree "
        "topology, O~(n^{1/r} + k) communication."
    ),
    currencies=(
        "rounds",
        "total_communication_bits",
        "max_message_bits",
        "max_machine_load_bits",
        "machine_count",
    ),
    replaces="coordinator_clarkson_solve",
    transports=("inprocess", "process", "tcp"),
    warm_runner=_run_coordinator,
    capabilities=("warm_restart", "ingest"),
)
