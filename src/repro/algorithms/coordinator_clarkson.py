"""Coordinator-model implementation of the meta-algorithm (Theorem 2).

The constraint set is partitioned over ``k`` sites.  Every iteration of
Algorithm 1 is simulated with three coordinator rounds:

1. **weight round** — the coordinator tells every site whether the previous
   iteration succeeded (so the sites update their local weights) and asks
   for the local weight totals ``w(S_i)``;
2. **sampling round** — the coordinator draws a multinomial split of the
   eps-net size over the per-site totals (Lemma 3.7) and sends the count
   ``y_i`` to each site; each site replies with ``y_i`` constraints sampled
   proportionally to its local weights;
3. **violation round** — the coordinator broadcasts the basis (witness plus
   basis constraints) it computed from the union of the samples; each site
   replies with the weight and count of its local violators.

This uses ``O(nu * r)`` rounds and
``O~(lambda * nu * n^{1/r} + k)`` constraints of communication per run,
matching Theorem 2 (a constant factor of 3 in rounds over the idealised
accounting, recorded in EXPERIMENTS.md).  Sites keep explicit local weights,
which is allowed: per-site memory is only required to be proportional to its
input share.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from ..core.accounting import BitCostModel
from ..core.clarkson import ClarksonParameters, resolve_sampling, solve_small_problem
from ..core.exceptions import IterationLimitError
from ..core.lptype import BasisResult, LPTypeProblem
from ..core.result import IterationRecord, ResourceUsage, SolveResult
from ..core.rng import SeedLike, as_generator, spawn
from ..core.sampling import multinomial_split, weighted_sample_without_replacement
from ..core.weights import ExplicitWeights, boost_factor
from ..models.coordinator import CoordinatorNetwork, Message
from ..models.partition import partition_indices

__all__ = ["coordinator_clarkson_solve"]


def coordinator_clarkson_solve(
    problem: LPTypeProblem,
    num_sites: int = 4,
    r: int = 2,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve an LP-type problem in the coordinator model.

    Parameters
    ----------
    problem:
        The LP-type problem (shared read-only by the simulator; sites only
        touch their own indices).
    num_sites:
        Number of sites ``k`` (ignored if ``partition`` is given).
    r:
        Round/communication trade-off parameter of Theorem 2.
    partition:
        Optional explicit partition of the constraint indices over the sites.
    params:
        Meta-algorithm parameters (``params.r`` is overridden by ``r``).
    cost_model:
        Bit-cost model used for the communication accounting.
    rng:
        Randomness (coordinator and per-site generators are derived from it).

    Returns
    -------
    SolveResult
        ``resources.rounds`` and ``resources.total_communication_bits`` carry
        the coordinator-model costs.
    """
    base_params = params or ClarksonParameters()
    params = replace(base_params, r=r)
    gen = as_generator(rng)
    n = problem.num_constraints
    nu = problem.combinatorial_dimension
    cost_model = cost_model or BitCostModel()

    if partition is None:
        partition = partition_indices(n, num_sites, method="round_robin")
    network = CoordinatorNetwork(partition, cost_model=cost_model)
    site_rngs = spawn(gen, network.num_sites)

    sample_size, epsilon = resolve_sampling(problem, params)
    payload_coeffs = problem.payload_num_coefficients()

    if sample_size >= n:
        # Cheaper to ship everything to the coordinator in one round.
        network.begin_round()
        for site in network.sites:
            network.coordinator_to_site(site.site_id, Message("send-all", cost_model.counters(1)))
            network.site_to_coordinator(
                site.site_id,
                Message(site.local_indices, cost_model.coefficients(site.num_local * payload_coeffs)),
            )
        network.end_round()
        result = solve_small_problem(problem)
        result.resources.rounds = network.rounds
        result.resources.total_communication_bits = network.total_bits
        result.resources.max_message_bits = network.max_message_bits
        result.resources.machine_count = network.num_sites
        result.metadata.update({"algorithm": "coordinator_clarkson", "r": params.r, "k": network.num_sites})
        return result

    boost = params.boost if params.boost is not None else boost_factor(n, params.r)
    budget = params.max_iterations or (40 * nu * params.r + 40)

    # Per-site explicit weights over the local constraints.
    site_weights = [
        ExplicitWeights.uniform(max(1, site.num_local), boost) for site in network.sites
    ]

    trace: list[IterationRecord] = []
    successful = 0
    final_basis: BasisResult | None = None
    pending_violators: list[np.ndarray] | None = None

    for iteration in range(budget):
        # ---------------- round 1: weight totals (and weight update) ---------------- #
        network.begin_round()
        local_totals = []
        for site in network.sites:
            flag = 1 if pending_violators is not None else 0
            network.coordinator_to_site(site.site_id, Message(("update?", flag), cost_model.counters(1)))
            if pending_violators is not None and site.num_local > 0:
                local_positions = pending_violators[site.site_id]
                site_weights[site.site_id].multiply(local_positions)
            total = (
                float(np.exp(site_weights[site.site_id].total_weight_log()))
                if site.num_local > 0
                else 0.0
            )
            local_totals.append(total)
            network.site_to_coordinator(
                site.site_id, Message(total, cost_model.coefficients(1))
            )
        network.end_round()
        pending_violators = None

        # ---------------- round 2: multinomial split and local sampling ---------------- #
        totals = np.asarray(local_totals, dtype=float)
        if totals.sum() <= 0:
            raise IterationLimitError("all site weights vanished; invalid state")
        counts = multinomial_split(totals, sample_size, rng=gen)
        network.begin_round()
        sampled_indices: list[int] = []
        for site in network.sites:
            network.coordinator_to_site(
                site.site_id, Message(int(counts[site.site_id]), cost_model.counters(1))
            )
            y = int(min(counts[site.site_id], site.num_local))
            if y > 0:
                local_sample = weighted_sample_without_replacement(
                    site_weights[site.site_id].weights(), y, rng=site_rngs[site.site_id]
                )
                chosen = site.local_indices[local_sample]
                sampled_indices.extend(int(i) for i in chosen)
                bits = cost_model.coefficients(len(chosen) * payload_coeffs)
            else:
                chosen = np.empty(0, dtype=int)
                bits = cost_model.counters(1)
            network.site_to_coordinator(site.site_id, Message(chosen, bits))
        network.end_round()

        basis = problem.solve_subset(sorted(set(sampled_indices)))

        # ---------------- round 3: basis broadcast and violation statistics ---------- #
        basis_bits = cost_model.coefficients(
            (len(basis.indices) + 1) * payload_coeffs + problem.dimension
        )
        network.begin_round()
        violator_count = 0
        violator_weight = 0.0
        total_weight = 0.0
        per_site_violators: list[np.ndarray] = []
        for site in network.sites:
            network.coordinator_to_site(site.site_id, Message(("basis", basis.indices), basis_bits))
            if site.num_local > 0:
                local_violators = problem.violating_indices(basis.witness, site.local_indices)
                # Positions of the violators inside the site's local arrays.
                positions = np.searchsorted(site.local_indices, local_violators)
                w_frac = site_weights[site.site_id].fraction(positions)
                site_total = float(np.exp(site_weights[site.site_id].total_weight_log()))
                violator_weight += w_frac * site_total
                total_weight += site_total
                violator_count += int(local_violators.size)
                per_site_violators.append(positions)
            else:
                per_site_violators.append(np.empty(0, dtype=int))
            network.site_to_coordinator(
                site.site_id, Message(("stats",), cost_model.coefficients(2))
            )
        network.end_round()

        fraction = violator_weight / total_weight if total_weight > 0 else 0.0
        success = fraction <= epsilon
        if params.keep_trace:
            trace.append(
                IterationRecord(
                    iteration=iteration,
                    sample_size=len(set(sampled_indices)),
                    num_violators=violator_count,
                    violator_weight_fraction=float(fraction),
                    successful=success,
                    basis_indices=basis.indices,
                )
            )
        if violator_count == 0:
            final_basis = basis
            break
        if success:
            pending_violators = per_site_violators
            successful += 1
    else:
        raise IterationLimitError(
            f"coordinator Clarkson did not terminate within {budget} iterations"
        )

    assert final_basis is not None
    resources = ResourceUsage(
        rounds=network.rounds,
        total_communication_bits=network.total_bits,
        max_message_bits=network.max_message_bits,
        machine_count=network.num_sites,
    )
    return SolveResult(
        value=final_basis.value,
        witness=final_basis.witness,
        basis_indices=final_basis.indices,
        iterations=len(trace) if params.keep_trace else network.rounds // 3,
        successful_iterations=successful,
        resources=resources,
        trace=trace,
        metadata={
            "algorithm": "coordinator_clarkson",
            "r": params.r,
            "k": network.num_sites,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
        },
    )
