"""Coordinator-model binding of the Clarkson engine (Theorem 2).

The constraint set is partitioned over ``k`` sites.  Every iteration of
Algorithm 1 is simulated with three coordinator rounds:

1. **weight round** — the coordinator tells every site whether the previous
   iteration succeeded (so the sites update their local weights) and asks
   for the local weight totals ``w(S_i)``;
2. **sampling round** — the coordinator draws a multinomial split of the
   eps-net size over the per-site totals (Lemma 3.7) and sends the count
   ``y_i`` to each site; each site replies with ``y_i`` constraints sampled
   proportionally to its local weights;
3. **violation round** — the coordinator broadcasts the basis (witness plus
   basis constraints) it computed from the union of the samples; each site
   replies with the weight and count of its local violators (measured with
   one vectorised ``violation_mask`` call per site).

This uses ``O(nu * r)`` rounds and
``O~(lambda * nu * n^{1/r} + k)`` constraints of communication per run,
matching Theorem 2 (a constant factor of 3 in rounds over the idealised
accounting, recorded in EXPERIMENTS.md).  Sites keep explicit local weights,
which is allowed: per-site memory is only required to be proportional to its
input share.

The iteration loop itself lives in :class:`repro.core.engine.ClarksonEngine`;
rounds 1-2 happen inside the sampling strategy, round 3 inside the weight
substrate, and a successful iteration's boost is queued as *pending* so the
sites apply it during the next iteration's weight round, exactly as the
protocol prescribes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from ..core.accounting import BitCostModel
from ..core.clarkson import ClarksonParameters, resolve_sampling, solve_small_problem
from ..core.engine import (
    ClarksonEngine,
    EngineConfig,
    SamplingStrategy,
    ViolationOracle,
    ViolationStats,
    WeightSubstrate,
    iteration_budget,
)
from ..core.exceptions import IterationLimitError
from ..core.lptype import BasisResult, LPTypeProblem
from ..core.result import ResourceUsage, SolveResult
from ..core.rng import SeedLike, as_generator, spawn
from ..core.sampling import multinomial_split, weighted_sample_without_replacement
from ..core.weights import ExplicitWeights, boost_factor
from ..models.coordinator import CoordinatorNetwork, Message
from ..models.partition import partition_indices
from ..api.config import CoordinatorConfig
from ..api.registry import register_model, warn_legacy_entry_point

__all__ = ["coordinator_clarkson_solve"]


class _CoordinatorState:
    """State shared between the coordinator sampler and substrate."""

    def __init__(
        self,
        problem: LPTypeProblem,
        network: CoordinatorNetwork,
        oracle: ViolationOracle,
        boost: float,
        cost_model: BitCostModel,
        gen: np.random.Generator,
    ) -> None:
        self.problem = problem
        self.network = network
        self.oracle = oracle
        self.cost_model = cost_model
        self.gen = gen
        self.site_rngs = spawn(gen, network.num_sites)
        self.payload_coeffs = problem.payload_num_coefficients()
        # Per-site explicit weights over the local constraints.
        self.site_weights = [
            ExplicitWeights.uniform(max(1, site.num_local), boost)
            for site in network.sites
        ]
        # Violator positions of the last successful iteration, applied by the
        # sites at the start of the next weight round.
        self.pending_violators: list[np.ndarray] | None = None


class MultinomialSplitSampling(SamplingStrategy):
    """Rounds 1-2 of an iteration: weight totals, then a Lemma 3.7 split."""

    def __init__(self, state: _CoordinatorState) -> None:
        self.state = state

    def draw(self, sample_size: int) -> np.ndarray:
        state = self.state
        network = state.network
        cost_model = state.cost_model

        # ---------------- round 1: weight totals (and weight update) ---------------- #
        network.begin_round()
        local_totals = []
        for site in network.sites:
            flag = 1 if state.pending_violators is not None else 0
            network.coordinator_to_site(
                site.site_id, Message(("update?", flag), cost_model.counters(1))
            )
            if state.pending_violators is not None and site.num_local > 0:
                state.site_weights[site.site_id].multiply(
                    state.pending_violators[site.site_id]
                )
            total = (
                float(np.exp(state.site_weights[site.site_id].total_weight_log()))
                if site.num_local > 0
                else 0.0
            )
            local_totals.append(total)
            network.site_to_coordinator(
                site.site_id, Message(total, cost_model.coefficients(1))
            )
        network.end_round()
        state.pending_violators = None

        # ---------------- round 2: multinomial split and local sampling ---------------- #
        totals = np.asarray(local_totals, dtype=float)
        if totals.sum() <= 0:
            raise IterationLimitError("all site weights vanished; invalid state")
        counts = multinomial_split(totals, sample_size, rng=state.gen)
        network.begin_round()
        sampled_indices: list[int] = []
        for site in network.sites:
            network.coordinator_to_site(
                site.site_id, Message(int(counts[site.site_id]), cost_model.counters(1))
            )
            y = int(min(counts[site.site_id], site.num_local))
            if y > 0:
                local_sample = weighted_sample_without_replacement(
                    state.site_weights[site.site_id].weights(),
                    y,
                    rng=state.site_rngs[site.site_id],
                )
                chosen = site.local_indices[local_sample]
                sampled_indices.extend(int(i) for i in chosen)
                bits = cost_model.coefficients(len(chosen) * state.payload_coeffs)
            else:
                chosen = np.empty(0, dtype=int)
                bits = cost_model.counters(1)
            network.site_to_coordinator(site.site_id, Message(chosen, bits))
        network.end_round()
        return np.asarray(sorted(set(sampled_indices)), dtype=int)


class PartitionedWeightSubstrate(WeightSubstrate):
    """Round 3 of an iteration: basis broadcast plus violation statistics."""

    def __init__(self, state: _CoordinatorState) -> None:
        self.state = state

    def measure(self, sample: np.ndarray, basis: BasisResult) -> ViolationStats:
        state = self.state
        network = state.network
        cost_model = state.cost_model
        basis_bits = cost_model.coefficients(
            (len(basis.indices) + 1) * state.payload_coeffs + state.problem.dimension
        )
        network.begin_round()
        violator_count = 0
        violator_weight = 0.0
        total_weight = 0.0
        per_site_violators: list[np.ndarray] = []
        for site in network.sites:
            network.coordinator_to_site(
                site.site_id, Message(("basis", basis.indices), basis_bits)
            )
            if site.num_local > 0:
                # Positions of the violators inside the site's local arrays.
                mask = state.oracle.mask(basis.witness, site.local_indices)
                positions = np.flatnonzero(mask)
                weights = state.site_weights[site.site_id]
                w_frac = weights.fraction(positions)
                site_total = float(np.exp(weights.total_weight_log()))
                violator_weight += w_frac * site_total
                total_weight += site_total
                violator_count += int(positions.size)
                per_site_violators.append(positions)
            else:
                per_site_violators.append(np.empty(0, dtype=int))
            network.site_to_coordinator(
                site.site_id, Message(("stats",), cost_model.coefficients(2))
            )
        network.end_round()
        fraction = violator_weight / total_weight if total_weight > 0 else 0.0
        return ViolationStats(
            num_violators=violator_count,
            weight_fraction=fraction,
            context=per_site_violators,
        )

    def boost(self, stats: ViolationStats) -> None:
        # The boost is applied by the sites during the next weight round.
        self.state.pending_violators = stats.context


def _coordinator_clarkson_solve(
    problem: LPTypeProblem,
    num_sites: int = 4,
    r: int = 2,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Coordinator driver body; see :func:`coordinator_clarkson_solve`.

    Internal entry point used by ``repro.solve(problem, model="coordinator")``;
    identical to the public shim minus the deprecation warning.
    """
    base_params = params or ClarksonParameters()
    params = replace(base_params, r=r)
    gen = as_generator(rng)
    n = problem.num_constraints
    cost_model = cost_model or BitCostModel()

    if partition is None:
        partition = partition_indices(n, num_sites, method="round_robin")
    network = CoordinatorNetwork(partition, cost_model=cost_model)

    sample_size, epsilon = resolve_sampling(problem, params)
    payload_coeffs = problem.payload_num_coefficients()

    if sample_size >= n:
        # Cheaper to ship everything to the coordinator in one round.
        network.begin_round()
        for site in network.sites:
            network.coordinator_to_site(site.site_id, Message("send-all", cost_model.counters(1)))
            network.site_to_coordinator(
                site.site_id,
                Message(site.local_indices, cost_model.coefficients(site.num_local * payload_coeffs)),
            )
        network.end_round()
        result = solve_small_problem(problem)
        result.resources.rounds = network.rounds
        result.resources.total_communication_bits = network.total_bits
        result.resources.max_message_bits = network.max_message_bits
        result.resources.machine_count = network.num_sites
        result.metadata.update({"algorithm": "coordinator_clarkson", "r": params.r, "k": network.num_sites})
        return result

    boost = params.boost if params.boost is not None else boost_factor(n, params.r)
    state = _CoordinatorState(
        problem=problem,
        network=network,
        oracle=ViolationOracle(problem),
        boost=boost,
        cost_model=cost_model,
        gen=gen,
    )
    engine = ClarksonEngine(
        problem=problem,
        sampler=MultinomialSplitSampling(state),
        substrate=PartitionedWeightSubstrate(state),
        config=EngineConfig(
            sample_size=sample_size,
            epsilon=epsilon,
            budget=iteration_budget(problem, params.r, params.max_iterations),
            keep_trace=params.keep_trace,
            name="coordinator Clarkson",
            basis_cache=params.basis_cache,
        ),
    )
    outcome = engine.run()

    resources = ResourceUsage(
        rounds=network.rounds,
        total_communication_bits=network.total_bits,
        max_message_bits=network.max_message_bits,
        machine_count=network.num_sites,
        oracle_calls=state.oracle.calls,
        basis_cache_hits=outcome.cache_hits,
        basis_cache_misses=outcome.cache_misses,
    )
    return SolveResult(
        value=outcome.basis.value,
        witness=outcome.basis.witness,
        basis_indices=outcome.basis.indices,
        iterations=outcome.iterations,
        successful_iterations=outcome.successful_iterations,
        resources=resources,
        trace=outcome.trace,
        metadata={
            "algorithm": "coordinator_clarkson",
            "r": params.r,
            "k": network.num_sites,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
        },
    )


def coordinator_clarkson_solve(
    problem: LPTypeProblem,
    num_sites: int = 4,
    r: int = 2,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve an LP-type problem in the coordinator model.

    .. deprecated:: 1.1
        Use ``repro.solve(problem, model="coordinator")`` instead; this shim
        emits a :class:`DeprecationWarning` and forwards to the same
        implementation.

    Parameters
    ----------
    problem:
        The LP-type problem (shared read-only by the simulator; sites only
        touch their own indices).
    num_sites:
        Number of sites ``k`` (ignored if ``partition`` is given).
    r:
        Round/communication trade-off parameter of Theorem 2.
    partition:
        Optional explicit partition of the constraint indices over the sites.
    params:
        Meta-algorithm parameters (``params.r`` is overridden by ``r``).
    cost_model:
        Bit-cost model used for the communication accounting.
    rng:
        Randomness (coordinator and per-site generators are derived from it).

    Returns
    -------
    SolveResult
        ``resources.rounds`` and ``resources.total_communication_bits`` carry
        the coordinator-model costs.
    """
    warn_legacy_entry_point("coordinator_clarkson_solve", "coordinator")
    return _coordinator_clarkson_solve(
        problem,
        num_sites=num_sites,
        r=r,
        partition=partition,
        params=params,
        cost_model=cost_model,
        rng=rng,
    )


@register_model(
    "coordinator",
    config_cls=CoordinatorConfig,
    description=(
        "Coordinator-model Clarkson (Theorem 2): per-site explicit weights, "
        "three rounds per iteration, O~(n^{1/r} + k) communication."
    ),
    currencies=(
        "rounds",
        "total_communication_bits",
        "max_message_bits",
        "machine_count",
    ),
    replaces="coordinator_clarkson_solve",
)
def _run_coordinator(problem: LPTypeProblem, config: CoordinatorConfig) -> SolveResult:
    return _coordinator_clarkson_solve(
        problem,
        num_sites=config.num_sites,
        r=config.r,
        partition=config.partition,
        params=config.to_parameters(),
        cost_model=config.cost_model,
        rng=config.seed,
    )
