"""MPC binding of the Clarkson engine (Theorem 3).

The constraint set is partitioned over ``k`` machines with roughly ``n^delta``
constraints each; machine 0 plays the role of the coordinator.  Because the
coordinator machine cannot receive a message from every other machine in a
single round without blowing up its load, the coordinator-model protocol is
simulated with the standard tree primitives of Goodrich et al. [23]:

* the per-iteration basis (and the success flag) is **broadcast** through an
  ``n^delta``-ary tree in ``O(1/delta)`` rounds;
* the total constraint weight is computed by an **aggregation** tree in
  ``O(1/delta)`` rounds;
* every machine then samples its share of the eps-net locally (it knows its
  own weights — they are implicit in the broadcast bases, evaluated in one
  vectorised ``violation_count_matrix`` sweep per machine — and the total
  weight) and ships the sample directly to the coordinator; the sample fits
  in the coordinator's ``O~(n^delta)`` load by the choice of the eps-net
  size.

With ``r = ceil(1/delta)`` iterations of Algorithm 1 behaving as in the
coordinator model, the total round count is ``O(nu / delta^2)`` and the
per-machine load is ``O~(lambda * nu^2 * n^delta)`` bits, matching Theorem 3.

The iteration loop itself lives in :class:`repro.core.engine.ClarksonEngine`;
the aggregation/sampling trees run inside the sampling strategy, the
basis-broadcast and statistics trees inside the weight substrate.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Sequence

import numpy as np

from ..core.accounting import BitCostModel
from ..core.clarkson import ClarksonParameters, resolve_sampling, solve_small_problem
from ..core.engine import (
    ClarksonEngine,
    EngineConfig,
    SamplingStrategy,
    ViolationOracle,
    ViolationStats,
    WeightSubstrate,
    iteration_budget,
)
from ..core.exceptions import IterationLimitError
from ..core.lptype import BasisResult, LPTypeProblem
from ..core.result import ResourceUsage, SolveResult
from ..core.rng import SeedLike, as_generator, spawn
from ..core.sampling import gumbel_top_k
from ..core.weights import boost_factor
from ..models.mpc import MPCCluster
from ..models.partition import partition_indices
from ..api.config import MPCConfig
from ..api.registry import register_model, warn_legacy_entry_point

__all__ = ["mpc_clarkson_solve", "machines_for_load"]

_COORDINATOR = 0


def machines_for_load(num_constraints: int, delta: float) -> int:
    """Number of machines ``~ n^(1 - delta)`` needed for load ``~ n^delta``."""
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    if num_constraints < 1:
        raise ValueError("num_constraints must be >= 1")
    return max(1, int(math.ceil(num_constraints ** (1.0 - delta))))


class _MPCState:
    """State shared between the MPC sampler and substrate."""

    def __init__(
        self,
        problem: LPTypeProblem,
        cluster: MPCCluster,
        oracle: ViolationOracle,
        boost: float,
        fanout: int,
        cost_model: BitCostModel,
        gen: np.random.Generator,
    ) -> None:
        self.problem = problem
        self.cluster = cluster
        self.oracle = oracle
        self.boost = boost
        self.fanout = fanout
        self.cost_model = cost_model
        self.machine_rngs = spawn(gen, cluster.num_machines)
        self.payload_coeffs = problem.payload_num_coefficients()
        # Every machine stores the broadcast bases and derives its local
        # weights from them (implicit weights, exactly as in the streaming
        # driver).
        self.stored_witnesses: list[object] = []
        self.total_weight = 0.0
        self._all_indices = problem.all_indices()
        self._weights_cache: np.ndarray | None = None
        self._log_weights_cache: np.ndarray | None = None
        self._weights_version = -1

    def global_implicit_weights(self) -> np.ndarray:
        """Relative implicit weights of every constraint, one sweep per state.

        Each machine's weights depend only on its own constraints and the
        globally broadcast bases, so the simulator evaluates the whole weight
        vector in one ``violation_count_matrix`` call per stored-basis state
        and hands each machine its slice — the values are identical to
        per-machine evaluation (the exponent of row ``i`` involves only row
        ``i``), just without a Python-level loop over ``~n^{1-delta}``
        machines.  Weights are relative to ``boost ** num_bases`` to stay
        finite.
        """
        version = len(self.stored_witnesses)
        if self._weights_version != version:
            exponents = self.oracle.count_matrix(self.stored_witnesses, self._all_indices)
            relative = (exponents - version).astype(float)
            self._log_weights_cache = relative * float(np.log(self.boost))
            self._weights_cache = self.boost ** relative
            self._weights_version = version
        return self._weights_cache

    def global_log_weights(self) -> np.ndarray:
        """``log`` of :meth:`global_implicit_weights` (for Gumbel top-k draws)."""
        self.global_implicit_weights()
        return self._log_weights_cache

    def local_weights(self, machine_indices: np.ndarray) -> np.ndarray:
        """Implicit weights of one machine's constraints (a global-sweep slice)."""
        return self.global_implicit_weights()[machine_indices]


class TreeRoundSampling(SamplingStrategy):
    """Weight aggregation tree plus the direct-to-coordinator sampling round."""

    def __init__(self, state: _MPCState) -> None:
        self.state = state

    def draw(self, sample_size: int) -> np.ndarray:
        state = self.state
        cluster = state.cluster
        cost_model = state.cost_model

        # -------- total weight via an aggregation tree -------- #
        machine_totals = [
            float(state.local_weights(m.local_indices).sum()) if m.num_local else 0.0
            for m in cluster.machines
        ]
        _, total_weight = cluster.aggregate_tree(
            _COORDINATOR,
            cost_model.coefficients(1),
            state.fanout,
            values=machine_totals,
            combine=lambda a, b: (a or 0.0) + (b or 0.0),
        )
        total_weight = float(total_weight)
        if total_weight <= 0:
            raise IterationLimitError("all machine weights vanished; invalid state")
        state.total_weight = total_weight

        # -------- local sampling, shipped to the coordinator -------- #
        cluster.begin_round()
        sampled_indices: list[int] = []
        log_weights_all = state.global_log_weights()
        for machine in cluster.machines:
            if machine.num_local == 0:
                continue
            weights = state.local_weights(machine.local_indices)
            share = float(weights.sum()) / total_weight
            draws = int(
                state.machine_rngs[machine.machine_id].binomial(
                    sample_size, min(1.0, share)
                )
            )
            draws = min(draws, machine.num_local)
            if draws == 0:
                continue
            # Gumbel top-k on the machine's log weights: the same successive
            # weighted sampling without replacement as ``Generator.choice``
            # with probabilities, at one vectorised key draw per machine.
            chosen_positions = gumbel_top_k(
                log_weights_all[machine.local_indices],
                draws,
                rng=state.machine_rngs[machine.machine_id],
            )
            chosen = machine.local_indices[chosen_positions]
            sampled_indices.extend(int(i) for i in chosen)
            if machine.machine_id != _COORDINATOR:
                cluster.send(
                    machine.machine_id,
                    _COORDINATOR,
                    cost_model.coefficients(draws * state.payload_coeffs),
                )
        cluster.end_round()
        return np.asarray(sorted(set(sampled_indices)), dtype=int)


class TreeImplicitSubstrate(WeightSubstrate):
    """Basis broadcast plus violation-statistics aggregation, both via trees."""

    def __init__(self, state: _MPCState) -> None:
        self.state = state

    def measure(self, sample: np.ndarray, basis: BasisResult) -> ViolationStats:
        state = self.state
        cluster = state.cluster
        cost_model = state.cost_model

        # -------- broadcast the basis through the tree -------- #
        basis_bits = cost_model.coefficients(
            (len(basis.indices) + 1) * state.payload_coeffs + state.problem.dimension
        )
        cluster.broadcast_tree(_COORDINATOR, basis_bits, state.fanout)

        # -------- violation statistics via an aggregation tree -------- #
        # One global sweep for the weights and the mask; each machine's
        # statistics are slices of it (identical values, no per-machine call).
        per_machine_stats = []
        weights_all = state.global_implicit_weights()
        mask_all = state.oracle.mask(basis.witness, state._all_indices)
        for machine in cluster.machines:
            if machine.num_local == 0:
                per_machine_stats.append((0.0, 0))
                continue
            weights = weights_all[machine.local_indices]
            mask = mask_all[machine.local_indices]
            per_machine_stats.append((float(weights[mask].sum()), int(mask.sum())))
        _, aggregate = cluster.aggregate_tree(
            _COORDINATOR,
            cost_model.coefficients(2),
            state.fanout,
            values=per_machine_stats,
            combine=lambda a, b: (
                (a or (0.0, 0))[0] + (b or (0.0, 0))[0],
                (a or (0.0, 0))[1] + (b or (0.0, 0))[1],
            ),
        )
        violator_weight, violator_count = aggregate
        fraction = (
            violator_weight / state.total_weight if state.total_weight > 0 else 0.0
        )
        return ViolationStats(
            num_violators=int(violator_count),
            weight_fraction=float(fraction),
            context=basis.witness,
        )

    def boost(self, stats: ViolationStats) -> None:
        state = self.state
        state.stored_witnesses.append(stats.context)
        # The success flag rides along with the next basis broadcast; a
        # dedicated one-counter broadcast keeps the accounting explicit.
        state.cluster.broadcast_tree(
            _COORDINATOR, state.cost_model.counters(1), state.fanout
        )


def _mpc_clarkson_solve(
    problem: LPTypeProblem,
    delta: float = 0.5,
    num_machines: int | None = None,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """MPC driver body; see :func:`mpc_clarkson_solve`.

    Internal entry point used by ``repro.solve(problem, model="mpc")``;
    identical to the public shim minus the deprecation warning.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    base_params = params or ClarksonParameters()
    r = max(1, int(math.ceil(1.0 / delta)))
    params = replace(base_params, r=r)
    gen = as_generator(rng)
    n = problem.num_constraints
    cost_model = cost_model or BitCostModel()

    k = num_machines or machines_for_load(n, delta)
    if partition is None:
        partition = partition_indices(n, k, method="round_robin")
    cluster = MPCCluster(partition, cost_model=cost_model)
    fanout = max(2, int(math.ceil(n ** delta)))
    payload_coeffs = problem.payload_num_coefficients()

    sample_size, epsilon = resolve_sampling(problem, params)

    if sample_size >= n or cluster.num_machines == 1:
        # Everything fits on the coordinator: aggregate the constraints once.
        if cluster.num_machines > 1:
            per_machine_bits = cost_model.coefficients(
                max(m.num_local for m in cluster.machines) * payload_coeffs
            )
            cluster.aggregate_tree(_COORDINATOR, per_machine_bits, fanout)
        result = solve_small_problem(problem)
        result.resources.rounds = cluster.rounds
        result.resources.max_machine_load_bits = cluster.max_load_bits
        result.resources.total_communication_bits = cluster.total_bits
        result.resources.machine_count = cluster.num_machines
        result.metadata.update({"algorithm": "mpc_clarkson", "delta": delta, "k": cluster.num_machines})
        return result

    boost = params.boost if params.boost is not None else boost_factor(n, params.r)
    state = _MPCState(
        problem=problem,
        cluster=cluster,
        oracle=ViolationOracle(problem),
        boost=boost,
        fanout=fanout,
        cost_model=cost_model,
        gen=gen,
    )
    engine = ClarksonEngine(
        problem=problem,
        sampler=TreeRoundSampling(state),
        substrate=TreeImplicitSubstrate(state),
        config=EngineConfig(
            sample_size=sample_size,
            epsilon=epsilon,
            budget=iteration_budget(problem, params.r, params.max_iterations),
            keep_trace=params.keep_trace,
            name="MPC Clarkson",
            basis_cache=params.basis_cache,
        ),
    )
    outcome = engine.run()

    resources = ResourceUsage(
        rounds=cluster.rounds,
        max_machine_load_bits=cluster.max_load_bits,
        total_communication_bits=cluster.total_bits,
        machine_count=cluster.num_machines,
        oracle_calls=state.oracle.calls,
        basis_cache_hits=outcome.cache_hits,
        basis_cache_misses=outcome.cache_misses,
    )
    return SolveResult(
        value=outcome.basis.value,
        witness=outcome.basis.witness,
        basis_indices=outcome.basis.indices,
        iterations=outcome.iterations,
        successful_iterations=outcome.successful_iterations,
        resources=resources,
        trace=outcome.trace,
        metadata={
            "algorithm": "mpc_clarkson",
            "delta": delta,
            "r": params.r,
            "k": cluster.num_machines,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
            "fanout": fanout,
        },
    )


def mpc_clarkson_solve(
    problem: LPTypeProblem,
    delta: float = 0.5,
    num_machines: int | None = None,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve an LP-type problem in the MPC model.

    .. deprecated:: 1.1
        Use ``repro.solve(problem, model="mpc")`` instead; this shim emits a
        :class:`DeprecationWarning` and forwards to the same implementation.

    Parameters
    ----------
    problem:
        The LP-type problem.
    delta:
        Load exponent: per-machine load is ``O~(n^delta)`` and the number of
        rounds is ``O(nu / delta^2)``.
    num_machines:
        Number of machines (default ``ceil(n^(1-delta))``).
    partition:
        Optional explicit partition of constraint indices over machines.
    params:
        Meta-algorithm parameters; ``r = ceil(1/delta)`` is derived from
        ``delta``.
    cost_model:
        Bit-cost model for the load accounting.
    rng:
        Randomness.

    Returns
    -------
    SolveResult
        ``resources.rounds`` and ``resources.max_machine_load_bits`` carry
        the MPC costs.
    """
    warn_legacy_entry_point("mpc_clarkson_solve", "mpc")
    return _mpc_clarkson_solve(
        problem,
        delta=delta,
        num_machines=num_machines,
        partition=partition,
        params=params,
        cost_model=cost_model,
        rng=rng,
    )


@register_model(
    "mpc",
    config_cls=MPCConfig,
    description=(
        "MPC Clarkson (Theorem 3): implicit weights with tree "
        "broadcast/aggregation, O(nu/delta^2) rounds, O~(n^delta) load per "
        "machine."
    ),
    currencies=(
        "rounds",
        "max_machine_load_bits",
        "total_communication_bits",
        "machine_count",
    ),
    replaces="mpc_clarkson_solve",
)
def _run_mpc(problem: LPTypeProblem, config: MPCConfig) -> SolveResult:
    return _mpc_clarkson_solve(
        problem,
        delta=config.delta,
        num_machines=config.num_machines,
        partition=config.partition,
        params=config.to_parameters(),
        cost_model=config.cost_model,
        rng=config.seed,
    )
