"""MPC binding of the Clarkson engine (Theorem 3), on the fabric.

The constraint set is partitioned over ``k`` machines with roughly ``n^delta``
constraints each; machine 0 plays the role of the coordinator.  Because the
coordinator machine cannot receive a message from every other machine in a
single round without blowing up its load, the coordinator-model protocol is
simulated with the standard tree primitives of Goodrich et al. [23]:

* the per-iteration basis (a measured
  :class:`~repro.fabric.payload.BasisPayload`) and the success flag are
  **broadcast** through an ``n^delta``-ary tree in ``O(1/delta)`` rounds;
* the total constraint weight is computed by an **aggregation** tree in
  ``O(1/delta)`` rounds;
* every machine then samples its share of the eps-net locally (its weights
  are implicit in the broadcast bases it stores, evaluated in one vectorised
  ``violation_count_matrix`` sweep per machine, cached per basis version)
  and ships the sample — a measured
  :class:`~repro.fabric.payload.ConstraintBlock` — directly to the
  coordinator; the sample fits in the coordinator's ``O~(n^delta)`` load by
  the choice of the eps-net size.

All communication flows through a
:class:`~repro.fabric.topology.GridTopology`; machine state (local indices,
the stored bases, the per-machine RNG derived from the run seed) lives with
the configured :class:`~repro.fabric.transport.Transport` — in-process by
default, real worker processes with ``TransportConfig(kind="process")`` —
with bit-identical results either way.

With ``r = ceil(1/delta)`` iterations of Algorithm 1 behaving as in the
coordinator model, the total round count is ``O(nu / delta^2)`` and the
per-machine load is ``O~(lambda * nu^2 * n^delta)`` bits, matching Theorem 3.

The iteration loop itself lives in :class:`repro.core.engine.ClarksonEngine`;
the aggregation/sampling trees run inside the sampling strategy, the
basis-broadcast and statistics trees inside the weight substrate.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from .. import kernels
from ..core.accounting import BitCostModel
from ..core.clarkson import (
    ClarksonParameters,
    _warm_stats,
    resolve_sampling,
    solve_small_problem,
)
from ..core.engine import (
    ClarksonEngine,
    EngineConfig,
    SamplingStrategy,
    ViolationOracle,
    ViolationStats,
    WeightSubstrate,
    iteration_budget,
)
from ..core.exceptions import IterationLimitError
from ..core.lptype import BasisResult, LPTypeProblem
from ..core.result import ResourceUsage, SolveResult
from ..core.rng import SeedLike, as_generator, spawn
from ..core.sampling import gumbel_top_k
from ..core.weights import boost_factor
from ..fabric.payload import (
    BasisPayload,
    ConstraintBlock,
    Flag,
    Scalar,
    StatsBlock,
    constraint_rows,
    encode_witness_vector,
)
from ..fabric.topology import GridTopology
from ..fabric.transport import SharedRef, resolve_transport
from ..models.partition import partition_indices
from ..api.config import MPCConfig, TransportConfig
from ..api.registry import register_model, warn_legacy_entry_point

__all__ = ["mpc_clarkson_solve", "machines_for_load"]

_COORDINATOR = 0


def machines_for_load(num_constraints: int, delta: float) -> int:
    """Number of machines ``~ n^(1 - delta)`` needed for load ``~ n^delta``."""
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    if num_constraints < 1:
        raise ValueError("num_constraints must be >= 1")
    return max(1, int(math.ceil(num_constraints ** (1.0 - delta))))


# ---------------------------------------------------------------------- #
# Machine tasks: top-level functions so the process transport can ship them.
# Each takes the machine state dict, returns ``(state, result)``.
# ---------------------------------------------------------------------- #


def _machine_weights(state: dict) -> tuple[np.ndarray, np.ndarray]:
    """Implicit weights of this machine's constraints, cached per version.

    The weight of constraint ``i`` is ``boost ** a_i`` where ``a_i`` counts
    the stored bases it violates; values are kept relative to
    ``boost ** num_bases`` to stay finite.  Recomputed only when a new basis
    arrived since the last call.
    """
    version = len(state["witnesses"])
    if state.get("weights_version") != version:
        with kernels.use_backend(state.get("kernel")):
            exponents = state["problem"].violation_count_matrix(
                state["witnesses"], state["local_indices"]
            )
        relative = (exponents - version).astype(float)
        state["log_weights"] = relative * float(np.log(state["boost"]))
        state["weights"] = state["boost"] ** relative
        state["weights_version"] = version
    return state["weights"], state["log_weights"]


def _machine_weight_total(state: dict) -> tuple[dict, float]:
    """Aggregation-tree leaf value: this machine's total implicit weight."""
    if state["local_indices"].size == 0:
        return state, 0.0
    weights, _ = _machine_weights(state)
    return state, float(weights.sum())


def _machine_sample(
    state: dict, sample_size: int, total_weight: float
) -> tuple[dict, Optional[ConstraintBlock]]:
    """Draw this machine's binomial share of the eps-net (Gumbel top-k)."""
    if state["local_indices"].size == 0:
        return state, None
    weights, log_weights = _machine_weights(state)
    share = float(weights.sum()) / total_weight
    draws = int(state["rng"].binomial(sample_size, min(1.0, share)))
    draws = min(draws, int(state["local_indices"].size))
    if draws == 0:
        return state, None
    with kernels.use_backend(state.get("kernel")):
        chosen_positions = gumbel_top_k(log_weights, draws, rng=state["rng"])
    chosen = state["local_indices"][chosen_positions]
    return state, ConstraintBlock(
        indices=chosen, rows=constraint_rows(state["problem"], chosen)
    )


def _machine_stats(state: dict, witness) -> tuple[dict, tuple[float, int]]:
    """Violator weight and count of this machine against one witness.

    One fused kernel sweep per machine: mask, count, and violated-weight sum
    come out of a single blocked pass over the machine's local constraints.
    """
    if state["local_indices"].size == 0:
        return state, (0.0, 0)
    weights, _ = _machine_weights(state)
    with kernels.use_backend(state.get("kernel")):
        stats = state["problem"].violation_sweep(
            witness, state["local_indices"], weights=weights, need_total=False
        )
    return state, (float(stats.violated_weight), int(stats.count))


def _machine_store_witness(state: dict, witness) -> tuple[dict, None]:
    """A successful iteration's basis arrived: extend the implicit weights."""
    state["witnesses"].append(witness)
    return state, None


class _MPCState:
    """Coordinator-side run state shared between the MPC sampler and substrate."""

    def __init__(
        self,
        problem: LPTypeProblem,
        topology: GridTopology,
        oracle: ViolationOracle,
        boost: float,
        fanout: int,
        gen: np.random.Generator,
        warm_witnesses: Sequence | None = None,
        kernel_backend: str | None = None,
    ) -> None:
        self.problem = problem
        self.topology = topology
        self.oracle = oracle
        self.boost = boost
        self.fanout = fanout
        self.gen = gen
        self.kernel_backend = kernel_backend
        self.machine_sizes: list[int] = []
        self.total_weight = 0.0
        # Warm re-solves (session API) seed every machine's stored bases
        # with the prior run's successful-iteration witnesses; the prior run
        # broadcast them machine-wide already, so the carry costs no rounds.
        self.warm_witnesses = list(warm_witnesses) if warm_witnesses else []
        self.num_bases = len(self.warm_witnesses)
        self._counted_version = -1

    def install_machines(self, partition: Sequence[np.ndarray]) -> None:
        machine_rngs = spawn(self.gen, self.topology.num_machines)
        # One shipped copy of the problem per transport worker, not per machine.
        self.topology.share("problem", self.problem)
        for machine_id, local in enumerate(partition):
            local = np.asarray(local, dtype=int)
            self.machine_sizes.append(int(local.size))
            self.topology.init_state(
                machine_id,
                {
                    "problem": SharedRef("problem"),
                    "local_indices": local,
                    "rng": machine_rngs[machine_id],
                    "witnesses": list(self.warm_witnesses),
                    "boost": self.boost,
                    "weights_version": -1,
                    "kernel": self.kernel_backend,
                },
            )

    def note_weight_sweep(self) -> None:
        """Count the per-machine implicit-weight sweeps, once per version."""
        if self._counted_version != self.num_bases:
            self.oracle.record_external(
                sum(1 for size in self.machine_sizes if size),
                sum(self.machine_sizes),
            )
            self._counted_version = self.num_bases


class TreeRoundSampling(SamplingStrategy):
    """Weight aggregation tree plus the direct-to-coordinator sampling round."""

    def __init__(self, state: _MPCState) -> None:
        self.state = state

    def draw(self, sample_size: int) -> np.ndarray:
        state = self.state
        topology = state.topology
        k = topology.num_machines

        # -------- total weight via an aggregation tree -------- #
        state.note_weight_sweep()
        machine_totals = topology.run_all(_machine_weight_total, [()] * k)
        _, total_weight = topology.aggregate_tree(
            _COORDINATOR,
            Scalar(0.0),
            state.fanout,
            values=machine_totals,
            combine=lambda a, b: (a or 0.0) + (b or 0.0),
        )
        total_weight = float(total_weight)
        if total_weight <= 0:
            raise IterationLimitError("all machine weights vanished; invalid state")
        state.total_weight = total_weight

        # -------- local sampling, shipped to the coordinator -------- #
        topology.begin_round()
        blocks = topology.run_all(
            _machine_sample, [(sample_size, total_weight)] * k
        )
        sampled: set[int] = set()
        for machine_id, block in enumerate(blocks):
            if block is None:
                continue
            if machine_id != _COORDINATOR:
                block = topology.send(machine_id, _COORDINATOR, block)
            sampled.update(int(i) for i in block.indices)
        topology.end_round()
        return np.asarray(sorted(sampled), dtype=int)


class TreeImplicitSubstrate(WeightSubstrate):
    """Basis broadcast plus violation-statistics aggregation, both via trees."""

    def __init__(self, state: _MPCState) -> None:
        self.state = state

    def measure(self, sample: np.ndarray, basis: BasisResult) -> ViolationStats:
        state = self.state
        topology = state.topology
        k = topology.num_machines
        problem = state.problem

        # -------- broadcast the basis through the tree -------- #
        basis_idx = np.asarray(basis.indices, dtype=int)
        payload = BasisPayload(
            indices=basis_idx,
            rows=constraint_rows(problem, basis_idx),
            witness=encode_witness_vector(problem, basis.witness),
        )
        topology.broadcast_tree(_COORDINATOR, payload, state.fanout)

        # -------- violation statistics via an aggregation tree -------- #
        per_machine_stats = topology.run_all(_machine_stats, [(basis.witness,)] * k)
        state.oracle.record_external(
            sum(1 for size in state.machine_sizes if size), sum(state.machine_sizes)
        )
        _, aggregate = topology.aggregate_tree(
            _COORDINATOR,
            StatsBlock(np.zeros(2)),
            state.fanout,
            values=per_machine_stats,
            combine=lambda a, b: (
                (a or (0.0, 0))[0] + (b or (0.0, 0))[0],
                (a or (0.0, 0))[1] + (b or (0.0, 0))[1],
            ),
        )
        violator_weight, violator_count = aggregate
        fraction = (
            violator_weight / state.total_weight if state.total_weight > 0 else 0.0
        )
        return ViolationStats(
            num_violators=int(violator_count),
            weight_fraction=float(fraction),
            context=basis.witness,
        )

    def boost(self, stats: ViolationStats) -> None:
        state = self.state
        topology = state.topology
        # The success flag rides along with the next basis broadcast; a
        # dedicated one-counter broadcast keeps the accounting explicit.  The
        # machines extend their stored bases with the witness they received.
        topology.run_all(
            _machine_store_witness, [(stats.context,)] * topology.num_machines
        )
        state.num_bases += 1
        topology.broadcast_tree(_COORDINATOR, Flag("success", 1), state.fanout)


def _mpc_clarkson_solve(
    problem: LPTypeProblem,
    delta: float = 0.5,
    num_machines: int | None = None,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
    transport: Optional[TransportConfig] = None,
    warm_witnesses: list | None = None,
) -> SolveResult:
    """MPC driver body; see :func:`mpc_clarkson_solve`.

    Internal entry point used by ``repro.solve(problem, model="mpc")``;
    identical to the public shim minus the deprecation warning.
    ``warm_witnesses`` (session API) seeds every machine's implicit
    stored-bases weights with a prior run's successful-iteration witnesses.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    base_params = params or ClarksonParameters()
    r = max(1, int(math.ceil(1.0 / delta)))
    params = replace(base_params, r=r)
    gen = as_generator(rng)
    n = problem.num_constraints
    cost_model = cost_model or BitCostModel()

    k = num_machines or machines_for_load(n, delta)
    if partition is None:
        partition = partition_indices(n, k, method="round_robin")
    topology = GridTopology(
        len(partition), transport=resolve_transport(transport), cost_model=cost_model
    )
    fanout = max(2, int(math.ceil(n ** delta)))

    sample_size, epsilon = resolve_sampling(problem, params)
    boost = params.boost if params.boost is not None else boost_factor(n, params.r)
    backend = kernels.resolve_backend_name(params.kernel_backend)

    state = _MPCState(
        problem=problem,
        topology=topology,
        oracle=ViolationOracle(problem),
        boost=boost,
        fanout=fanout,
        gen=gen,
        warm_witnesses=warm_witnesses,
        kernel_backend=backend,
    )
    try:
        state.install_machines(partition)

        if sample_size >= n or topology.num_machines == 1:
            # Everything fits on the coordinator: aggregate the constraints once.
            if topology.num_machines > 1:
                largest = max(
                    (m for m in partition), key=lambda m: np.asarray(m).size
                )
                largest = np.asarray(largest, dtype=int)
                topology.aggregate_tree(
                    _COORDINATOR,
                    ConstraintBlock(
                        indices=largest, rows=constraint_rows(problem, largest)
                    ),
                    fanout,
                )
            with kernels.use_backend(backend):
                result = solve_small_problem(problem)
            result.resources.rounds = topology.rounds
            result.resources.max_machine_load_bits = topology.max_load_bits
            result.resources.total_communication_bits = topology.total_bits
            result.resources.max_message_bits = topology.max_message_bits
            result.resources.machine_count = topology.num_machines
            result.resources.per_round = topology.ledger.as_table()
            result.metadata.update(
                {
                    "algorithm": "mpc_clarkson",
                    "delta": delta,
                    "k": topology.num_machines,
                    "transport": topology.transport.name,
                    "kernel_backend": backend,
                }
            )
            result.warm = _warm_stats(warm_witnesses, [])
            return result

        engine = ClarksonEngine(
            problem=problem,
            sampler=TreeRoundSampling(state),
            substrate=TreeImplicitSubstrate(state),
            config=EngineConfig(
                sample_size=sample_size,
                epsilon=epsilon,
                budget=iteration_budget(problem, params.r, params.max_iterations),
                keep_trace=params.keep_trace,
                name="MPC Clarkson",
                basis_cache=params.basis_cache,
            ),
        )
        with kernels.use_backend(backend):
            outcome = engine.run()
    finally:
        topology.close()

    resources = ResourceUsage(
        rounds=topology.rounds,
        max_machine_load_bits=topology.max_load_bits,
        total_communication_bits=topology.total_bits,
        max_message_bits=topology.max_message_bits,
        machine_count=topology.num_machines,
        oracle_calls=state.oracle.calls,
        basis_cache_hits=outcome.cache_hits,
        basis_cache_misses=outcome.cache_misses,
        per_round=topology.ledger.as_table(),
    )
    return SolveResult(
        value=outcome.basis.value,
        witness=outcome.basis.witness,
        basis_indices=outcome.basis.indices,
        iterations=outcome.iterations,
        successful_iterations=outcome.successful_iterations,
        resources=resources,
        trace=outcome.trace,
        metadata={
            "algorithm": "mpc_clarkson",
            "delta": delta,
            "r": params.r,
            "k": topology.num_machines,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
            "fanout": fanout,
            "transport": topology.transport.name,
            "kernel_backend": backend,
        },
        warm=_warm_stats(warm_witnesses, outcome.successful_witnesses),
    )


def mpc_clarkson_solve(
    problem: LPTypeProblem,
    delta: float = 0.5,
    num_machines: int | None = None,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve an LP-type problem in the MPC model.

    .. deprecated:: 1.1
        Use ``repro.solve(problem, model="mpc")`` instead; this shim emits a
        :class:`DeprecationWarning` and forwards to the same implementation.

    Parameters
    ----------
    problem:
        The LP-type problem.
    delta:
        Load exponent: per-machine load is ``O~(n^delta)`` and the number of
        rounds is ``O(nu / delta^2)``.
    num_machines:
        Number of machines (default ``ceil(n^(1-delta))``).
    partition:
        Optional explicit partition of constraint indices over machines.
    params:
        Meta-algorithm parameters; ``r = ceil(1/delta)`` is derived from
        ``delta``.
    cost_model:
        Bit-cost model for the load accounting.
    rng:
        Randomness.

    Returns
    -------
    SolveResult
        ``resources.rounds`` and ``resources.max_machine_load_bits`` carry
        the MPC costs; ``result.communication`` has the per-round trace.
    """
    warn_legacy_entry_point("mpc_clarkson_solve", "mpc")
    return _mpc_clarkson_solve(
        problem,
        delta=delta,
        num_machines=num_machines,
        partition=partition,
        params=params,
        cost_model=cost_model,
        rng=rng,
    )


def _run_mpc(
    problem: LPTypeProblem, config: MPCConfig, warm_witnesses=None
) -> SolveResult:
    """Runner and warm-runner in one (the session passes ``warm_witnesses``),
    so the cold and warm paths can never drift in config handling."""
    return _mpc_clarkson_solve(
        problem,
        delta=config.delta,
        num_machines=config.num_machines,
        partition=config.partition,
        params=config.to_parameters(),
        cost_model=config.cost_model,
        rng=config.seed,
        transport=config.transport,
        warm_witnesses=warm_witnesses,
    )


register_model(
    "mpc",
    _run_mpc,
    config_cls=MPCConfig,
    description=(
        "MPC Clarkson (Theorem 3): implicit weights with tree "
        "broadcast/aggregation, O(nu/delta^2) rounds, O~(n^delta) load per "
        "machine."
    ),
    currencies=(
        "rounds",
        "max_machine_load_bits",
        "total_communication_bits",
        "machine_count",
    ),
    replaces="mpc_clarkson_solve",
    transports=("inprocess", "process", "tcp"),
    warm_runner=_run_mpc,
    capabilities=("warm_restart", "ingest"),
)
