"""MPC implementation of the meta-algorithm (Theorem 3).

The constraint set is partitioned over ``k`` machines with roughly ``n^delta``
constraints each; machine 0 plays the role of the coordinator.  Because the
coordinator machine cannot receive a message from every other machine in a
single round without blowing up its load, the coordinator-model protocol is
simulated with the standard tree primitives of Goodrich et al. [23]:

* the per-iteration basis (and the success flag) is **broadcast** through an
  ``n^delta``-ary tree in ``O(1/delta)`` rounds;
* the total constraint weight is computed by an **aggregation** tree in
  ``O(1/delta)`` rounds;
* every machine then samples its share of the eps-net locally (it knows its
  own weights — they are implicit in the broadcast bases — and the total
  weight) and ships the sample directly to the coordinator; the sample fits
  in the coordinator's ``O~(n^delta)`` load by the choice of the eps-net
  size.

With ``r = ceil(1/delta)`` iterations of Algorithm 1 behaving as in the
coordinator model, the total round count is ``O(nu / delta^2)`` and the
per-machine load is ``O~(lambda * nu^2 * n^delta)`` bits, matching Theorem 3.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Sequence

import numpy as np

from ..core.accounting import BitCostModel
from ..core.clarkson import ClarksonParameters, resolve_sampling, solve_small_problem
from ..core.exceptions import IterationLimitError
from ..core.lptype import BasisResult, LPTypeProblem
from ..core.result import IterationRecord, ResourceUsage, SolveResult
from ..core.rng import SeedLike, as_generator, spawn
from ..core.weights import boost_factor
from ..models.mpc import MPCCluster
from ..models.partition import partition_indices

__all__ = ["mpc_clarkson_solve", "machines_for_load"]


def machines_for_load(num_constraints: int, delta: float) -> int:
    """Number of machines ``~ n^(1 - delta)`` needed for load ``~ n^delta``."""
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    if num_constraints < 1:
        raise ValueError("num_constraints must be >= 1")
    return max(1, int(math.ceil(num_constraints ** (1.0 - delta))))


def mpc_clarkson_solve(
    problem: LPTypeProblem,
    delta: float = 0.5,
    num_machines: int | None = None,
    partition: Sequence[np.ndarray] | None = None,
    params: ClarksonParameters | None = None,
    cost_model: BitCostModel | None = None,
    rng: SeedLike = None,
) -> SolveResult:
    """Solve an LP-type problem in the MPC model.

    Parameters
    ----------
    problem:
        The LP-type problem.
    delta:
        Load exponent: per-machine load is ``O~(n^delta)`` and the number of
        rounds is ``O(nu / delta^2)``.
    num_machines:
        Number of machines (default ``ceil(n^(1-delta))``).
    partition:
        Optional explicit partition of constraint indices over machines.
    params:
        Meta-algorithm parameters; ``r = ceil(1/delta)`` is derived from
        ``delta``.
    cost_model:
        Bit-cost model for the load accounting.
    rng:
        Randomness.

    Returns
    -------
    SolveResult
        ``resources.rounds`` and ``resources.max_machine_load_bits`` carry
        the MPC costs.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    base_params = params or ClarksonParameters()
    r = max(1, int(math.ceil(1.0 / delta)))
    params = replace(base_params, r=r)
    gen = as_generator(rng)
    n = problem.num_constraints
    nu = problem.combinatorial_dimension
    cost_model = cost_model or BitCostModel()

    k = num_machines or machines_for_load(n, delta)
    if partition is None:
        partition = partition_indices(n, k, method="round_robin")
    cluster = MPCCluster(partition, cost_model=cost_model)
    machine_rngs = spawn(gen, cluster.num_machines)
    fanout = max(2, int(math.ceil(n ** delta)))
    payload_coeffs = problem.payload_num_coefficients()
    coordinator = 0

    sample_size, epsilon = resolve_sampling(problem, params)

    if sample_size >= n or cluster.num_machines == 1:
        # Everything fits on the coordinator: aggregate the constraints once.
        if cluster.num_machines > 1:
            per_machine_bits = cost_model.coefficients(
                max(m.num_local for m in cluster.machines) * payload_coeffs
            )
            cluster.aggregate_tree(coordinator, per_machine_bits, fanout)
        result = solve_small_problem(problem)
        result.resources.rounds = cluster.rounds
        result.resources.max_machine_load_bits = cluster.max_load_bits
        result.resources.total_communication_bits = cluster.total_bits
        result.resources.machine_count = cluster.num_machines
        result.metadata.update({"algorithm": "mpc_clarkson", "delta": delta, "k": cluster.num_machines})
        return result

    boost = params.boost if params.boost is not None else boost_factor(n, params.r)
    budget = params.max_iterations or (40 * nu * params.r + 40)

    # Every machine stores the broadcast bases and derives its local weights
    # from them (implicit weights, exactly as in the streaming driver).
    stored_witnesses: list[object] = []

    def local_weights(machine_indices: np.ndarray) -> np.ndarray:
        exponents = np.zeros(machine_indices.size, dtype=float)
        for witness in stored_witnesses:
            violators = problem.violating_indices(witness, machine_indices)
            positions = np.searchsorted(machine_indices, violators)
            exponents[positions] += 1.0
        reference = len(stored_witnesses)
        return boost ** (exponents - reference)

    trace: list[IterationRecord] = []
    successful = 0
    final_basis: BasisResult | None = None

    for iteration in range(budget):
        # -------- total weight via an aggregation tree -------- #
        machine_totals = [
            float(local_weights(m.local_indices).sum()) if m.num_local else 0.0
            for m in cluster.machines
        ]
        _, total_weight = cluster.aggregate_tree(
            coordinator,
            cost_model.coefficients(1),
            fanout,
            values=machine_totals,
            combine=lambda a, b: (a or 0.0) + (b or 0.0),
        )
        total_weight = float(total_weight)
        if total_weight <= 0:
            raise IterationLimitError("all machine weights vanished; invalid state")

        # -------- local sampling, shipped to the coordinator -------- #
        cluster.begin_round()
        sampled_indices: list[int] = []
        for machine in cluster.machines:
            if machine.num_local == 0:
                continue
            weights = local_weights(machine.local_indices)
            share = float(weights.sum()) / total_weight
            draws = int(machine_rngs[machine.machine_id].binomial(sample_size, min(1.0, share)))
            draws = min(draws, machine.num_local)
            if draws == 0:
                continue
            probabilities = weights / weights.sum()
            chosen_positions = machine_rngs[machine.machine_id].choice(
                machine.num_local, size=draws, replace=False, p=probabilities
            )
            chosen = machine.local_indices[chosen_positions]
            sampled_indices.extend(int(i) for i in chosen)
            if machine.machine_id != coordinator:
                cluster.send(
                    machine.machine_id,
                    coordinator,
                    cost_model.coefficients(draws * payload_coeffs),
                )
        cluster.end_round()

        basis = problem.solve_subset(sorted(set(sampled_indices)))

        # -------- broadcast the basis through the tree -------- #
        basis_bits = cost_model.coefficients(
            (len(basis.indices) + 1) * payload_coeffs + problem.dimension
        )
        cluster.broadcast_tree(coordinator, basis_bits, fanout)

        # -------- violation statistics via an aggregation tree -------- #
        per_machine_stats = []
        for machine in cluster.machines:
            if machine.num_local == 0:
                per_machine_stats.append((0.0, 0))
                continue
            weights = local_weights(machine.local_indices)
            violators = problem.violating_indices(basis.witness, machine.local_indices)
            positions = np.searchsorted(machine.local_indices, violators)
            per_machine_stats.append((float(weights[positions].sum()), int(violators.size)))
        _, aggregate = cluster.aggregate_tree(
            coordinator,
            cost_model.coefficients(2),
            fanout,
            values=per_machine_stats,
            combine=lambda a, b: ((a or (0.0, 0))[0] + (b or (0.0, 0))[0], (a or (0.0, 0))[1] + (b or (0.0, 0))[1]),
        )
        violator_weight, violator_count = aggregate

        fraction = violator_weight / total_weight if total_weight > 0 else 0.0
        success = fraction <= epsilon
        if params.keep_trace:
            trace.append(
                IterationRecord(
                    iteration=iteration,
                    sample_size=len(set(sampled_indices)),
                    num_violators=int(violator_count),
                    violator_weight_fraction=float(fraction),
                    successful=success,
                    basis_indices=basis.indices,
                )
            )
        if violator_count == 0:
            final_basis = basis
            break
        if success:
            stored_witnesses.append(basis.witness)
            successful += 1
            # The success flag rides along with the next basis broadcast; a
            # dedicated one-counter broadcast keeps the accounting explicit.
            cluster.broadcast_tree(coordinator, cost_model.counters(1), fanout)
    else:
        raise IterationLimitError(
            f"MPC Clarkson did not terminate within {budget} iterations"
        )

    assert final_basis is not None
    resources = ResourceUsage(
        rounds=cluster.rounds,
        max_machine_load_bits=cluster.max_load_bits,
        total_communication_bits=cluster.total_bits,
        machine_count=cluster.num_machines,
    )
    return SolveResult(
        value=final_basis.value,
        witness=final_basis.witness,
        basis_indices=final_basis.indices,
        iterations=len(trace) if params.keep_trace else 0,
        successful_iterations=successful,
        resources=resources,
        trace=trace,
        metadata={
            "algorithm": "mpc_clarkson",
            "delta": delta,
            "r": params.r,
            "k": cluster.num_machines,
            "epsilon": epsilon,
            "sample_size": sample_size,
            "boost": boost,
            "fanout": fanout,
        },
    )
