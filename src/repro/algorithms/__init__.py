"""Model-specific solvers: the paper's algorithms and the baselines they beat."""

from .baselines import (
    clarkson_classic_reweighting,
    exact_in_memory,
    ship_all_coordinator,
    single_pass_full_memory_streaming,
)
from .chan_chen import (
    EnvelopeLP,
    chan_chen_2d_streaming,
    chan_chen_pass_count,
    clarkson_pass_count,
)
from .coordinator_clarkson import coordinator_clarkson_solve
from .mpc_clarkson import machines_for_load, mpc_clarkson_solve
from .streaming_clarkson import streaming_clarkson_solve

__all__ = [
    "clarkson_classic_reweighting",
    "exact_in_memory",
    "ship_all_coordinator",
    "single_pass_full_memory_streaming",
    "EnvelopeLP",
    "chan_chen_2d_streaming",
    "chan_chen_pass_count",
    "clarkson_pass_count",
    "coordinator_clarkson_solve",
    "machines_for_load",
    "mpc_clarkson_solve",
    "streaming_clarkson_solve",
]
