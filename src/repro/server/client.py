"""A typed stdlib client for the HTTP/SSE front end.

:class:`ServiceClient` speaks the protocol of :class:`~repro.server.app.
ReproServer` with nothing beyond ``http.client`` and ``json``: tests, the
examples, and the load smoke drive real sockets through it.  Results come
back as genuine :class:`~repro.core.result.SolveResult` objects (decoded
from the ``repro-result/1`` wire form) and failures re-raise the library's
own exception types — a budget abort raises
:class:`~repro.core.exceptions.BudgetExceededError` carrying the partial
:class:`~repro.core.result.ResourceUsage`, exactly as in-process code sees.

Usage::

    client = ServiceClient("http://127.0.0.1:8731", api_key="secret")
    ticket = client.submit(problem, model="streaming", config={"r": 2})
    for event in ticket.events():          # SSE per-round progress
        print(event["event"], event["data"])
    result = ticket.result(timeout=60)     # a SolveResult
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Mapping, Optional
from urllib.parse import urlparse

from ..core.budget import ResourceBudget
from ..core.exceptions import CircuitOpenError, ReproError
from ..core.result import SolveResult
from .tenancy import API_KEY_HEADER, AuthenticationError, QuotaExceededError
from .wire import encode_problem, error_to_exception

__all__ = ["RemoteTicket", "ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """An HTTP-level failure the library has no specific exception for.

    Attributes
    ----------
    status:
        HTTP status code (0 for transport-level failures).
    body:
        The parsed error body, if the server sent one.
    """

    def __init__(self, message: str, status: int = 0, body: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class RemoteTicket:
    """A submitted request on a remote server: poll, stream, await."""

    def __init__(self, client: "ServiceClient", ticket_id: str, model: str) -> None:
        self.client = client
        self.id = ticket_id
        self.model = model

    def status(self) -> dict:
        """One poll of ``GET /v1/tickets/<id>`` (raw payload)."""
        return self.client.ticket(self.id)

    def events(self, timeout: float = 300.0) -> Iterator[dict]:
        """The ticket's SSE stream: yields ``{"event": ..., "data": {...}}``."""
        return self.client.events(self.id, timeout=timeout)

    def result(
        self, timeout: float = 60.0, poll_interval: float = 0.05
    ) -> SolveResult:
        """Poll until finished; decode the result or re-raise the error."""
        return self.client.result(
            self.id, timeout=timeout, poll_interval=poll_interval
        )


class ServiceClient:
    """A thin, typed wrapper over the server's HTTP protocol.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running :class:`ReproServer`.
    api_key:
        Sent as ``X-API-Key`` on every request (omit for anonymous access).
    timeout:
        Read timeout for non-streaming requests, in seconds.
    connect_timeout:
        TCP connect timeout, in seconds; defaults to ``timeout``.
    retries:
        How many times an *idempotent* (GET) request is retried after a
        connection failure or a retryable 503 (circuit open).  POSTs are
        never retried: a submit that died mid-flight may have enqueued a
        ticket, and a blind resend would double-solve and double-bill.
    backoff_s:
        Base delay between GET retries; a 503 body's ``retry_after`` (or
        the ``Retry-After`` header's value surfaced there) takes precedence.
    """

    def __init__(
        self,
        base_url: str,
        api_key: Optional[str] = None,
        timeout: float = 30.0,
        *,
        connect_timeout: Optional[float] = None,
        retries: int = 2,
        backoff_s: float = 0.2,
    ) -> None:
        parsed = urlparse(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.api_key = api_key
        self.timeout = float(timeout)
        self.connect_timeout = (
            float(connect_timeout) if connect_timeout is not None else self.timeout
        )
        self.retries = max(0, int(retries))
        self.backoff_s = max(0.0, float(backoff_s))

    # -------------------------------------------------------------- #
    # HTTP plumbing
    # -------------------------------------------------------------- #

    def _connection(self, read_timeout: float) -> http.client.HTTPConnection:
        # http.client applies its timeout to connect(); widen it to the
        # read timeout once the socket exists so slow responses get the
        # full read window while a dead host still fails fast.
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        conn.connect()
        if conn.sock is not None:
            conn.sock.settimeout(read_timeout)
        return conn

    def _headers(self) -> dict:
        headers = {"Accept": "application/json"}
        if self.api_key:
            headers[API_KEY_HEADER] = self.api_key
        return headers

    def _request(self, method: str, path: str, body: Any = None) -> Any:
        """One JSON request/response; raises typed errors on non-2xx.

        GETs are retried up to ``retries`` times on connection failures and
        retryable 503s (honouring the body's ``retry_after``); POSTs get
        exactly one attempt (see the class docstring for why).
        """
        attempts = self.retries + 1 if method == "GET" else 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                delay = self.backoff_s * attempt
                if isinstance(last_error, CircuitOpenError):
                    delay = max(delay, last_error.retry_after_s)
                time.sleep(delay)
            try:
                return self._request_once(method, path, body)
            except CircuitOpenError as exc:
                # The server's structured 503: retry after the advertised
                # cooldown (idempotent requests only).
                last_error = exc
            except ServiceError as exc:
                if exc.status != 0:  # only connection-level failures retry
                    raise
                last_error = exc
        assert last_error is not None
        raise last_error

    def _request_once(self, method: str, path: str, body: Any = None) -> Any:
        try:
            conn = self._connection(self.timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {exc}"
            ) from None
        try:
            headers = self._headers()
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except OSError as exc:
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {exc}"
            ) from None
        finally:
            conn.close()
        try:
            parsed = json.loads(raw) if raw else {}
        except ValueError:
            parsed = {"raw": raw.decode("utf-8", "replace")}
        if 200 <= response.status < 300:
            return parsed
        self._raise_for(response.status, parsed)

    def _raise_for(self, status: int, body: Any) -> None:
        error = body.get("error") if isinstance(body, Mapping) else None
        if isinstance(error, Mapping):
            error_type = error.get("type")
            message = str(error.get("message", ""))
            if error_type == "unauthorized":
                raise AuthenticationError(message)
            if error_type == "quota_exhausted":
                raise QuotaExceededError(
                    message,
                    reason=str(error.get("reason", "")),
                    limit=error.get("limit"),
                    used=error.get("used"),
                )
            exc = error_to_exception({"error": dict(error)})
            if not isinstance(exc, ReproError) or type(exc) is ReproError:
                raise ServiceError(message, status=status, body=body)
            raise exc
        raise ServiceError(f"HTTP {status}", status=status, body=body)

    # -------------------------------------------------------------- #
    # Endpoints
    # -------------------------------------------------------------- #

    def submit(
        self,
        problem: Any,
        *,
        model: Optional[str] = None,
        config: Optional[Mapping[str, Any]] = None,
        deadline_s: Optional[float] = None,
        budget: Optional[ResourceBudget | Mapping[str, Any]] = None,
    ) -> RemoteTicket:
        """``POST /v1/solve``: submit one problem, get a :class:`RemoteTicket`.

        ``problem`` is an LP-type problem instance (encoded via
        :func:`~repro.server.wire.encode_problem`) or an already-encoded
        wire payload; ``config`` carries per-request field overrides.
        """
        payload: dict[str, Any] = {
            "problem": (
                dict(problem) if isinstance(problem, Mapping) else encode_problem(problem)
            ),
        }
        if model is not None:
            payload["model"] = model
        if config:
            payload["config"] = dict(config)
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if isinstance(budget, ResourceBudget):
            payload["budget"] = {
                "wall_time_s": budget.wall_time_s,
                "iterations": budget.iterations,
                "communication_bits": budget.communication_bits,
            }
        elif budget is not None:
            payload["budget"] = dict(budget)
        body = self._request("POST", "/v1/solve", payload)
        ticket = body["ticket"]
        return RemoteTicket(self, str(ticket["id"]), str(ticket["model"]))

    def ticket(self, ticket_id: str) -> dict:
        """``GET /v1/tickets/<id>``: one status poll (raw payload)."""
        return self._request("GET", f"/v1/tickets/{ticket_id}")

    def result(
        self,
        ticket_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> SolveResult:
        """Poll a ticket to completion; decode or re-raise like in-process."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.ticket(ticket_id)
            status = payload["status"]
            if status == "done":
                return SolveResult.from_dict(payload["result"])
            if status == "failed":
                raise error_to_exception({"error": payload["error"]})
            if status == "cancelled":
                raise ServiceError(f"ticket {ticket_id} was cancelled")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"ticket {ticket_id} still {status!r} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def solve(
        self,
        problem: Any,
        *,
        timeout: float = 60.0,
        **submit_kwargs: Any,
    ) -> SolveResult:
        """Submit and wait: the one-call remote mirror of :func:`repro.solve`."""
        return self.submit(problem, **submit_kwargs).result(timeout=timeout)

    def events(self, ticket_id: str, timeout: float = 300.0) -> Iterator[dict]:
        """``GET /v1/tickets/<id>/events``: parsed SSE frames as they arrive.

        Yields ``{"event": name, "data": {...}}`` per frame and returns
        after the terminal ``done`` / ``failed`` / ``cancelled`` event.
        A stream broken mid-flight (server frames carry ``id:`` indices)
        reconnects with ``Last-Event-ID`` and resumes exactly where it
        left off, up to ``retries`` reconnect attempts.
        """
        deadline = time.monotonic() + timeout
        last_id: Optional[int] = None
        reconnects = 0
        while True:
            try:
                for frame in self._stream_once(ticket_id, deadline, last_id):
                    if frame["id"] is not None:
                        last_id = frame["id"]
                    yield {"event": frame["event"], "data": frame["data"]}
                    if frame["event"] in ("done", "failed", "cancelled"):
                        return
                return  # server closed cleanly (timeout elapsed)
            except OSError as exc:
                # Mid-stream connection loss: resume from the last id seen.
                reconnects += 1
                if reconnects > self.retries or time.monotonic() >= deadline:
                    raise ServiceError(
                        f"SSE stream for ticket {ticket_id} broke after "
                        f"{reconnects} attempt(s): {exc}"
                    ) from None
                time.sleep(min(self.backoff_s * reconnects, 2.0))

    def _stream_once(
        self, ticket_id: str, deadline: float, last_id: Optional[int]
    ) -> Iterator[dict]:
        """One SSE connection: yields ``{"id", "event", "data"}`` frames."""
        remaining = max(0.5, deadline - time.monotonic())
        conn = self._connection(remaining + 5.0)
        try:
            headers = self._headers()
            if last_id is not None:
                headers["Last-Event-ID"] = str(last_id)
            conn.request(
                "GET",
                f"/v1/tickets/{ticket_id}/events?timeout={remaining:g}",
                headers=headers,
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    parsed = json.loads(raw) if raw else {}
                except ValueError:
                    parsed = {}
                self._raise_for(response.status, parsed)
            event_name: Optional[str] = None
            event_id: Optional[int] = None
            data_lines: list[str] = []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):  # comment / keep-alive
                    continue
                if line.startswith("id:"):
                    try:
                        event_id = int(line[len("id:") :].strip())
                    except ValueError:
                        event_id = None
                    continue
                if line.startswith("event:"):
                    event_name = line[len("event:") :].strip()
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[len("data:") :].strip())
                    continue
                if line == "" and event_name is not None:
                    data = json.loads("\n".join(data_lines)) if data_lines else {}
                    yield {"id": event_id, "event": event_name, "data": data}
                    event_name, event_id, data_lines = None, None, []
        finally:
            conn.close()

    def models(self) -> dict:
        """``GET /v1/models``: the server's registry view."""
        return self._request("GET", "/v1/models")

    def usage(self) -> dict:
        """``GET /v1/usage``: this tenant's cumulative usage and quota."""
        return self._request("GET", "/v1/usage")

    def healthz(self) -> dict:
        """``GET /v1/healthz``: liveness plus aggregate service stats."""
        return self._request("GET", "/v1/healthz")
