"""Wire codecs of the HTTP front end: problems, budgets, errors, SSE.

The solver results themselves already have a wire form — ``repro-result/1``
via :meth:`~repro.core.result.SolveResult.to_dict` — so this module only
adds what the *request* side needs:

* :func:`encode_problem` / :func:`decode_problem` — the four built-in
  problem families as plain-JSON payloads (``{"family": "lp", "c": ...,
  "a": ..., "b": ...}``), validated with errors that name the offending
  field in the style of :class:`~repro.core.exceptions.InvalidConfigError`;
* :func:`decode_budget` — :class:`~repro.core.budget.ResourceBudget` from a
  JSON object;
* :func:`error_body` / :func:`exception_to_error` /
  :func:`error_to_exception` — the structured error bodies every non-2xx
  response (and every failed ticket) carries, round-trippable back into the
  library's exception types on the client;
* :func:`sse_event` — one Server-Sent-Events frame.

Numbers are serialised with Python's default JSON behaviour, which emits
the IEEE tokens ``Infinity`` / ``-Infinity`` / ``NaN`` for non-finite
values; ``json.loads`` parses them back, so non-finite margins survive the
HTTP round trip (pinned by the server test suite).
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

import numpy as np

from ..core.budget import ResourceBudget
from ..core.exceptions import (
    BudgetExceededError,
    CircuitOpenError,
    InfeasibleProblemError,
    InvalidConfigError,
    InvalidInstanceError,
    ReproError,
    SolverError,
    TransportFailure,
    UnboundedProblemError,
)
from ..core.result import ResourceUsage

__all__ = [
    "RequestValidationError",
    "decode_budget",
    "decode_problem",
    "encode_problem",
    "error_body",
    "error_to_exception",
    "exception_to_error",
    "sse_event",
]

#: Accepted spellings of the problem families on the wire.
WIRE_FAMILIES = ("lp", "meb", "svm", "qp")


class RequestValidationError(ReproError, ValueError):
    """A malformed request payload; the message names the offending field.

    Mirrors :class:`~repro.core.exceptions.InvalidConfigError`: the server
    turns it into a typed 400 JSON body (``{"error": {"type":
    "invalid_request", "field": ..., "message": ...}}``) so clients can
    correct the request without parsing prose.
    """

    def __init__(self, message: str, field: str = "") -> None:
        super().__init__(message)
        self.field = field


# ---------------------------------------------------------------------- #
# Problems
# ---------------------------------------------------------------------- #


def _require(payload: Mapping[str, Any], field: str, family: str) -> Any:
    if field not in payload:
        raise RequestValidationError(
            f"problem family {family!r} requires field {field!r}",
            field=f"problem.{field}",
        )
    return payload[field]


def _array(payload: Mapping[str, Any], field: str, family: str, ndim: int) -> np.ndarray:
    try:
        arr = np.asarray(_require(payload, field, family), dtype=float)
    except (TypeError, ValueError) as exc:
        raise RequestValidationError(
            f"problem.{field} is not a numeric array: {exc}",
            field=f"problem.{field}",
        ) from None
    if arr.ndim != ndim:
        raise RequestValidationError(
            f"problem.{field} must be {ndim}-dimensional, got {arr.ndim}-d",
            field=f"problem.{field}",
        )
    return arr


def encode_problem(problem: Any) -> dict:
    """The wire payload of one built-in problem instance.

    The inverse of :func:`decode_problem`: the four built-in families
    (:class:`~repro.problems.LinearProgram`, MEB, SVM, QP) are encoded
    field-by-field so the server rebuilds a numerically identical instance.
    User-defined problem classes may implement ``to_wire() -> dict``
    (returning a payload :func:`decode_problem` understands) to opt in.
    """
    from ..problems import (
        ConvexQuadraticProgram,
        LinearProgram,
        LinearSVM,
        MinimumEnclosingBall,
    )

    hook = getattr(problem, "to_wire", None)
    if hook is not None:
        return hook()
    if isinstance(problem, LinearProgram):
        return {
            "family": "lp",
            "c": problem.c.tolist(),
            "a": problem.a.tolist(),
            "b": problem.b.tolist(),
            "box_bound": problem.box_bound,
            "solver": problem.solver,
            "lexicographic": problem.lexicographic,
            "tolerance": problem.tolerance,
        }
    if isinstance(problem, MinimumEnclosingBall):
        return {
            "family": "meb",
            "points": problem.points.tolist(),
            "tolerance": problem.tolerance,
        }
    if isinstance(problem, LinearSVM):
        return {
            "family": "svm",
            "points": problem.points.tolist(),
            "labels": problem.labels.tolist(),
            "tolerance": problem.tolerance,
        }
    if isinstance(problem, ConvexQuadraticProgram):
        return {
            "family": "qp",
            "q_matrix": problem.q_matrix.tolist(),
            "q_vector": problem.q_vector.tolist(),
            "g_matrix": problem.g_matrix.tolist(),
            "h_vector": problem.h_vector.tolist(),
            "tolerance": problem.tolerance,
        }
    raise RequestValidationError(
        f"cannot encode {type(problem).__name__} for the wire: implement "
        "to_wire() or submit one of the built-in families (lp/meb/svm/qp)",
        field="problem",
    )


def decode_problem(payload: Any) -> Any:
    """Rebuild an LP-type problem instance from its wire payload."""
    if not isinstance(payload, Mapping):
        raise RequestValidationError(
            f"problem must be a JSON object, got {type(payload).__name__}",
            field="problem",
        )
    family = payload.get("family")
    if family not in WIRE_FAMILIES:
        raise RequestValidationError(
            f"problem.family must be one of {'/'.join(WIRE_FAMILIES)}, "
            f"got {family!r}",
            field="problem.family",
        )
    from ..problems import (
        ConvexQuadraticProgram,
        LinearProgram,
        LinearSVM,
        MinimumEnclosingBall,
    )

    try:
        if family == "lp":
            kwargs: dict[str, Any] = {}
            for key in ("box_bound", "solver", "lexicographic", "tolerance"):
                if key in payload:
                    kwargs[key] = payload[key]
            return LinearProgram(
                c=_array(payload, "c", family, 1),
                a=_array(payload, "a", family, 2),
                b=_array(payload, "b", family, 1),
                **kwargs,
            )
        if family == "meb":
            kwargs = {"tolerance": payload["tolerance"]} if "tolerance" in payload else {}
            return MinimumEnclosingBall(
                points=_array(payload, "points", family, 2), **kwargs
            )
        if family == "svm":
            kwargs = {"tolerance": payload["tolerance"]} if "tolerance" in payload else {}
            return LinearSVM(
                points=_array(payload, "points", family, 2),
                labels=_array(payload, "labels", family, 1),
                **kwargs,
            )
        kwargs = {"tolerance": payload["tolerance"]} if "tolerance" in payload else {}
        return ConvexQuadraticProgram(
            q_matrix=_array(payload, "q_matrix", family, 2),
            q_vector=_array(payload, "q_vector", family, 1),
            g_matrix=_array(payload, "g_matrix", family, 2),
            h_vector=_array(payload, "h_vector", family, 1),
            **kwargs,
        )
    except InvalidInstanceError as exc:
        # Instance-level validation (mismatched shapes, bad labels, ...)
        # surfaces as a request error: the instance came off the wire.
        raise RequestValidationError(str(exc), field="problem") from None


# ---------------------------------------------------------------------- #
# Budgets
# ---------------------------------------------------------------------- #

_BUDGET_FIELDS = ("wall_time_s", "iterations", "communication_bits")


def decode_budget(payload: Any) -> Optional[ResourceBudget]:
    """A :class:`ResourceBudget` from its JSON object form (``None`` passes)."""
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise RequestValidationError(
            f"budget must be a JSON object, got {type(payload).__name__}",
            field="budget",
        )
    unknown = set(payload) - set(_BUDGET_FIELDS)
    if unknown:
        raise RequestValidationError(
            f"unknown budget field(s) {', '.join(sorted(map(repr, unknown)))}; "
            f"supported: {', '.join(_BUDGET_FIELDS)}",
            field="budget",
        )
    try:
        return ResourceBudget(
            wall_time_s=(
                float(payload["wall_time_s"])
                if payload.get("wall_time_s") is not None
                else None
            ),
            iterations=(
                int(payload["iterations"])
                if payload.get("iterations") is not None
                else None
            ),
            communication_bits=(
                int(payload["communication_bits"])
                if payload.get("communication_bits") is not None
                else None
            ),
        )
    except (InvalidConfigError, TypeError, ValueError) as exc:
        raise RequestValidationError(str(exc), field="budget") from None


# ---------------------------------------------------------------------- #
# Error bodies
# ---------------------------------------------------------------------- #


def error_body(
    error_type: str,
    message: str,
    *,
    retryable: bool = False,
    retry_after: Optional[float] = None,
    **extra: Any,
) -> dict:
    """The structured error body every non-2xx response carries.

    Every body advertises ``retryable`` so clients can distinguish
    transient infrastructure failures (retry the same request) from
    terminal ones without parsing prose; ``retry_after`` (seconds) is
    present when the server can name a sensible backoff, mirroring the
    ``Retry-After`` header on 503s.
    """
    error: dict[str, Any] = {
        "type": error_type,
        "message": message,
        "retryable": bool(retryable),
    }
    if retry_after is not None:
        error["retry_after"] = float(retry_after)
    error.update(extra)
    return {"error": error}


def _usage_to_dict(usage: Any) -> Optional[dict]:
    if not isinstance(usage, ResourceUsage):
        return None
    return {
        name: int(getattr(usage, name))
        for name in ResourceUsage._ADDITIVE_FIELDS + ResourceUsage._PEAK_FIELDS
    }


#: Exception class -> wire error type, for ticket failure payloads.
_EXCEPTION_TYPES = (
    (BudgetExceededError, "budget_exhausted"),
    (InfeasibleProblemError, "infeasible"),
    (UnboundedProblemError, "unbounded"),
    (InvalidConfigError, "invalid_config"),
    (RequestValidationError, "invalid_request"),
    (SolverError, "solver_error"),
)


def exception_to_error(exc: BaseException) -> dict:
    """The error body of one failed ticket.

    :class:`BudgetExceededError` keeps its full partial-usage picture —
    reason, elapsed wall time, iterations, communication bits, and the
    partial :class:`ResourceUsage` — so billing-grade information survives
    the wire.
    """
    if isinstance(exc, BudgetExceededError):
        return error_body(
            "budget_exhausted",
            str(exc),
            reason=exc.reason,
            elapsed_s=exc.elapsed_s,
            iterations=exc.iterations,
            communication_bits=exc.communication_bits,
            usage=_usage_to_dict(exc.usage),
        )
    if isinstance(exc, CircuitOpenError):
        return error_body(
            "circuit_open",
            str(exc),
            retryable=True,
            retry_after=exc.retry_after_s,
            model=exc.model,
        )
    if isinstance(exc, TransportFailure):
        return error_body(
            "transport_failure",
            str(exc),
            retryable=exc.retryable,
            worker=exc.worker,
            attempts=exc.attempts,
        )
    for cls, error_type in _EXCEPTION_TYPES:
        if isinstance(exc, cls):
            return error_body(error_type, str(exc))
    return error_body("internal", f"{type(exc).__name__}: {exc}")


def error_to_exception(body: Mapping[str, Any]) -> ReproError:
    """Rebuild a library exception from an error body (client side)."""
    error = body.get("error", body)
    error_type = error.get("type", "internal")
    message = error.get("message", "unknown server error")
    if error_type == "budget_exhausted":
        usage_payload = error.get("usage")
        usage = (
            ResourceUsage(
                **{
                    k: int(v)
                    for k, v in usage_payload.items()
                    if k
                    in ResourceUsage._ADDITIVE_FIELDS + ResourceUsage._PEAK_FIELDS
                }
            )
            if isinstance(usage_payload, Mapping)
            else None
        )
        return BudgetExceededError(
            message,
            reason=str(error.get("reason", "")),
            elapsed_s=float(error.get("elapsed_s", 0.0)),
            iterations=int(error.get("iterations", 0)),
            communication_bits=int(error.get("communication_bits", 0)),
            usage=usage,
        )
    if error_type == "circuit_open":
        return CircuitOpenError(
            message,
            retry_after_s=float(error.get("retry_after", 1.0)),
            model=str(error.get("model", "")),
        )
    if error_type == "transport_failure":
        return TransportFailure(
            message,
            retryable=bool(error.get("retryable", False)),
            worker=error.get("worker"),
            attempts=int(error.get("attempts", 0)),
        )
    for cls, wire_type in _EXCEPTION_TYPES:
        if wire_type == error_type:
            if cls is RequestValidationError:
                return RequestValidationError(
                    message, field=str(error.get("field", ""))
                )
            return cls(message)
    return ReproError(message)


# ---------------------------------------------------------------------- #
# Server-Sent Events
# ---------------------------------------------------------------------- #


def sse_event(event: str, data: Any, event_id: Optional[int] = None) -> bytes:
    """One SSE frame: optional ``id:``, ``event:`` name, one ``data:`` line.

    The id is the event's absolute index in the ticket's event log, so a
    client that reconnects with ``Last-Event-ID`` resumes exactly where the
    previous stream broke off.
    """
    prefix = f"id: {event_id}\n" if event_id is not None else ""
    return (f"{prefix}event: {event}\n" f"data: {json.dumps(data)}\n\n").encode(
        "utf-8"
    )
