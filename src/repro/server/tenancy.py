"""Multi-tenancy for the HTTP front end: API keys, quotas, admission.

A :class:`Tenant` is a named principal with a :class:`TenantQuota`; the
:class:`TenantRegistry` maps the ``X-API-Key`` request header to tenants
(optionally admitting unauthenticated requests as a shared *anonymous*
tenant).  :func:`admit` is the admission-control decision: it compares a
tenant's live ticket count and cumulative
:class:`~repro.core.accounting.TenantUsage` against the quota and raises
:class:`QuotaExceededError` — which the server turns into a ``429`` with a
structured error body — when any currency is exhausted.

Quotas are *cumulative* (ledger-fed) for wall seconds, iterations, and
communication bits, and *instantaneous* for concurrent tickets.  They ride
on the same currencies as the per-request
:class:`~repro.core.budget.ResourceBudget`: the budget bounds one solve,
the quota bounds a tenant's lifetime spend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..core.accounting import TenantUsage
from ..core.exceptions import InvalidConfigError, ReproError

__all__ = [
    "AuthenticationError",
    "QuotaExceededError",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "admit",
]

#: Header carrying the API key.
API_KEY_HEADER = "X-API-Key"

#: Tenant name used for unauthenticated requests when anonymous access is on.
ANONYMOUS_TENANT = "public"


class AuthenticationError(ReproError):
    """Missing or unknown API key (the server answers 401)."""


class QuotaExceededError(ReproError):
    """A tenant's quota is exhausted (the server answers 429).

    Attributes
    ----------
    reason:
        The exhausted currency: ``"concurrent"``, ``"wall_time"``,
        ``"iterations"``, or ``"communication_bits"``.
    limit / used:
        The quota value and the tenant's current spend in that currency.
    """

    def __init__(self, message: str, *, reason: str, limit: Any, used: Any) -> None:
        super().__init__(message)
        self.reason = reason
        self.limit = limit
        self.used = used


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; ``None`` disables a currency (the default).

    ``max_concurrent`` bounds the tickets a tenant may have queued or
    running at once; the other three bound the tenant's *cumulative* spend
    as recorded by the :class:`~repro.core.accounting.UsageLedger`.
    """

    max_concurrent: Optional[int] = None
    wall_time_s: Optional[float] = None
    iterations: Optional[int] = None
    communication_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise InvalidConfigError(
                f"TenantQuota.max_concurrent must be >= 1 (got {self.max_concurrent!r})"
            )
        if self.wall_time_s is not None and self.wall_time_s <= 0:
            raise InvalidConfigError(
                f"TenantQuota.wall_time_s must be > 0 (got {self.wall_time_s!r})"
            )
        if self.iterations is not None and self.iterations < 1:
            raise InvalidConfigError(
                f"TenantQuota.iterations must be >= 1 (got {self.iterations!r})"
            )
        if self.communication_bits is not None and self.communication_bits < 1:
            raise InvalidConfigError(
                "TenantQuota.communication_bits must be >= 1 "
                f"(got {self.communication_bits!r})"
            )

    def as_dict(self) -> dict:
        return {
            "max_concurrent": self.max_concurrent,
            "wall_time_s": self.wall_time_s,
            "iterations": self.iterations,
            "communication_bits": self.communication_bits,
        }


@dataclass(frozen=True)
class Tenant:
    """One named principal of the server."""

    name: str
    quota: TenantQuota = TenantQuota()


class TenantRegistry:
    """API-key to tenant resolution.

    ``keys`` maps API-key strings to :class:`Tenant` records; ``anonymous``
    (if set) is the tenant unauthenticated requests run as.  With neither,
    every request is rejected with 401.
    """

    def __init__(
        self,
        keys: Optional[Mapping[str, Tenant]] = None,
        anonymous: Optional[Tenant] = None,
    ) -> None:
        self._keys = dict(keys or {})
        self._anonymous = anonymous

    @classmethod
    def from_config(
        cls, payload: Optional[Mapping[str, Any]], allow_anonymous: bool
    ) -> "TenantRegistry":
        """Build a registry from the ``serve`` CLI's tenants file.

        ``payload`` maps each API key to ``{"tenant": name, "max_concurrent":
        ..., "wall_time_s": ..., "iterations": ..., "communication_bits":
        ...}`` (all quota fields optional).  Values may also be
        :class:`Tenant` instances (the in-process constructor path).
        """
        keys: dict[str, Tenant] = {}
        for api_key, spec in (payload or {}).items():
            if isinstance(spec, Tenant):
                keys[str(api_key)] = spec
                continue
            if not isinstance(spec, Mapping):
                raise InvalidConfigError(
                    f"tenant entry for key {api_key!r} must be an object, "
                    f"got {type(spec).__name__}"
                )
            spec = dict(spec)
            name = str(spec.pop("tenant", "") or spec.pop("name", ""))
            if not name:
                raise InvalidConfigError(
                    f"tenant entry for key {api_key!r} needs a 'tenant' name"
                )
            unknown = set(spec) - {
                "max_concurrent",
                "wall_time_s",
                "iterations",
                "communication_bits",
            }
            if unknown:
                raise InvalidConfigError(
                    f"unknown tenant quota field(s) for {name!r}: "
                    f"{', '.join(sorted(map(repr, unknown)))}"
                )
            keys[str(api_key)] = Tenant(name=name, quota=TenantQuota(**spec))
        anonymous = Tenant(name=ANONYMOUS_TENANT) if allow_anonymous else None
        return cls(keys=keys, anonymous=anonymous)

    @property
    def allows_anonymous(self) -> bool:
        return self._anonymous is not None

    def authenticate(self, api_key: Optional[str]) -> Tenant:
        """The tenant of one request, from its ``X-API-Key`` header value."""
        if api_key:
            tenant = self._keys.get(api_key)
            if tenant is None:
                raise AuthenticationError("unknown API key")
            return tenant
        if self._anonymous is not None:
            return self._anonymous
        raise AuthenticationError(
            f"missing {API_KEY_HEADER} header (anonymous access is disabled)"
        )


def admit(tenant: Tenant, active_tickets: int, totals: TenantUsage) -> None:
    """Admission control: raise :class:`QuotaExceededError` when exhausted.

    Checked at submission time, *before* the ticket enters the queue, so a
    tenant over quota cannot crowd out others' requests — the paper-side
    budgets (:class:`~repro.core.budget.ResourceBudget`) still bound each
    admitted solve individually.
    """
    quota = tenant.quota
    if quota.max_concurrent is not None and active_tickets >= quota.max_concurrent:
        raise QuotaExceededError(
            f"tenant {tenant.name!r} already has {active_tickets} tickets in "
            f"flight (limit {quota.max_concurrent})",
            reason="concurrent",
            limit=quota.max_concurrent,
            used=active_tickets,
        )
    if quota.wall_time_s is not None and totals.wall_s >= quota.wall_time_s:
        raise QuotaExceededError(
            f"tenant {tenant.name!r} has consumed {totals.wall_s:.3f}s of its "
            f"{quota.wall_time_s:g}s wall-time quota",
            reason="wall_time",
            limit=quota.wall_time_s,
            used=totals.wall_s,
        )
    if quota.iterations is not None and totals.iterations >= quota.iterations:
        raise QuotaExceededError(
            f"tenant {tenant.name!r} has consumed {totals.iterations} of its "
            f"{quota.iterations} iteration quota",
            reason="iterations",
            limit=quota.iterations,
            used=totals.iterations,
        )
    if (
        quota.communication_bits is not None
        and totals.communication_bits >= quota.communication_bits
    ):
        raise QuotaExceededError(
            f"tenant {tenant.name!r} has consumed {totals.communication_bits} "
            f"of its {quota.communication_bits} communication-bit quota",
            reason="communication_bits",
            limit=quota.communication_bits,
            used=totals.communication_bits,
        )
