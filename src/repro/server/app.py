"""The HTTP/SSE solver front end: a network face for :class:`SolverService`.

:class:`ReproServer` wraps a :class:`~repro.api.session.SessionPool` (one
long-lived session per model) and one :class:`~repro.api.service.SolverService`
per model behind a stdlib ``ThreadingHTTPServer``.  Endpoints (all JSON):

* ``POST /v1/solve`` — submit a problem; answers ``202`` with a ticket id.
* ``GET /v1/tickets/<id>`` — poll status; a finished ticket carries the
  full ``repro-result/1`` payload (or a structured error body).
* ``GET /v1/tickets/<id>/events`` — SSE stream of the ticket's per-round
  progress: the engine's per-iteration events and the fabric's per-round
  ledger entries, fed through a per-ticket event queue, ending with a
  terminal ``done`` / ``failed`` event.
* ``GET /v1/models`` — registry introspection (``describe_model`` per model).
* ``GET /v1/usage`` — the requesting tenant's cumulative usage and quota.
* ``GET /v1/healthz`` — liveness plus aggregate service stats.

Multi-tenancy rides on the ``X-API-Key`` header (see
:mod:`repro.server.tenancy`): admission control rejects over-quota tenants
with ``429`` and a structured error body, and every finished ticket is
billed to its tenant through a :class:`~repro.core.accounting.UsageLedger`
(optionally appended as JSONL).  See ``docs/service.md``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Optional
from urllib.parse import parse_qs, urlparse

from ..api.registry import available_models, describe_model, get_model
from ..api.service import SolverService, Ticket
from ..api.session import SessionPool
from ..core.accounting import UsageLedger
from ..core.budget import ResourceBudget
from ..core.exceptions import (
    BudgetExceededError,
    CircuitOpenError,
    InvalidConfigError,
    InvalidInstanceError,
    RegistryError,
    SessionError,
    TransportFailure,
)
from .tenancy import (
    API_KEY_HEADER,
    AuthenticationError,
    QuotaExceededError,
    Tenant,
    TenantRegistry,
    admit,
)
from .wire import (
    RequestValidationError,
    decode_budget,
    decode_problem,
    error_body,
    exception_to_error,
    sse_event,
)

__all__ = ["ReproServer"]

#: Largest accepted request body, in bytes (constraint arrays are the bulk).
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Ticket states that end an SSE stream.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class _HTTPError(Exception):
    """An error response: status code plus a structured JSON body."""

    def __init__(self, status: int, body: dict, headers: Optional[dict] = None):
        super().__init__(body.get("error", {}).get("message", ""))
        self.status = status
        self.body = body
        self.headers = dict(headers or {})


class _TicketRecord:
    """Server-side state of one ticket: the service ticket plus its event queue."""

    def __init__(self, rid: str, tenant: str, model: str) -> None:
        self.id = rid
        self.tenant = tenant
        self.model = model
        self.ticket: Optional[Ticket] = None
        self.events: list[dict] = []
        self.cond = threading.Condition()
        self.terminal = False

    def append(self, event: dict) -> None:
        """Queue one event for SSE consumers (any thread)."""
        with self.cond:
            self.events.append(event)
            if event.get("event") in _TERMINAL_EVENTS:
                self.terminal = True
            self.cond.notify_all()


def _json_safe(obj: Any) -> Any:
    """Defensive JSON coercion for introspection payloads (/v1/models)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Mapping):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return repr(obj)


class ReproServer:
    """The served solver: sessions, services, tenancy, and HTTP in one box.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (tests).  The resolved
        address is available as :attr:`url` after construction.
    model:
        Default model for requests that do not name one.
    max_workers:
        Worker-thread count of each per-model :class:`SolverService`.
    config, **overrides:
        Base solver configuration shared by every model's session, as in
        :func:`repro.solve`.
    tenants:
        ``{api_key: Tenant | {"tenant": name, ...quota fields}}`` (see
        :meth:`TenantRegistry.from_config`), or a ready
        :class:`TenantRegistry`.
    allow_anonymous:
        Whether unauthenticated requests run as the shared ``public``
        tenant.  Defaults to ``True`` when no tenants are configured.
    usage_log:
        Optional path; every finished ticket is appended as one JSON line.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        model: str = "streaming",
        max_workers: int = 2,
        config: Any = None,
        tenants: Any = None,
        allow_anonymous: Optional[bool] = None,
        usage_log: Any = None,
        verbose: bool = False,
        **overrides: Any,
    ) -> None:
        get_model(model)  # fail fast on an unknown default model
        self.default_model = model
        self.max_workers = int(max_workers)
        self.verbose = bool(verbose)
        if isinstance(tenants, TenantRegistry):
            self.tenants = tenants
        else:
            self.tenants = TenantRegistry.from_config(
                tenants,
                allow_anonymous=(
                    (tenants is None or not tenants)
                    if allow_anonymous is None
                    else bool(allow_anonymous)
                ),
            )
        self.ledger = UsageLedger(usage_log)
        self._pool = SessionPool(config=config, **overrides)
        self._services: dict[str, SolverService] = {}
        self._replaced: dict[str, int] = {}
        self._tickets: dict[str, _TicketRecord] = {}
        self._active: dict[str, int] = {}
        self._next_id = 1
        self._lock = threading.Lock()
        self._closed = False
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or SIGINT)."""
        self._serving.set()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self._serving.clear()

    def start(self) -> "ReproServer":
        """Serve on a background thread (tests, examples); returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-server", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the listener, drain every service, close the session pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services.values())
        # ``BaseServer.shutdown()`` blocks on an event that only
        # ``serve_forever()`` sets — calling it when the serve loop never
        # started (a signal landing between bind and serve) would hang.
        if self._serving.is_set():
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        for service in services:
            service.shutdown(wait=True)
        self._pool.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Services and tickets
    # ------------------------------------------------------------------ #

    def _service_for(self, model: str) -> SolverService:
        """The (lazily created) service of one model, session from the pool."""
        with self._lock:
            if self._closed:
                raise SessionError("server is shut down")
            service = self._services.get(model)
            if service is None:
                try:
                    session = self._pool.get(model)
                except RegistryError as exc:
                    raise RequestValidationError(str(exc), field="model") from None
                service = SolverService(
                    session=session, max_workers=self.max_workers
                )
                self._services[model] = service
            return service

    def stats(self) -> dict:
        """Aggregate service stats across models (``/v1/healthz``)."""
        with self._lock:
            services = dict(self._services)
        return {name: svc.stats() for name, svc in services.items()}

    def health(self) -> dict:
        """The deepened ``/v1/healthz`` body: liveness plus readiness.

        Liveness ("is the process serving?") is trivially ``ok`` once this
        runs.  Readiness is per model: a model is ready when its circuit is
        closed and its transport is not degraded; the aggregate ``status``
        stays ``"ok"`` while every instantiated model is ready and turns
        ``"degraded"`` otherwise (load balancers key off it without parsing
        the per-model detail).
        """
        with self._lock:
            services = dict(self._services)
            replaced = dict(self._replaced)
        models: dict[str, Any] = {}
        all_ready = True
        for name, svc in services.items():
            circuit = svc.breaker.describe()
            try:
                transport = svc.session.transport_health()
            except Exception as exc:  # noqa: BLE001 - health must not 500
                transport = {"kind": "unknown", "error": str(exc)}
            degraded = bool(transport.get("degraded"))
            if circuit["state"] != "closed":
                state = "circuit_open"
            elif degraded:
                state = "degraded"
            else:
                state = "ready"
            all_ready = all_ready and state == "ready"
            models[name] = {
                "state": state,
                "circuit": circuit,
                "transport": transport,
                "replacements": replaced.get(name, 0),
            }
            # Sessions on the TCP transport carry cluster membership: node
            # count and per-node liveness, promoted to its own block so
            # monitors need not know the transport report's layout.
            if "cluster" in transport:
                models[name]["cluster"] = transport["cluster"]
        return {
            "status": "ok" if all_ready else "degraded",
            "liveness": "ok",
            "readiness": {"ready": all_ready, "models": models},
            "services": self.stats(),
        }

    def _replace_service(self, model: str) -> None:
        """Swap out one poisoned model service after a terminal transport loss.

        Runs from a ticket's done-callback — i.e. on the dying service's own
        worker thread — so the drain (``shutdown(wait=True)`` joins that very
        thread) must happen on a background thread or it would deadlock.
        """
        with self._lock:
            if self._closed:
                return
            service = self._services.pop(model, None)
            if service is None:
                return
            self._replaced[model] = self._replaced.get(model, 0) + 1

        def _drain() -> None:
            try:
                service.shutdown(wait=True)
            finally:
                try:
                    self._pool.replace(model)
                except Exception:  # noqa: BLE001 - pool may be closing
                    pass

        threading.Thread(
            target=_drain, name=f"repro-replace-{model}", daemon=True
        ).start()

    def active_tickets(self, tenant: str) -> int:
        with self._lock:
            return self._active.get(tenant, 0)

    def submit(self, tenant: Tenant, payload: Mapping[str, Any]) -> _TicketRecord:
        """Validate, admit, and enqueue one solve request."""
        if not isinstance(payload, Mapping):
            raise RequestValidationError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        model = payload.get("model") or self.default_model
        if not isinstance(model, str):
            raise RequestValidationError(
                f"model must be a string, got {type(model).__name__}", field="model"
            )
        overrides = payload.get("config") or {}
        if not isinstance(overrides, Mapping):
            raise RequestValidationError(
                f"config must be a JSON object of field overrides, got "
                f"{type(overrides).__name__}",
                field="config",
            )
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise RequestValidationError(
                    f"deadline_s must be a number, got {deadline_s!r}",
                    field="deadline_s",
                ) from None
            if deadline_s <= 0:
                raise RequestValidationError(
                    f"deadline_s must be > 0 (got {deadline_s!r})",
                    field="deadline_s",
                )
        budget = decode_budget(payload.get("budget"))
        problem = decode_problem(payload.get("problem"))
        service = self._service_for(model)

        # Admission control *after* validation (a malformed request is 400,
        # not a quota charge) but *before* the ticket exists: an over-quota
        # tenant never occupies a queue slot.
        admit(
            tenant,
            self.active_tickets(tenant.name),
            self.ledger.totals(tenant.name),
        )

        with self._lock:
            rid = f"t{self._next_id}"
            self._next_id += 1
            record = _TicketRecord(rid, tenant.name, model)
            self._tickets[rid] = record
            self._active[tenant.name] = self._active.get(tenant.name, 0) + 1
        try:
            ticket = service.submit(
                problem,
                deadline_s=deadline_s,
                budget=budget,
                tenant=tenant.name,
                on_progress=record.append,
                **dict(overrides),
            )
        except BaseException:
            with self._lock:
                self._active[tenant.name] -= 1
                self._tickets.pop(rid, None)
            raise
        record.ticket = ticket
        record.append({"event": "queued", "ticket": rid, "model": model})
        ticket._future.add_done_callback(lambda _f: self._on_done(record))
        return record

    def _on_done(self, record: _TicketRecord) -> None:
        """Bill one finished ticket and emit its terminal event."""
        ticket = record.ticket
        assert ticket is not None
        with self._lock:
            self._active[record.tenant] = max(0, self._active.get(record.tenant, 1) - 1)
        started = ticket.started_at
        wall_s = (time.monotonic() - started) if started is not None else 0.0
        status = ticket.status
        iterations = 0
        bits = 0
        error_payload: Optional[dict] = None
        if status == "done":
            result = ticket.result()
            iterations = int(result.iterations)
            bits = int(result.resources.total_communication_bits)
        elif status == "failed":
            exc = ticket.error
            assert exc is not None
            error_payload = exception_to_error(exc)
            if isinstance(exc, BudgetExceededError):
                iterations = exc.iterations
                bits = exc.communication_bits
            if isinstance(exc, TransportFailure) and not exc.retryable:
                # The service's transport is beyond repair (restarts
                # exhausted, degradation disabled): retire the whole
                # service + session pair so the next request gets a fresh
                # one instead of hitting the same poisoned pool.
                self._replace_service(record.model)
        self.ledger.record(
            record.tenant,
            outcome=status,
            wall_s=wall_s,
            iterations=iterations,
            communication_bits=bits,
            ticket=record.id,
            model=record.model,
        )
        terminal = {"event": status, "ticket": record.id, "wall_s": wall_s}
        if error_payload is not None:
            terminal.update(error_payload)
        record.append(terminal)

    def ticket_record(self, rid: str, tenant: Tenant) -> _TicketRecord:
        with self._lock:
            record = self._tickets.get(rid)
        # Unknown id and someone else's ticket answer identically: ticket
        # ids must not leak across tenants.
        if record is None or record.tenant != tenant.name:
            raise _HTTPError(
                404, error_body("not_found", f"no ticket {rid!r} for this tenant")
            )
        return record

    def ticket_payload(self, record: _TicketRecord) -> dict:
        """The poll body of one ticket (result inline once finished)."""
        ticket = record.ticket
        assert ticket is not None
        status = ticket.status
        body: dict[str, Any] = {
            "id": record.id,
            "status": status,
            "tenant": record.tenant,
            "model": record.model,
            "wait_s": ticket.wait_s(),
            "result": None,
            "error": None,
        }
        if status == "done":
            body["result"] = ticket.result().to_dict()
        elif status == "failed":
            error = ticket.error
            assert error is not None
            body["error"] = exception_to_error(error)["error"]
        return body


# ---------------------------------------------------------------------- #
# The HTTP handler
# ---------------------------------------------------------------------- #


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-server/1"

    @property
    def app(self) -> ReproServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        if self.app.verbose:
            super().log_message(fmt, *args)

    # -------------------------------------------------------------- #
    # Plumbing
    # -------------------------------------------------------------- #

    def _send_json(
        self, status: int, body: dict, headers: Optional[dict] = None
    ) -> None:
        # json.dumps' default allow_nan keeps non-finite margins alive on
        # the wire (IEEE tokens); json.loads parses them back.
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(data)

    def _authenticate(self) -> Tenant:
        return self.app.tenants.authenticate(self.headers.get(API_KEY_HEADER))

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _HTTPError(
                400, error_body("invalid_request", "request body required")
            )
        if length > MAX_BODY_BYTES:
            raise _HTTPError(
                413,
                error_body(
                    "invalid_request",
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                ),
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise _HTTPError(
                400, error_body("invalid_request", f"malformed JSON body: {exc}")
            ) from None

    def _dispatch(self, handler: Any) -> None:
        try:
            handler()
        except _HTTPError as exc:
            self._send_json(exc.status, exc.body, exc.headers)
        except AuthenticationError as exc:
            self._send_json(401, error_body("unauthorized", str(exc)))
        except QuotaExceededError as exc:
            self._send_json(
                429,
                error_body(
                    "quota_exhausted",
                    str(exc),
                    reason=exc.reason,
                    limit=exc.limit,
                    used=exc.used,
                ),
                headers={"Retry-After": "1"},
            )
        except CircuitOpenError as exc:
            # A tripped per-model breaker: a structured 503 that names the
            # cooldown both in the body and in the Retry-After header.
            self._send_json(
                503,
                error_body(
                    "circuit_open",
                    str(exc),
                    retryable=True,
                    retry_after=exc.retry_after_s,
                    model=exc.model,
                ),
                headers={"Retry-After": str(max(1, math.ceil(exc.retry_after_s)))},
            )
        except RequestValidationError as exc:
            self._send_json(
                400,
                error_body("invalid_request", str(exc), field=exc.field),
            )
        except (InvalidConfigError, InvalidInstanceError) as exc:
            self._send_json(400, error_body("invalid_request", str(exc), field=""))
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - the 500 of last resort
            try:
                self._send_json(
                    500, error_body("internal", f"{type(exc).__name__}: {exc}")
                )
            except (BrokenPipeError, ConnectionResetError):
                self.close_connection = True

    # -------------------------------------------------------------- #
    # Routes
    # -------------------------------------------------------------- #

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch(self._post)

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch(self._get)

    def _post(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        if path != "/v1/solve":
            raise _HTTPError(404, error_body("not_found", f"no route {path!r}"))
        tenant = self._authenticate()
        record = self.app.submit(tenant, self._read_body())
        self._send_json(
            202,
            {
                "ticket": {
                    "id": record.id,
                    "status": "queued",
                    "tenant": record.tenant,
                    "model": record.model,
                    "links": {
                        "self": f"/v1/tickets/{record.id}",
                        "events": f"/v1/tickets/{record.id}/events",
                    },
                }
            },
        )

    def _get(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/")
        if path == "/v1/healthz":
            self._send_json(200, self.app.health())
            return
        if path == "/v1/models":
            models = {
                name: _json_safe(dict(describe_model(name)))
                for name in available_models()
            }
            self._send_json(
                200, {"default": self.app.default_model, "models": models}
            )
            return
        if path == "/v1/usage":
            tenant = self._authenticate()
            self._send_json(
                200,
                {
                    "tenant": tenant.name,
                    "quota": tenant.quota.as_dict(),
                    "active_tickets": self.app.active_tickets(tenant.name),
                    "usage": self.app.ledger.totals(tenant.name).as_dict(),
                },
            )
            return
        if path.startswith("/v1/tickets/"):
            tail = path[len("/v1/tickets/") :]
            if tail.endswith("/events"):
                rid = tail[: -len("/events")]
                tenant = self._authenticate()
                record = self.app.ticket_record(rid, tenant)
                query = parse_qs(parsed.query)
                timeout = float(query.get("timeout", ["300"])[0])
                # A reconnecting client replays from where its previous
                # stream broke off: Last-Event-ID carries the absolute
                # index of the last frame it saw.
                raw_last = self.headers.get("Last-Event-ID")
                try:
                    start = int(raw_last) + 1 if raw_last is not None else 0
                except ValueError:
                    start = 0
                self._stream_events(record, timeout, max(0, start))
                return
            tenant = self._authenticate()
            record = self.app.ticket_record(tail, tenant)
            self._send_json(200, self.app.ticket_payload(record))
            return
        raise _HTTPError(404, error_body("not_found", f"no route {path!r}"))

    def _stream_events(
        self, record: _TicketRecord, timeout: float, start: int = 0
    ) -> None:
        """Replay queued events from ``start``, then stream until terminal.

        Every frame carries ``id: <absolute index>`` so clients can resume
        a broken stream with ``Last-Event-ID`` and miss nothing.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        deadline = time.monotonic() + timeout
        index = start
        while True:
            with record.cond:
                while (
                    index >= len(record.events)
                    and not record.terminal
                    and time.monotonic() < deadline
                ):
                    record.cond.wait(timeout=0.25)
                batch = record.events[index:]
                batch_start = index
                index = len(record.events)
                terminal = record.terminal and index >= len(record.events)
            try:
                for offset, event in enumerate(batch):
                    payload = {k: v for k, v in event.items() if k != "event"}
                    self.wfile.write(
                        sse_event(
                            event["event"], payload, event_id=batch_start + offset
                        )
                    )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
            if terminal or time.monotonic() >= deadline:
                return
