"""``repro.server`` — the HTTP/SSE network face of the solver service.

Layers (each documented in its module):

* :mod:`repro.server.app` — :class:`ReproServer`: a stdlib
  ``ThreadingHTTPServer`` front end over per-model
  :class:`~repro.api.service.SolverService` instances sharing a
  :class:`~repro.api.session.SessionPool`;
* :mod:`repro.server.tenancy` — API keys, :class:`TenantQuota` admission
  control, 429s;
* :mod:`repro.server.wire` — request/error codecs and SSE frames around
  the ``repro-result/1`` result format;
* :mod:`repro.server.client` — :class:`ServiceClient`, the typed stdlib
  client the tests, examples, and load smoke drive real sockets with.

Start one with ``python -m repro serve`` or in-process::

    from repro.server import ReproServer, ServiceClient

    with ReproServer(port=0, model="streaming", seed=0) as server:
        client = ServiceClient(server.url)
        result = client.solve(problem)      # a SolveResult, bit-identical
                                            # to repro.solve(problem, seed=0)

See ``docs/service.md`` for the endpoint, tenancy, and SSE schemas.
"""

from .app import ReproServer
from .client import RemoteTicket, ServiceClient, ServiceError
from .tenancy import (
    AuthenticationError,
    QuotaExceededError,
    Tenant,
    TenantQuota,
    TenantRegistry,
)
from .wire import RequestValidationError, decode_problem, encode_problem

__all__ = [
    "AuthenticationError",
    "QuotaExceededError",
    "RemoteTicket",
    "ReproServer",
    "RequestValidationError",
    "ServiceClient",
    "ServiceError",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "decode_problem",
    "encode_problem",
]
