"""Two-party communication protocols for TCI, with exact bit accounting.

The lower bound of Theorem 7 says that any ``r``-round protocol for TCI on
the hard distribution needs ``~ n^{1/r} / r^2`` bits of communication.  The
protocols implemented here realise the matching upper-bound side, so the E8
benchmark can plot measured communication against the lower-bound curve:

* :func:`one_round_tci_protocol` — Alice sends her entire curve (``Theta(n)``
  values), Bob answers.  This is optimal for one round by Lemma 5.6.
* :func:`interactive_tci_protocol` — in each of ``r`` rounds the active
  player sends the curve values at ``~ n^{1/r}`` probe positions inside the
  current candidate interval; because ``A - B`` is non-decreasing, the other
  player can locate the sign change among the probes and reply with its
  position (``O(log n)`` bits).  After ``r`` rounds the interval has shrunk
  to a single candidate, for ``O(r * n^{1/r})`` values of communication in
  ``2r`` messages.

A small :class:`Transcript` class does the bookkeeping (messages, rounds,
bits) so the protocols stay readable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.accounting import BitCostModel
from ..core.exceptions import ProtocolError
from .tci import TCIInstance

__all__ = ["Transcript", "ProtocolResult", "one_round_tci_protocol", "interactive_tci_protocol"]


@dataclass
class Transcript:
    """Message log of a two-party protocol with bit accounting."""

    cost_model: BitCostModel = field(default_factory=BitCostModel)
    messages: list[dict] = field(default_factory=list)

    def send(self, sender: str, description: str, bits: int) -> None:
        if sender not in ("alice", "bob"):
            raise ProtocolError(f"unknown sender {sender!r}")
        if bits < 0:
            raise ProtocolError("message size must be non-negative")
        self.messages.append({"sender": sender, "description": description, "bits": bits})

    @property
    def total_bits(self) -> int:
        return sum(int(m["bits"]) for m in self.messages)

    @property
    def num_messages(self) -> int:
        return len(self.messages)

    @property
    def rounds(self) -> int:
        """Number of speaker alternations (a run of messages by one player is one message)."""
        rounds = 0
        previous = None
        for message in self.messages:
            if message["sender"] != previous:
                rounds += 1
                previous = message["sender"]
        return rounds


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of a protocol run: the answer and the communication costs."""

    answer: int
    total_bits: int
    rounds: int
    num_messages: int


def one_round_tci_protocol(
    instance: TCIInstance, cost_model: BitCostModel | None = None
) -> ProtocolResult:
    """Alice ships her whole curve to Bob; Bob computes the answer locally."""
    transcript = Transcript(cost_model=cost_model or BitCostModel())
    transcript.send(
        "alice", "full curve", transcript.cost_model.coefficients(instance.length)
    )
    answer = instance.solve()
    return ProtocolResult(
        answer=answer,
        total_bits=transcript.total_bits,
        rounds=transcript.rounds,
        num_messages=transcript.num_messages,
    )


def interactive_tci_protocol(
    instance: TCIInstance,
    rounds: int,
    cost_model: BitCostModel | None = None,
) -> ProtocolResult:
    """The ``r``-round probing protocol with ``O(r * n^{1/r})`` communication.

    Parameters
    ----------
    instance:
        The TCI instance; Alice's and Bob's curves are only ever accessed by
        "their" player inside the protocol (the simulator shares memory, the
        code keeps the access discipline).
    rounds:
        Number of probing rounds ``r >= 1``.
    cost_model:
        Bit-cost model for the accounting.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    transcript = Transcript(cost_model=cost_model or BitCostModel())
    n = instance.length
    probes_per_round = max(2, int(math.ceil(n ** (1.0 / rounds))) + 1)

    # Invariant: the crossing index lies in [low, high) (0-based positions of
    # the "last index where A <= B").  Initially [0, n - 1).
    low, high = 0, n - 1
    for round_number in range(rounds):
        if high - low <= 1:
            break
        sender_is_alice = round_number % 2 == 0
        probe_positions = np.unique(
            np.linspace(low, high, probes_per_round).astype(int)
        )
        if sender_is_alice:
            # Alice sends her curve values at the probe positions.
            transcript.send(
                "alice",
                f"A values at {probe_positions.size} probes",
                transcript.cost_model.coefficients(int(probe_positions.size))
                + transcript.cost_model.counters(int(probe_positions.size)),
            )
            below = instance.alice[probe_positions] <= instance.bob[probe_positions] + 1e-9
        else:
            transcript.send(
                "bob",
                f"B values at {probe_positions.size} probes",
                transcript.cost_model.coefficients(int(probe_positions.size))
                + transcript.cost_model.counters(int(probe_positions.size)),
            )
            below = instance.alice[probe_positions] <= instance.bob[probe_positions] + 1e-9
        # The receiver locates the last probe where A <= B and replies with
        # its position (log n bits).
        if not bool(below[0]):
            raise ProtocolError("invalid instance: A starts above B")
        last_below = int(np.max(np.flatnonzero(below)))
        receiver = "bob" if sender_is_alice else "alice"
        transcript.send(receiver, "bracket position", transcript.cost_model.counters(1))
        low = int(probe_positions[last_below])
        if last_below + 1 < probe_positions.size:
            high = int(probe_positions[last_below + 1])
        # else: the crossing is beyond the last probe, keep the old high.

    # Final exchange: one player sends its values on the remaining bracket
    # so the other can pin down the exact index.
    width = max(2, high - low + 1)
    transcript.send("alice", "final bracket values", transcript.cost_model.coefficients(width))
    segment = slice(low, min(n, high + 1))
    below = instance.alice[segment] <= instance.bob[segment] + 1e-9
    answer = low + int(np.max(np.flatnonzero(below))) + 1  # 1-based
    transcript.send("bob", "answer", transcript.cost_model.counters(1))

    return ProtocolResult(
        answer=answer,
        total_bits=transcript.total_bits,
        rounds=transcript.rounds,
        num_messages=transcript.num_messages,
    )
