"""The Two-Curve Intersection problem (TCI, Section 5.2).

Alice holds a monotonically increasing convex sequence ``A`` and Bob a
monotonically decreasing convex sequence ``B``, both of length ``n``, with
the promise that there is an index ``i*`` with ``a_{i*} <= b_{i*}`` and
``a_{i*+1} > b_{i*+1}``.  The goal is to find the smallest such index.

Note on the convexity convention: the paper's prose states the convexity of
``B`` as "``b_i - b_{i-1} >= b_{i+1} - b_i``" (differences non-increasing),
but its own reduction to 2-dimensional linear programming (Figure 1b) — where
the feasible region is the set of points above *both* curves and each curve
must therefore equal the upper envelope of its segment lines — requires both
curves to be convex as functions.  We adopt the convex convention
(differences of ``B`` non-decreasing) throughout; the Aug-Index hard
instances (where ``B`` is a straight line) satisfy both conventions, so none
of the lower-bound reductions are affected.

This module provides:

* :class:`TCIInstance` — the instance representation with promise
  validation and an exact solver;
* :func:`tci_to_linear_program` — the reduction of Section 5.2 from TCI to a
  2-dimensional linear program (Figure 1b): every curve segment is extended
  to a line whose upper halfplane is a constraint, the LP minimises the
  ``y``-coordinate over the feasible region, and flooring the ``x``
  coordinate of the optimum recovers ``i*``;
* :func:`tci_to_envelope_lp` — the same constraint lines in the upper
  envelope form consumed by the Chan-Chen baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import InvalidInstanceError
from ..problems.linear_program import LinearProgram
from .gadgets import differences

__all__ = ["TCIInstance", "tci_to_linear_program", "tci_to_envelope_lp", "lp_optimum_to_index"]

_PROMISE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class TCIInstance:
    """A two-curve-intersection instance ``(A, B)``.

    Attributes
    ----------
    alice:
        Alice's increasing convex sequence.
    bob:
        Bob's decreasing convex sequence (differences non-decreasing).
    """

    alice: np.ndarray
    bob: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "alice", np.asarray(self.alice, dtype=float).reshape(-1))
        object.__setattr__(self, "bob", np.asarray(self.bob, dtype=float).reshape(-1))
        if self.alice.size != self.bob.size:
            raise InvalidInstanceError(
                f"curves have different lengths: {self.alice.size} vs {self.bob.size}"
            )
        if self.alice.size < 2:
            raise InvalidInstanceError("TCI instances need at least two points")

    # ------------------------------------------------------------------ #
    # Promise validation
    # ------------------------------------------------------------------ #

    @property
    def length(self) -> int:
        return int(self.alice.size)

    def alice_is_valid(self) -> bool:
        """Alice's curve must be increasing and convex."""
        diffs = differences(self.alice)
        increasing = bool(np.all(diffs > -_PROMISE_TOLERANCE))
        convex = bool(np.all(np.diff(diffs) >= -_PROMISE_TOLERANCE)) if diffs.size > 1 else True
        return increasing and convex

    def bob_is_valid(self) -> bool:
        """Bob's curve must be decreasing and convex (differences non-decreasing)."""
        diffs = differences(self.bob)
        decreasing = bool(np.all(diffs < _PROMISE_TOLERANCE))
        convex = bool(np.all(np.diff(diffs) >= -_PROMISE_TOLERANCE)) if diffs.size > 1 else True
        return decreasing and convex

    def crossing_exists(self) -> bool:
        """Whether the promised crossing index exists."""
        return self.solve(validate=False) is not None

    def is_valid(self) -> bool:
        """Full promise check: both curves valid and a crossing exists."""
        return self.alice_is_valid() and self.bob_is_valid() and self.crossing_exists()

    def validate(self) -> None:
        """Raise :class:`InvalidInstanceError` when the promise is violated."""
        if not self.alice_is_valid():
            raise InvalidInstanceError("Alice's curve is not increasing and convex")
        if not self.bob_is_valid():
            raise InvalidInstanceError("Bob's curve is not decreasing and convex")
        if not self.crossing_exists():
            raise InvalidInstanceError("the promised crossing index does not exist")

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def solve(self, validate: bool = True) -> int | None:
        """The smallest index ``i`` (1-based) with ``a_i <= b_i < a_{i+1} > b_{i+1}``.

        Returns ``None`` when no such index exists and ``validate`` is
        ``False``; raises otherwise.
        """
        below = self.alice <= self.bob + _PROMISE_TOLERANCE
        for i in range(self.length - 1):
            if below[i] and not below[i + 1]:
                return i + 1  # 1-based index, as in the paper
        if validate:
            raise InvalidInstanceError("the promised crossing index does not exist")
        return None

    def solve_binary_search(self) -> int:
        """The crossing index via binary search on ``A - B`` (which is increasing).

        Used by the interactive communication protocols: the difference
        sequence ``a_i - b_i`` is non-decreasing under the promise, so the
        sign change can be located with ``O(log n)`` probes.
        """
        low, high = 0, self.length - 1  # 0-based positions
        # Invariant: a[low] <= b[low] and a[high] > b[high].
        if self.alice[low] > self.bob[low] + _PROMISE_TOLERANCE:
            raise InvalidInstanceError("curve A starts above curve B")
        if self.alice[high] <= self.bob[high] + _PROMISE_TOLERANCE:
            raise InvalidInstanceError("curve A never goes above curve B")
        while high - low > 1:
            mid = (low + high) // 2
            if self.alice[mid] <= self.bob[mid] + _PROMISE_TOLERANCE:
                low = mid
            else:
                high = mid
        return low + 1  # 1-based


def _segment_lines(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Slopes and intercepts of the lines extending each curve segment.

    Segment ``i`` joins the points ``(i+1, values[i])`` and
    ``(i+2, values[i+1])`` (1-based x positions, as in the paper's figures).
    """
    positions = np.arange(1, values.size + 1, dtype=float)
    slopes = np.diff(values) / np.diff(positions)
    intercepts = values[:-1] - slopes * positions[:-1]
    return slopes, intercepts


def tci_to_linear_program(instance: TCIInstance, box_bound: float | None = None) -> LinearProgram:
    """Reduce a TCI instance to a 2-dimensional linear program (Figure 1b).

    Each segment of each curve is extended to a full line; the constraint
    requires the point ``(x, y)`` to lie on or above that line.  Minimising
    ``y`` over the feasible region puts the optimum at the crossing of the
    two curves' upper envelopes; flooring its ``x`` coordinate recovers the
    TCI answer (see :func:`lp_optimum_to_index`).
    """
    a_slopes, a_intercepts = _segment_lines(instance.alice)
    b_slopes, b_intercepts = _segment_lines(instance.bob)
    slopes = np.concatenate([a_slopes, b_slopes])
    intercepts = np.concatenate([a_intercepts, b_intercepts])

    # y >= s * x + t   <=>   s * x - y <= -t
    a_matrix = np.column_stack([slopes, -np.ones_like(slopes)])
    b_vector = -intercepts
    if box_bound is None:
        # The optimum's coordinates are bounded by the curve values; pad generously.
        largest = float(
            max(
                np.abs(instance.alice).max(),
                np.abs(instance.bob).max(),
                instance.length,
            )
        )
        box_bound = 10.0 * largest + 10.0
    objective = np.array([0.0, 1.0])
    # The optimum of this LP is the unique crossing vertex of the two upper
    # envelopes, so the lexicographic tie-breaking of the general LP-type
    # formulation is unnecessary; disabling it avoids the extra refinement
    # solves (and their tolerance slack) when decoding the answer.
    return LinearProgram(
        c=objective, a=a_matrix, b=b_vector, box_bound=box_bound, lexicographic=False
    )


def tci_to_envelope_lp(instance: TCIInstance):
    """The same reduction in upper-envelope form (for the Chan-Chen baseline)."""
    from ..algorithms.chan_chen import EnvelopeLP

    a_slopes, a_intercepts = _segment_lines(instance.alice)
    b_slopes, b_intercepts = _segment_lines(instance.bob)
    slopes = np.concatenate([a_slopes, b_slopes])
    intercepts = np.concatenate([a_intercepts, b_intercepts])
    return EnvelopeLP(
        slopes=slopes,
        intercepts=intercepts,
        x_low=1.0,
        x_high=float(instance.length),
    )


def lp_optimum_to_index(x_coordinate: float, length: int) -> int:
    """Convert the LP optimum's ``x`` coordinate to the TCI answer.

    The crossing of the two piecewise-linear curves happens at a fractional
    ``x`` in ``[i*, i* + 1)``; rounding down (with a small relative tolerance
    for the boundary case where the crossing is within solver accuracy of an
    integer grid point) recovers ``i*``.
    """
    tolerance = 1e-6 * max(1.0, abs(float(x_coordinate)))
    index = int(np.floor(x_coordinate + tolerance))
    return max(1, min(length - 1, index))
