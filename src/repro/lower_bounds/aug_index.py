"""The Augmented Indexing problem and its reduction to TCI (Lemma 5.6).

In ``Aug-Index_n`` Alice holds a bit string ``x`` of length ``n``, Bob holds
an index ``i*`` together with the prefix ``x_1 .. x_{i*-1}``, and Bob must
output ``x_{i*}``.  Its one-round communication complexity is ``Omega(n)``,
and Lemma 5.6 transfers that bound to TCI: the players build (with no
communication) a TCI instance whose answer reveals ``x_{i*}``.

The construction here follows the paper's recipe — Alice's curve is a step
curve whose increments encode her bits, Bob's curve is a steep decreasing
line anchored just above the two possible values of ``a_{i*+1}`` — with the
indexing made fully explicit (the paper's description has an off-by-one in
the step sizes that we resolve and verify exhaustively in the tests):

* ``a_1 = 0`` and ``a_{j+1} = a_j + alpha + j + x_j``;
* ``b_j = h - sigma * (j - (i* + 1))`` with
  ``h = a_{i*} + alpha + i* + 1/2`` (the midpoint of the two candidate
  values of ``a_{i*+1}``) and any slope ``sigma > 0``.

Then the TCI answer is ``i*`` when ``x_{i*} = 1`` and ``i* + 1`` when
``x_{i*} = 0``, so recovering the answer recovers the bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import InvalidInstanceError
from ..core.rng import SeedLike, as_generator
from .tci import TCIInstance

__all__ = ["AugIndexInstance", "aug_index_to_tci", "bit_from_tci_answer", "random_aug_index"]


@dataclass(frozen=True)
class AugIndexInstance:
    """An Augmented Indexing instance.

    Attributes
    ----------
    bits:
        Alice's bit string ``x`` (0/1 integer array of length ``m``).
    index:
        Bob's index ``i*`` (1-based, in ``[1, m]``).
    """

    bits: np.ndarray
    index: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "bits", np.asarray(self.bits, dtype=int).reshape(-1))
        if self.bits.size < 1:
            raise InvalidInstanceError("the bit string must be non-empty")
        if not np.all(np.isin(self.bits, (0, 1))):
            raise InvalidInstanceError("bits must be 0/1 valued")
        if not 1 <= self.index <= self.bits.size:
            raise InvalidInstanceError(
                f"index must lie in [1, {self.bits.size}], got {self.index}"
            )

    @property
    def length(self) -> int:
        return int(self.bits.size)

    @property
    def prefix(self) -> np.ndarray:
        """The prefix ``x_1 .. x_{i*-1}`` Bob is given."""
        return self.bits[: self.index - 1].copy()

    @property
    def answer(self) -> int:
        """The bit Bob must output."""
        return int(self.bits[self.index - 1])


def alice_curve(bits: np.ndarray, alpha: float = 0.0) -> np.ndarray:
    """Alice's TCI curve: ``a_1 = 0``, ``a_{j+1} = a_j + alpha + j + x_j``."""
    bits = np.asarray(bits, dtype=float).reshape(-1)
    increments = alpha + np.arange(1, bits.size + 1, dtype=float) + bits
    return np.concatenate([[0.0], np.cumsum(increments)])


def aug_index_to_tci(
    instance: AugIndexInstance, alpha: float = 0.0, sigma: float = 1.0
) -> TCIInstance:
    """Build the TCI instance of Lemma 5.6 from an Aug-Index instance.

    Alice's curve only depends on her bits (and the public parameters
    ``alpha`` and ``sigma``); Bob's curve only depends on his index, his
    prefix, and the public parameters — so the instance can be built with no
    communication, which is what makes the reduction work.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    m = instance.length
    # One padding point beyond the last encoded bit so that the answer
    # (which can be i* + 1 <= m + 1) always has a successor index.
    n = m + 2
    alice = alice_curve(np.append(instance.bits, 0), alpha=alpha)

    # Bob reconstructs a_1 .. a_{i*} from his prefix.
    prefix_curve = alice_curve(instance.prefix, alpha=alpha)
    a_istar = float(prefix_curve[-1])
    i_star = instance.index
    anchor = a_istar + alpha + i_star + 0.5
    positions = np.arange(1, n + 1, dtype=float)
    bob = anchor - sigma * (positions - (i_star + 1))
    return TCIInstance(alice=alice, bob=bob)


def bit_from_tci_answer(instance: AugIndexInstance, tci_answer: int) -> int:
    """Decode ``x_{i*}`` from the TCI answer (the last step of the reduction)."""
    if tci_answer == instance.index:
        return 1
    if tci_answer == instance.index + 1:
        return 0
    raise InvalidInstanceError(
        f"TCI answer {tci_answer} is incompatible with index {instance.index}"
    )


def random_aug_index(length: int, seed: SeedLike = None) -> AugIndexInstance:
    """A uniformly random Aug-Index instance (the hard distribution for r=1)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    rng = as_generator(seed)
    bits = rng.integers(0, 2, size=length)
    index = int(rng.integers(1, length + 1))
    return AugIndexInstance(bits=bits, index=index)
