"""The recursive hard input distribution ``D_r`` for TCI (Section 5.3.3).

An ``r``-round hard instance over ``n = N^r`` points is built from ``N``
independent ``(r-1)``-round sub-instances of length ``N^{r-1}``, one of which
(the *special* sub-instance, indexed by the hidden ``z*``) carries the
answer.  The composite curve of the first speaker (Alice for odd ``r``, Bob
for even ``r``) is the concatenation of all sub-instances' curves, so it is
oblivious to ``z*``; the other player's curve is the special sub-instance's
curve extended by straight lines across the remaining blocks.

The paper glues the sub-instances with *slope-shift* and *origin-shift*
operators whose exact parameters are left implicit; this implementation
makes them fully explicit and deterministic:

* every block ``i`` receives a non-negative slope shift ``s_i`` (the same
  linear ramp is added to *both* curves of the block, so the block's
  crossing index is unchanged) chosen from a closed-form schedule that
  guarantees the concatenated curve is valid (increasing and convex for
  Alice, decreasing and convex for Bob — see the convention note in
  :mod:`repro.lower_bounds.tci`);
* every block receives a vertical origin shift that makes the concatenated
  curve continuous-in-convexity across block boundaries;
* the base (``r = 1``) instances are the Lemma 5.6 / Aug-Index instances,
  generated with a *Bob steepness floor* — a minimum magnitude of Bob's
  decrement — pre-computed top-down so that every slope shift applied higher
  up in the recursion leaves Bob's curve decreasing.

Propositions 5.7-5.10 are verified directly by the test-suite on sampled
instances: composite instances satisfy the TCI promise, and the global
answer equals the special block's offset plus the special sub-instance's
answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.exceptions import InvalidInstanceError
from ..core.rng import SeedLike, as_generator
from .aug_index import AugIndexInstance, aug_index_to_tci
from .tci import TCIInstance

__all__ = ["HardInstance", "LevelSchedule", "build_schedule", "sample_hard_instance"]


@dataclass(frozen=True)
class HardInstance:
    """A sampled hard instance together with its hidden structure.

    Attributes
    ----------
    instance:
        The composite TCI instance handed to the players.
    special_block:
        The hidden index ``z*`` (1-based) of the special sub-instance at the
        top level (``0`` for base instances).
    block_length:
        Length of each top-level block (``N^{r-1}``).
    sub_answer:
        The answer of the (transformed) special sub-instance, relative to
        its own block.
    answer:
        The answer of the composite instance
        (``(z* - 1) * block_length + sub_answer`` for composite instances).
    rounds:
        The recursion depth ``r`` the instance was built for.
    """

    instance: TCIInstance
    special_block: int
    block_length: int
    sub_answer: int
    answer: int
    rounds: int


@dataclass(frozen=True)
class LevelSchedule:
    """Pre-computed validity parameters for one level of the recursion.

    ``alice_floor`` / ``bob_floor`` are the steepness floors required of the
    curves generated *below* this level; ``alice_range`` / ``bob_range`` are
    upper bounds on the spread (max minus min) of the increments of the
    curves produced *at* this level; ``shift_step`` is the slope-shift
    increment between consecutive blocks at this level (0 for the base
    level).
    """

    level: int
    alice_composite: bool
    alice_floor: float
    bob_floor: float
    alice_range: float
    bob_range: float
    shift_step: float


def build_schedule(branching: int, rounds: int) -> list[LevelSchedule]:
    """Compute the per-level floors, ranges, and shift steps.

    The ranges track, for each level, the width of the interval containing
    *every possible* increment of any instance of that level (Alice and Bob
    separately); they grow bottom-up as

    * Alice-composite level:  ``shift = range_A + 1``, then both ranges grow
      by ``(N - 1) * shift`` (every block may receive any shift in the
      schedule, and the special block's Bob curve inherits its block's
      shift);
    * Bob-composite level:    ``shift = range_B + 1``, then both ranges grow
      by ``(N - 1) * shift``,

    starting from ``range_A = N + 1`` and ``range_B = 0`` for the base
    instances.  All shifts are non-negative, so only Bob's curve (which must
    stay decreasing) needs a steepness floor; it accumulates the shift span
    of every level above it.  Level ``ell`` is Alice-composite when ``ell``
    is odd and Bob-composite when ``ell`` is even, matching ``OddInstance`` /
    ``EvenInstance`` in the paper.
    """
    if branching < 2:
        raise ValueError("branching factor must be >= 2")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")

    # Bottom-up: increment-interval widths and shift steps per level.
    alice_range = [0.0] * (rounds + 1)
    bob_range = [0.0] * (rounds + 1)
    shift_step = [0.0] * (rounds + 1)
    alice_range[1] = float(branching + 1)
    bob_range[1] = 0.0
    for level in range(2, rounds + 1):
        if level % 2 == 1:  # Alice-composite
            shift_step[level] = alice_range[level - 1] + 1.0
        else:  # Bob-composite
            shift_step[level] = bob_range[level - 1] + 1.0
        span = (branching - 1) * shift_step[level]
        alice_range[level] = alice_range[level - 1] + span
        bob_range[level] = bob_range[level - 1] + span

    # Top-down: steepness floors required below each level.  Every composite
    # level tilts the curves upward by at most its shift span, so Bob's floor
    # (the minimum magnitude of his decrements) accumulates the spans; Alice
    # only ever becomes steeper, so her floor stays at 1.
    alice_floor = [1.0] * (rounds + 1)
    bob_floor = [1.0] * (rounds + 1)
    for level in range(rounds, 1, -1):
        span = (branching - 1) * shift_step[level]
        bob_floor[level - 1] = bob_floor[level] + span
        alice_floor[level - 1] = alice_floor[level]

    return [
        LevelSchedule(
            level=level,
            alice_composite=(level % 2 == 1),
            alice_floor=alice_floor[level],
            bob_floor=bob_floor[level],
            alice_range=alice_range[level],
            bob_range=bob_range[level],
            shift_step=shift_step[level],
        )
        for level in range(1, rounds + 1)
    ]


def _base_instance(
    branching: int,
    schedule: LevelSchedule,
    rng: np.random.Generator,
) -> HardInstance:
    """Sample a base (Lemma 5.6) instance respecting the steepness floors."""
    num_bits = branching - 2
    if num_bits < 1:
        raise InvalidInstanceError("branching factor must be at least 3 for base instances")
    bits = rng.integers(0, 2, size=num_bits)
    index = int(rng.integers(1, num_bits + 1))
    aug = AugIndexInstance(bits=bits, index=index)
    tci = aug_index_to_tci(aug, alpha=schedule.alice_floor, sigma=schedule.bob_floor)
    answer = tci.solve()
    return HardInstance(
        instance=tci,
        special_block=0,
        block_length=tci.length,
        sub_answer=answer,
        answer=answer,
        rounds=1,
    )


def _apply_block_transform(
    values: np.ndarray, slope: float, offset: float
) -> np.ndarray:
    """Add the ramp ``offset + slope * position`` to a block's values."""
    positions = np.arange(values.size, dtype=float)
    return values + offset + slope * positions


def _compose(
    children: list[HardInstance],
    special_block: int,
    schedule: LevelSchedule,
    branching: int,
) -> HardInstance:
    """Glue ``branching`` child instances into one composite instance."""
    block_length = children[0].instance.length
    n = block_length * branching
    alice_composite = schedule.alice_composite

    # Slope shift per block: non-negative and increasing with the block
    # index, so the concatenated curve's increments keep growing (Alice's
    # stay increasing-convex, Bob's stay convex while remaining negative
    # thanks to the steepness floor of the schedule).
    slopes = [schedule.shift_step * i for i in range(branching)]

    transformed_alice: list[np.ndarray] = []
    transformed_bob: list[np.ndarray] = []
    # First pass: apply slope shifts (vertical offsets are fixed afterwards so
    # that the composite curve is continuous in the convexity sense).
    for i, child in enumerate(children):
        transformed_alice.append(_apply_block_transform(child.instance.alice, slopes[i], 0.0))
        transformed_bob.append(_apply_block_transform(child.instance.bob, slopes[i], 0.0))

    # Second pass: vertical offsets for the composite curve.
    composite_blocks = transformed_alice if alice_composite else transformed_bob
    offsets = [0.0] * branching
    for i in range(1, branching):
        prev = composite_blocks[i - 1] + offsets[i - 1]
        current = composite_blocks[i]
        if alice_composite:
            # Boundary increment = first increment of the new block.
            boundary = current[1] - current[0] if current.size > 1 else 1.0
            offsets[i] = float(prev[-1] + boundary - current[0])
        else:
            boundary = current[1] - current[0] if current.size > 1 else -1.0
            offsets[i] = float(prev[-1] + boundary - current[0])

    # Build the composite (first speaker's) curve.
    composite = np.concatenate(
        [composite_blocks[i] + offsets[i] for i in range(branching)]
    )

    # Build the other player's curve: the special block's curve, extended by
    # straight lines on both sides.  The special block inherits the SAME
    # slope shift and vertical offset as its composite counterpart, so the
    # within-block difference of the two curves (and hence the crossing
    # index) is preserved.
    z = special_block  # 1-based
    special_child = children[z - 1]
    special_offset = offsets[z - 1]
    if alice_composite:
        special_curve = transformed_bob[z - 1] + special_offset
    else:
        special_curve = transformed_alice[z - 1] + special_offset

    first_diff = float(special_curve[1] - special_curve[0])
    last_diff = float(special_curve[-1] - special_curve[-2])
    block_start = (z - 1) * block_length  # 0-based global position of the block's first point

    other = np.empty(n, dtype=float)
    other[block_start : block_start + block_length] = special_curve
    # Left extension along the first segment's line.
    left_positions = np.arange(block_start, dtype=float)
    other[:block_start] = special_curve[0] - first_diff * (block_start - left_positions)
    # Right extension along the last segment's line.
    right_count = n - (block_start + block_length)
    if right_count > 0:
        steps = np.arange(1, right_count + 1, dtype=float)
        other[block_start + block_length :] = special_curve[-1] + last_diff * steps

    if alice_composite:
        alice, bob = composite, other
    else:
        alice, bob = other, composite

    instance = TCIInstance(alice=alice, bob=bob)
    sub_answer = special_child.answer
    answer = (z - 1) * block_length + sub_answer
    return HardInstance(
        instance=instance,
        special_block=z,
        block_length=block_length,
        sub_answer=sub_answer,
        answer=answer,
        rounds=schedule.level,
    )


def sample_hard_instance(
    branching: int,
    rounds: int,
    seed: SeedLike = None,
) -> HardInstance:
    """Sample an instance from the hard distribution ``D_rounds``.

    Parameters
    ----------
    branching:
        ``N``, the number of sub-instances per level (and the base-instance
        length); must be at least 3.
    rounds:
        ``r``, the recursion depth; the instance has ``N^r`` points.
    seed:
        Randomness for the bits, indices, and hidden block choices.
    """
    if branching < 3:
        raise ValueError("branching must be >= 3")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    rng = as_generator(seed)
    schedule = build_schedule(branching, rounds)

    def build(level: int) -> HardInstance:
        if level == 1:
            return _base_instance(branching, schedule[0], rng)
        children = [build(level - 1) for _ in range(branching)]
        special = int(rng.integers(1, branching + 1))
        return _compose(children, special, schedule[level - 1], branching)

    return build(rounds)
