"""Lower-bound machinery: TCI, Aug-Index, hard distributions, and protocols."""

from .aug_index import (
    AugIndexInstance,
    aug_index_to_tci,
    bit_from_tci_answer,
    random_aug_index,
)
from .gadgets import differences, line_segment, origin_shift, slope_shift, step_curve
from .hard_distribution import (
    HardInstance,
    LevelSchedule,
    build_schedule,
    sample_hard_instance,
)
from .protocols import (
    ProtocolResult,
    Transcript,
    interactive_tci_protocol,
    one_round_tci_protocol,
)
from .tci import TCIInstance, lp_optimum_to_index, tci_to_envelope_lp, tci_to_linear_program

__all__ = [
    "AugIndexInstance",
    "aug_index_to_tci",
    "bit_from_tci_answer",
    "random_aug_index",
    "differences",
    "line_segment",
    "origin_shift",
    "slope_shift",
    "step_curve",
    "HardInstance",
    "LevelSchedule",
    "build_schedule",
    "sample_hard_instance",
    "ProtocolResult",
    "Transcript",
    "interactive_tci_protocol",
    "one_round_tci_protocol",
    "TCIInstance",
    "lp_optimum_to_index",
    "tci_to_envelope_lp",
    "tci_to_linear_program",
]
