"""Geometric gadgets used by the lower-bound constructions (Section 5.2).

* :func:`line_segment` — the ``LineSegment(p1, p2, a, b)`` operator and the
  two elementary facts about it (Fact 5.5) are exposed for the tests;
* :func:`step_curve` — the ``StepCurve(X, alpha)`` operator: a convex,
  increasing sequence whose increments encode the bits of ``X``;
* :func:`slope_shift` / :func:`origin_shift` — the two operators used by the
  recursive hard-instance construction of Section 5.3.3, realised as
  explicit affine maps on value sequences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["line_segment", "step_curve", "slope_shift", "origin_shift", "differences"]


def line_segment(
    p1: tuple[float, float], p2: tuple[float, float], a: int, b: int
) -> np.ndarray:
    """Values ``z_a, ..., z_b`` of the line through ``p1`` and ``p2``.

    Implements ``LineSegment(p1, p2, a, b)`` of Section 5.2: for every
    integer ``i`` in ``[a, b]``, ``(i, z_i)`` lies on the unique line through
    ``p1`` and ``p2`` (Fact 5.5 gives the closed form used here).
    """
    if a > b:
        raise ValueError(f"a must not exceed b, got a={a}, b={b}")
    x1, y1 = float(p1[0]), float(p1[1])
    x2, y2 = float(p2[0]), float(p2[1])
    if x1 == x2:
        raise ValueError("the two points must have distinct x coordinates")
    slope = (y2 - y1) / (x2 - x1)
    positions = np.arange(a, b + 1, dtype=float)
    return slope * (positions - x1) + y1


def step_curve(bits: Sequence[int] | np.ndarray, alpha: float) -> np.ndarray:
    """The ``StepCurve(X, alpha)`` sequence ``z_0, ..., z_m``.

    ``z_0 = 0`` and ``z_i = z_{i-1} + alpha + i + x_i``; the increments are
    strictly increasing (for ``alpha >= 0``), so the sequence is convex and
    increasing, and the ``i``-th increment reveals the ``i``-th bit.
    """
    bit_array = np.asarray(bits, dtype=float).reshape(-1)
    if bit_array.size and not np.all(np.isin(bit_array, (0.0, 1.0))):
        raise ValueError("bits must be 0/1 valued")
    increments = alpha + np.arange(1, bit_array.size + 1, dtype=float) + bit_array
    values = np.concatenate([[0.0], np.cumsum(increments)])
    return values


def differences(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Consecutive differences of a value sequence (empty for length <= 1)."""
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size <= 1:
        return np.zeros(0)
    return np.diff(arr)


def slope_shift(values: Sequence[float] | np.ndarray, alpha: float) -> np.ndarray:
    """Add ``alpha`` to every increment of a value sequence.

    This is the slope-shift operator: a curve with increments ``delta_i``
    becomes one with increments ``delta_i + alpha`` (the first value is kept
    fixed).  Applied with the same ``alpha`` to both curves of a TCI
    sub-instance it preserves the crossing index, because the pointwise
    difference of the two curves is unchanged.
    """
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 0:
        return arr.copy()
    offsets = alpha * np.arange(arr.size, dtype=float)
    return arr + offsets


def origin_shift(values: Sequence[float] | np.ndarray, offset: float) -> np.ndarray:
    """Translate a value sequence vertically by ``offset``.

    This is the origin-shift operator restricted to the value axis: the
    horizontal placement of a sub-instance is handled by the block layout of
    the recursive construction, so only the vertical anchoring remains.
    """
    arr = np.asarray(values, dtype=float).reshape(-1)
    return arr + float(offset)
