"""Synthetic workload generators for experiments, tests, and examples."""

from .classification import (
    ClassificationData,
    linear_separability_lp,
    make_separable_classification,
    svm_problem,
)
from .geometry_clouds import (
    clustered_points,
    meb_problem,
    sphere_surface_points,
    uniform_ball_points,
)
from .lp_instances import (
    LPInstance,
    degenerate_lp,
    infeasible_lp,
    random_feasible_lp,
    random_polytope_lp,
)
from .regression import RegressionData, chebyshev_regression_lp, make_regression_data
from .streams import blocked_order, identity_order, random_order, sorted_by_tightness_order
from .transport_probe import transport_probe_task, transport_ready_task

__all__ = [
    "ClassificationData",
    "linear_separability_lp",
    "make_separable_classification",
    "svm_problem",
    "clustered_points",
    "meb_problem",
    "sphere_surface_points",
    "uniform_ball_points",
    "LPInstance",
    "degenerate_lp",
    "infeasible_lp",
    "random_feasible_lp",
    "random_polytope_lp",
    "RegressionData",
    "chebyshev_regression_lp",
    "make_regression_data",
    "blocked_order",
    "identity_order",
    "random_order",
    "sorted_by_tightness_order",
    "transport_probe_task",
    "transport_ready_task",
]
