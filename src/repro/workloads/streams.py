"""Stream-order utilities.

The streaming model presents constraints in an arbitrary (possibly
adversarial) order; the coordinator and MPC models partition constraints
arbitrarily across machines.  These helpers produce the orderings and
partitions used by tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import SeedLike, as_generator

__all__ = [
    "identity_order",
    "random_order",
    "sorted_by_tightness_order",
    "blocked_order",
]


def identity_order(num_items: int) -> np.ndarray:
    """The natural order ``0, 1, ..., n-1``."""
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    return np.arange(num_items, dtype=int)


def random_order(num_items: int, seed: SeedLike = None) -> np.ndarray:
    """A uniformly random permutation of the items."""
    rng = as_generator(seed)
    return rng.permutation(num_items)


def sorted_by_tightness_order(
    a: np.ndarray, b: np.ndarray, point: np.ndarray, descending: bool = True
) -> np.ndarray:
    """Order constraints by slack ``b_j - a_j . point`` at a reference point.

    With ``descending=True`` the slackest constraints arrive first and the
    binding ones last — an adversarial-ish order for incremental algorithms,
    used to show that the meta-algorithm's pass count is order-insensitive.
    """
    slack = np.asarray(b, dtype=float) - np.asarray(a, dtype=float) @ np.asarray(
        point, dtype=float
    )
    order = np.argsort(slack)
    return order[::-1] if descending else order


def blocked_order(num_items: int, num_blocks: int, seed: SeedLike = None) -> np.ndarray:
    """Random order that keeps contiguous blocks together.

    Mimics data arriving in shuffled chunks (e.g. one file per site being
    replayed into a stream).
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    rng = as_generator(seed)
    boundaries = np.linspace(0, num_items, num_blocks + 1, dtype=int)
    blocks = [np.arange(boundaries[i], boundaries[i + 1]) for i in range(num_blocks)]
    rng.shuffle(blocks)
    if not blocks:
        return np.arange(num_items, dtype=int)
    return np.concatenate(blocks).astype(int)
