"""Random linear-programming workloads.

The paper motivates low-dimensional LPs that are heavily over-constrained
(``n >> d``).  The generators here produce such instances with a known
structure so that tests can verify optimality independently:

* :func:`random_feasible_lp` — constraints tangent to random points around a
  known interior point; always feasible and bounded inside the box.
* :func:`random_polytope_lp` — halfspaces tangent to the unit sphere; the
  feasible region contains the origin and is bounded.
* :func:`degenerate_lp` — many constraints through one optimal vertex, to
  exercise basis extraction under degeneracy.
* :func:`infeasible_lp` — a deliberately contradictory instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import SeedLike, as_generator
from ..problems.linear_program import DEFAULT_BOX_BOUND, LinearProgram

__all__ = [
    "LPInstance",
    "random_feasible_lp",
    "random_polytope_lp",
    "degenerate_lp",
    "infeasible_lp",
]


@dataclass(frozen=True)
class LPInstance:
    """A generated LP together with generation metadata."""

    problem: LinearProgram
    interior_point: np.ndarray | None
    metadata: dict


def _random_unit_vectors(count: int, dimension: int, rng: np.random.Generator) -> np.ndarray:
    vectors = rng.normal(size=(count, dimension))
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return vectors / norms


def random_feasible_lp(
    num_constraints: int,
    dimension: int,
    seed: SeedLike = None,
    slack_scale: float = 1.0,
    box_bound: float = DEFAULT_BOX_BOUND,
    solver: str = "highs",
    lexicographic: bool = True,
) -> LPInstance:
    """A feasible, bounded LP with a known interior point.

    Constraints are halfspaces ``a_j . x <= a_j . x0 + s_j`` with random unit
    normals ``a_j``, a random interior point ``x0`` and positive slacks
    ``s_j``, so ``x0`` is strictly feasible.  The objective is a random unit
    vector.
    """
    if num_constraints < 1:
        raise ValueError("num_constraints must be >= 1")
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    rng = as_generator(seed)
    interior = rng.uniform(-1.0, 1.0, size=dimension)
    normals = _random_unit_vectors(num_constraints, dimension, rng)
    slack = rng.uniform(0.1, 1.0, size=num_constraints) * slack_scale
    rhs = normals @ interior + slack
    objective = _random_unit_vectors(1, dimension, rng)[0]
    problem = LinearProgram(
        c=objective,
        a=normals,
        b=rhs,
        box_bound=box_bound,
        solver=solver,
        lexicographic=lexicographic,
    )
    return LPInstance(
        problem=problem,
        interior_point=interior,
        metadata={
            "kind": "random_feasible",
            "n": num_constraints,
            "d": dimension,
            "slack_scale": slack_scale,
        },
    )


def random_polytope_lp(
    num_constraints: int,
    dimension: int,
    seed: SeedLike = None,
    box_bound: float = DEFAULT_BOX_BOUND,
    solver: str = "highs",
    lexicographic: bool = True,
) -> LPInstance:
    """Halfspaces tangent to the unit sphere: ``a_j . x <= 1`` with unit ``a_j``.

    The feasible region contains the unit ball, is bounded for
    ``num_constraints`` in general position when ``n`` is large, and is
    always bounded inside the box.  With many constraints the optimum of a
    random linear objective lies near the sphere, which makes the violation
    structure non-trivial.
    """
    rng = as_generator(seed)
    normals = _random_unit_vectors(num_constraints, dimension, rng)
    rhs = np.ones(num_constraints)
    objective = _random_unit_vectors(1, dimension, rng)[0]
    problem = LinearProgram(
        c=objective,
        a=normals,
        b=rhs,
        box_bound=box_bound,
        solver=solver,
        lexicographic=lexicographic,
    )
    return LPInstance(
        problem=problem,
        interior_point=np.zeros(dimension),
        metadata={"kind": "random_polytope", "n": num_constraints, "d": dimension},
    )


def degenerate_lp(
    num_constraints: int,
    dimension: int,
    seed: SeedLike = None,
    box_bound: float = DEFAULT_BOX_BOUND,
) -> LPInstance:
    """An LP whose optimum is a single vertex shared by many constraints.

    All constraints are tangent to the point ``v = (1, 1, ..., 1)`` from the
    objective's side, so the optimum (for the objective ``-sum x_i``) is
    ``v`` and every constraint is tight there — maximal degeneracy for basis
    extraction.
    """
    rng = as_generator(seed)
    vertex = np.ones(dimension)
    # Normals pointing "outwards" with positive coordinates so that
    # minimising -sum(x) pushes the optimum into the shared vertex.
    normals = np.abs(rng.normal(size=(num_constraints, dimension))) + 0.1
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    rhs = normals @ vertex
    objective = -np.ones(dimension)
    problem = LinearProgram(c=objective, a=normals, b=rhs, box_bound=box_bound)
    return LPInstance(
        problem=problem,
        interior_point=np.zeros(dimension),
        metadata={"kind": "degenerate", "n": num_constraints, "d": dimension},
    )


def infeasible_lp(dimension: int = 2, box_bound: float = DEFAULT_BOX_BOUND) -> LPInstance:
    """A small infeasible instance (``x_0 <= -1`` and ``-x_0 <= -1``)."""
    a = np.zeros((2, dimension))
    a[0, 0] = 1.0
    a[1, 0] = -1.0
    b = np.array([-1.0, -1.0])
    problem = LinearProgram(c=np.ones(dimension), a=a, b=b, box_bound=box_bound)
    return LPInstance(
        problem=problem,
        interior_point=None,
        metadata={"kind": "infeasible", "n": 2, "d": dimension},
    )
