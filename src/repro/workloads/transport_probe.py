"""Importable node tasks for the transport benchmark and cluster smoke runs.

These live in the package (not in ``benchmarks/run_suite.py``) because every
transport backend must be able to unpickle the function *by reference*:
spawn-based process-pool workers re-import the parent script, but standalone
``python -m repro node`` agents only share the installed package, so any task
shipped over the TCP wire has to resolve from an importable module.
"""

from __future__ import annotations

__all__ = ["transport_probe_task", "transport_ready_task"]


def transport_probe_task(state, lo, hi, round_index):
    """Per-node task: touch this node's slice of the shared constraint rows.

    Reading one float per row pulls every 64-byte row (d = 8) through the
    page cache, so worker RSS honestly reflects whether the rows are private
    (pickle wire) or shared (zero-copy segments).
    """
    rows = state["problem"].constraint_pack().rows
    value = float(rows[int(lo) : int(hi), 0].sum()) + float(round_index)
    return state, value


def transport_ready_task(state):
    """Untimed readiness probe used to absorb worker start-up cost."""
    return state, "ready"
