"""Point-cloud workloads for the minimum-enclosing-ball (core VM) experiments."""

from __future__ import annotations

import numpy as np

from ..core.rng import SeedLike, as_generator
from ..problems.meb import MinimumEnclosingBall

__all__ = [
    "uniform_ball_points",
    "sphere_surface_points",
    "clustered_points",
    "meb_problem",
]


def uniform_ball_points(
    num_points: int,
    dimension: int,
    radius: float = 1.0,
    center: np.ndarray | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Points uniformly distributed inside a ball of the given radius."""
    if num_points < 1 or dimension < 1:
        raise ValueError("num_points and dimension must be >= 1")
    rng = as_generator(seed)
    directions = rng.normal(size=(num_points, dimension))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    radii = radius * rng.random(num_points) ** (1.0 / dimension)
    points = directions * radii[:, None]
    if center is not None:
        points = points + np.asarray(center, dtype=float)
    return points


def sphere_surface_points(
    num_points: int,
    dimension: int,
    radius: float = 1.0,
    center: np.ndarray | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Points uniformly distributed on the surface of a sphere.

    The minimum enclosing ball of a dense sample from a sphere is (close to)
    the sphere itself, which makes the true radius easy to verify in tests.
    """
    rng = as_generator(seed)
    directions = rng.normal(size=(num_points, dimension))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    points = radius * directions
    if center is not None:
        points = points + np.asarray(center, dtype=float)
    return points


def clustered_points(
    num_points: int,
    dimension: int,
    num_clusters: int = 3,
    cluster_spread: float = 0.2,
    domain_scale: float = 5.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """A mixture of Gaussian clusters (a realistic core-VM workload)."""
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    rng = as_generator(seed)
    centers = rng.uniform(-domain_scale, domain_scale, size=(num_clusters, dimension))
    assignment = rng.integers(0, num_clusters, size=num_points)
    noise = rng.normal(scale=cluster_spread, size=(num_points, dimension))
    return centers[assignment] + noise


def meb_problem(points: np.ndarray) -> MinimumEnclosingBall:
    """The minimum-enclosing-ball LP-type problem over a point cloud."""
    return MinimumEnclosingBall(points=points)
