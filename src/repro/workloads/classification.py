"""Classification workloads for the linear-SVM experiments.

Generates linearly separable labelled point clouds with a guaranteed margin,
plus the linear-separability LP of the paper's introduction (a feasibility /
maximum-margin LP in the L-infinity norm, which is a low-dimensional linear
program as opposed to the quadratic SVM objective).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import SeedLike, as_generator
from ..problems.linear_program import DEFAULT_BOX_BOUND, LinearProgram
from ..problems.svm import LinearSVM

__all__ = [
    "ClassificationData",
    "make_separable_classification",
    "svm_problem",
    "linear_separability_lp",
]


@dataclass(frozen=True)
class ClassificationData:
    """Labelled points with a known separating direction and margin."""

    points: np.ndarray
    labels: np.ndarray
    true_direction: np.ndarray
    margin: float


def make_separable_classification(
    num_samples: int,
    num_features: int,
    seed: SeedLike = None,
    margin: float = 0.5,
    spread: float = 2.0,
) -> ClassificationData:
    """Points separable by a hyperplane through the origin with a fixed margin.

    Points are drawn from a Gaussian, projected away from the separating
    hyperplane so that every point satisfies ``y * <w, x> >= margin`` for the
    (unit) true direction ``w``.
    """
    if num_samples < 2:
        raise ValueError("need at least two samples")
    if num_features < 1:
        raise ValueError("num_features must be >= 1")
    if margin <= 0:
        raise ValueError("margin must be positive")
    rng = as_generator(seed)
    direction = rng.normal(size=num_features)
    direction /= np.linalg.norm(direction)
    labels = np.where(rng.random(num_samples) < 0.5, 1.0, -1.0)
    # Ensure both classes appear.
    labels[0] = 1.0
    labels[1] = -1.0
    points = rng.normal(scale=spread, size=(num_samples, num_features))
    projections = points @ direction
    # Shift each point along the direction so that y * <w, x> >= margin.
    deficit = margin - labels * projections
    shift = np.maximum(deficit, 0.0) + rng.uniform(0.0, spread, size=num_samples)
    points = points + (labels * shift)[:, None] * direction
    return ClassificationData(
        points=points, labels=labels, true_direction=direction, margin=margin
    )


def svm_problem(data: ClassificationData) -> LinearSVM:
    """The hard-margin linear SVM problem for a classification data set."""
    return LinearSVM(points=data.points, labels=data.labels)


def linear_separability_lp(
    data: ClassificationData,
    box_bound: float = DEFAULT_BOX_BOUND,
) -> LinearProgram:
    """The linear-separability LP of the paper's introduction.

    Maximise the functional margin ``delta`` subject to
    ``y_j <u, x_j> >= delta`` and ``-1 <= u_i <= 1``: a ``(d + 1)``-variable
    linear program (variables ``(u, delta)``) with ``n + 2d`` constraints.
    The data are separable iff the optimum ``delta`` is positive.
    """
    points = np.asarray(data.points, dtype=float)
    labels = np.asarray(data.labels, dtype=float)
    num_samples, num_features = points.shape
    d = num_features + 1

    rows = []
    rhs = []
    # y_j <u, x_j> >= delta   <=>   -y_j x_j . u + delta <= 0
    for j in range(num_samples):
        row = np.zeros(d)
        row[:num_features] = -labels[j] * points[j]
        row[num_features] = 1.0
        rows.append(row)
        rhs.append(0.0)
    # |u_i| <= 1 to normalise the margin.
    for i in range(num_features):
        upper = np.zeros(d)
        upper[i] = 1.0
        rows.append(upper)
        rhs.append(1.0)
        lower = np.zeros(d)
        lower[i] = -1.0
        rows.append(lower)
        rhs.append(1.0)

    objective = np.zeros(d)
    objective[num_features] = -1.0  # maximise delta == minimise -delta
    return LinearProgram(
        c=objective, a=np.asarray(rows), b=np.asarray(rhs), box_bound=box_bound
    )
