"""Regression workloads expressed as low-dimensional linear programs.

The paper's introduction motivates LP-type problems with machine-learning
tasks such as robust regression and Chebyshev approximation.  Two of those
are naturally *low-dimensional* linear programs (the number of variables is
the number of model coefficients plus one, while the number of constraints is
proportional to the number of samples):

* **Chebyshev (L-infinity) regression** — minimise the maximum absolute
  residual of a linear model;
* **linear separability with maximum margin in the L-infinity sense** (see
  :mod:`repro.workloads.classification`).

Least-absolute-error (L1) regression is also mentioned in the paper; its LP
formulation needs one auxiliary variable per sample and is therefore *not*
low-dimensional.  We include a generator for the data (useful for examples)
and expose the L-infinity variant as the LP-type workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import SeedLike, as_generator
from ..problems.linear_program import DEFAULT_BOX_BOUND, LinearProgram

__all__ = ["RegressionData", "make_regression_data", "chebyshev_regression_lp"]


@dataclass(frozen=True)
class RegressionData:
    """A linear-regression data set ``y ~ X w`` with known ground truth."""

    features: np.ndarray
    targets: np.ndarray
    true_weights: np.ndarray
    noise_scale: float


def make_regression_data(
    num_samples: int,
    num_features: int,
    seed: SeedLike = None,
    noise_scale: float = 0.1,
    outlier_fraction: float = 0.0,
    outlier_scale: float = 10.0,
) -> RegressionData:
    """Random linear data with bounded (uniform) noise and optional outliers."""
    if num_samples < 1 or num_features < 1:
        raise ValueError("num_samples and num_features must be >= 1")
    rng = as_generator(seed)
    features = rng.normal(size=(num_samples, num_features))
    true_weights = rng.uniform(-2.0, 2.0, size=num_features)
    noise = rng.uniform(-noise_scale, noise_scale, size=num_samples)
    targets = features @ true_weights + noise
    if outlier_fraction > 0.0:
        count = int(np.ceil(outlier_fraction * num_samples))
        idx = rng.choice(num_samples, size=count, replace=False)
        targets[idx] += rng.choice([-1.0, 1.0], size=count) * outlier_scale
    return RegressionData(
        features=features,
        targets=targets,
        true_weights=true_weights,
        noise_scale=noise_scale,
    )


def chebyshev_regression_lp(
    data: RegressionData,
    box_bound: float = DEFAULT_BOX_BOUND,
    solver: str = "highs",
    lexicographic: bool = True,
) -> LinearProgram:
    """Chebyshev (minimax) regression as a ``(p + 1)``-dimensional LP.

    Variables are ``(w, e)``: the model weights and the maximum absolute
    residual.  For every sample ``(x_j, y_j)`` there are two constraints::

        x_j . w - e <= y_j        (residual  <= e)
        -x_j . w - e <= -y_j      (-residual <= e)

    and the objective minimises ``e``.  With ``n`` samples this yields ``2n``
    constraints over ``p + 1`` variables: exactly the over-constrained,
    low-dimensional regime of the paper.
    """
    features = np.asarray(data.features, dtype=float)
    targets = np.asarray(data.targets, dtype=float)
    num_samples, num_features = features.shape
    d = num_features + 1

    a = np.zeros((2 * num_samples, d))
    b = np.zeros(2 * num_samples)
    a[:num_samples, :num_features] = features
    a[:num_samples, num_features] = -1.0
    b[:num_samples] = targets
    a[num_samples:, :num_features] = -features
    a[num_samples:, num_features] = -1.0
    b[num_samples:] = -targets

    objective = np.zeros(d)
    objective[num_features] = 1.0
    return LinearProgram(
        c=objective,
        a=a,
        b=b,
        box_bound=box_bound,
        solver=solver,
        lexicographic=lexicographic,
    )
