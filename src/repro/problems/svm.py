"""Hard-margin linear support vector machine as an LP-type problem (Section 4.2).

The problem is

    min  ||u||^2    subject to    y_j * <u, x_j> >= 1   for all j,

i.e. a maximum-margin separating hyperplane through the origin.  It is not a
linear program, but it is an LP-type problem with combinatorial dimension and
VC dimension at most ``d + 1``; the optimal ``u`` under any subset of the
constraints is unique (strict convexity), so no lexicographic tie-breaking is
needed.

Each constraint corresponds to one labelled data point ``(x_j, y_j)``; a
constraint is violated at ``u`` when ``y_j <u, x_j> < 1``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.exceptions import InfeasibleProblemError, InvalidInstanceError
from ..core.lptype import (
    BasisResult,
    ConstraintPack,
    LPTypeProblem,
    as_index_array,
    working_set_solve,
)
from .qp import minimize_convex_qp

__all__ = ["SVMValue", "LinearSVM"]


@functools.total_ordering
@dataclass(frozen=True)
class SVMValue:
    """Totally ordered value of ``f`` for the SVM problem.

    Values compare on the squared norm of the optimal ``u``; an infeasible
    (non-separable) subset is the top element.
    """

    squared_norm: float
    infeasible: bool = False
    tolerance: float = 1e-6

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SVMValue):
            return NotImplemented
        if self.infeasible or other.infeasible:
            return self.infeasible == other.infeasible
        return abs(self.squared_norm - other.squared_norm) <= self.tolerance * max(
            1.0, abs(self.squared_norm), abs(other.squared_norm)
        )

    def __lt__(self, other: "SVMValue") -> bool:
        if not isinstance(other, SVMValue):
            return NotImplemented
        if self == other:
            return False
        if self.infeasible:
            return False
        if other.infeasible:
            return True
        return self.squared_norm < other.squared_norm

    def __hash__(self) -> int:
        return hash((self.infeasible, round(self.squared_norm, 6)))


class LinearSVM(LPTypeProblem):
    """Hard-margin linear SVM over labelled points.

    Parameters
    ----------
    points:
        Data matrix of shape ``(n, d)``.
    labels:
        Labels in ``{-1, +1}`` of shape ``(n,)``.
    tolerance:
        Margin-violation tolerance used in violation tests.
    """

    def __init__(
        self,
        points: Sequence[Sequence[float]] | np.ndarray,
        labels: Sequence[int] | np.ndarray,
        tolerance: float = 1e-6,
    ) -> None:
        self.points = np.asarray(points, dtype=float)
        self.labels = np.asarray(labels, dtype=float).reshape(-1)
        if self.points.ndim != 2:
            raise InvalidInstanceError("points must be a 2-d array")
        if self.points.shape[0] != self.labels.size:
            raise InvalidInstanceError(
                f"{self.points.shape[0]} points but {self.labels.size} labels"
            )
        if not np.all(np.isin(self.labels, (-1.0, 1.0))):
            raise InvalidInstanceError("labels must be -1 or +1")
        self.tolerance = float(tolerance)
        # Pre-compute the signed data matrix y_j * x_j used in every solve.
        self._signed = self.points * self.labels[:, None]

    # ------------------------------------------------------------------ #
    # LPTypeProblem interface
    # ------------------------------------------------------------------ #

    @property
    def num_constraints(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def bit_size(self) -> int:
        # d coordinates plus the label.
        return self.dimension * 64 + 8

    def payload_num_coefficients(self) -> int:
        return self.dimension + 1

    def constraint_payload(self, index: int) -> tuple[np.ndarray, float]:
        return self.points[index].copy(), float(self.labels[index])

    def solve_subset(self, indices: Sequence[int]) -> BasisResult:
        return working_set_solve(self, as_index_array(indices), self._solve_subset_direct)

    def _solve_subset_direct(self, indices: Sequence[int]) -> BasisResult:
        idx = as_index_array(indices)
        if idx.size == 0:
            value = SVMValue(squared_norm=0.0)
            return BasisResult(indices=(), value=value, witness=np.zeros(self.dimension))
        g = self._signed[idx]
        h = np.ones(idx.size)
        try:
            solution = minimize_convex_qp(
                q_matrix=2.0 * np.eye(self.dimension),
                q_vector=np.zeros(self.dimension),
                g_matrix=g,
                h_vector=h,
            )
        except InfeasibleProblemError:
            value = SVMValue(squared_norm=float("inf"), infeasible=True)
            return BasisResult(
                indices=tuple(int(i) for i in idx[: self.combinatorial_dimension]),
                value=value,
                witness=None,
                subset_size=int(idx.size),
            )
        u = solution.x
        value = SVMValue(squared_norm=float(u @ u))
        basis = self._extract_basis(idx, u)
        return BasisResult(indices=basis, value=value, witness=u, subset_size=int(idx.size))

    def violates(self, witness: Optional[np.ndarray], index: int) -> bool:
        if witness is None:
            return False
        margin = float(self._signed[index] @ witness)
        return margin < 1.0 - self.tolerance

    def _build_constraint_pack(self) -> ConstraintPack:
        # Violated iff y_j <u, x_j> < 1 - tol (lower-bound sense with rhs 1).
        return ConstraintPack(
            rows=self._signed,
            rhs=np.ones(self.num_constraints),
            limit=self.tolerance,
            sense=-1,
        )

    def encode_witness(self, witness) -> tuple[np.ndarray, float] | None:
        if witness is None:
            return None
        return np.asarray(witness, dtype=float), 0.0

    # ------------------------------------------------------------------ #
    # Internals & convenience
    # ------------------------------------------------------------------ #

    def _extract_basis(self, idx: np.ndarray, u: np.ndarray) -> tuple[int, ...]:
        """Support vectors of the subset (margin exactly 1), capped at nu."""
        margins = self._signed[idx] @ u
        tight = idx[np.abs(margins - 1.0) <= 1e-4]
        if tight.size == 0:
            # Unconstrained optimum u = 0; the basis is empty.
            return ()
        return tuple(int(i) for i in tight[: self.combinatorial_dimension])

    def margin(self, u: np.ndarray) -> float:
        """Geometric margin ``1 / ||u||`` of a feasible ``u`` (inf for u=0)."""
        norm = float(np.linalg.norm(u))
        return float("inf") if norm == 0.0 else 1.0 / norm

    def classify(self, u: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Predicted labels (+1 / -1) of ``points`` under hyperplane ``u``."""
        scores = np.asarray(points, dtype=float) @ np.asarray(u, dtype=float)
        return np.where(scores >= 0.0, 1.0, -1.0)


from ..api.registry import register_problem  # noqa: E402  (import-time registration)

register_problem(
    "linear_svm",
    LinearSVM,
    description=(
        "Hard-margin linear SVM over labelled points (Theorem 5; maximum "
        "margin separator)."
    ),
    tags=("learning",),
)
