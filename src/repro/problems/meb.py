"""Minimum enclosing ball / core vector machine as an LP-type problem (Section 4.3).

The core vector machine of Tsang et al. reformulates kernel SVM training as a
minimum enclosing ball (MEB) computation:

    min  r    subject to   ||p - p_j||_2 <= r   for all j.

After the standard change of variables ``s = r^2 - ||p||^2`` this becomes a
convex QP with linear constraints:

    min  ||p||^2 + s    subject to    2 <p_j, p> + s >= ||p_j||^2,

solved here with the shared small-QP backend.  A from-scratch Badoiu-Clarkson
core-set solver is also provided (:func:`badoiu_clarkson_meb`); it is used as
an independent cross-check in the tests and as an alternative backend in the
solver ablation.

Combinatorial dimension and VC dimension are at most ``d + 1``; the optimal
ball of any subset is unique.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.exceptions import InvalidInstanceError
from ..core.lptype import BasisResult, LPTypeProblem, as_index_array
from ..core.rng import SeedLike, as_generator
from .qp import minimize_convex_qp

__all__ = ["Ball", "MEBValue", "MinimumEnclosingBall", "badoiu_clarkson_meb"]


@dataclass(frozen=True)
class Ball:
    """A d-dimensional ball given by its center and radius."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "center", np.asarray(self.center, dtype=float))

    def contains(self, point: np.ndarray, tolerance: float = 1e-7) -> bool:
        """Whether ``point`` lies inside the ball (up to ``tolerance``)."""
        distance = float(np.linalg.norm(np.asarray(point, dtype=float) - self.center))
        return distance <= self.radius + tolerance * max(1.0, self.radius)


@functools.total_ordering
@dataclass(frozen=True)
class MEBValue:
    """Totally ordered ``f`` value: the radius of the optimal ball."""

    radius: float
    tolerance: float = 1e-6

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MEBValue):
            return NotImplemented
        return abs(self.radius - other.radius) <= self.tolerance * max(
            1.0, abs(self.radius), abs(other.radius)
        )

    def __lt__(self, other: "MEBValue") -> bool:
        if not isinstance(other, MEBValue):
            return NotImplemented
        if self == other:
            return False
        return self.radius < other.radius

    def __hash__(self) -> int:
        return hash(round(self.radius, 6))


class MinimumEnclosingBall(LPTypeProblem):
    """Minimum enclosing ball over a point set.

    Parameters
    ----------
    points:
        Point matrix of shape ``(n, d)``.
    tolerance:
        Containment tolerance used in violation tests.  Violation tests for
        MEB are sensitive to the accuracy of the radius; the default is
        chosen to play well with the QP backend's accuracy.
    """

    def __init__(
        self,
        points: Sequence[Sequence[float]] | np.ndarray,
        tolerance: float = 1e-5,
    ) -> None:
        self.points = np.asarray(points, dtype=float)
        if self.points.ndim != 2:
            raise InvalidInstanceError("points must be a 2-d array")
        if self.points.shape[0] == 0:
            raise InvalidInstanceError("point set must be non-empty")
        self.tolerance = float(tolerance)
        self._squared_norms = np.einsum("ij,ij->i", self.points, self.points)

    # ------------------------------------------------------------------ #
    # LPTypeProblem interface
    # ------------------------------------------------------------------ #

    @property
    def num_constraints(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def bit_size(self) -> int:
        return self.dimension * 64

    def payload_num_coefficients(self) -> int:
        return self.dimension

    def constraint_payload(self, index: int) -> np.ndarray:
        return self.points[index].copy()

    def solve_subset(self, indices: Sequence[int]) -> BasisResult:
        idx = np.asarray(list(indices), dtype=int)
        if idx.size == 0:
            ball = Ball(center=np.zeros(self.dimension), radius=0.0)
            return BasisResult(indices=(), value=MEBValue(radius=0.0), witness=ball)
        if idx.size == 1:
            ball = Ball(center=self.points[idx[0]].copy(), radius=0.0)
            return BasisResult(
                indices=(int(idx[0]),), value=MEBValue(radius=0.0), witness=ball,
                subset_size=1,
            )
        ball = self._solve_qp(idx)
        basis = self._extract_basis(idx, ball)
        return BasisResult(
            indices=basis,
            value=MEBValue(radius=ball.radius),
            witness=ball,
            subset_size=int(idx.size),
        )

    def violates(self, witness: Optional[Ball], index: int) -> bool:
        if witness is None:
            return False
        return not witness.contains(self.points[index], tolerance=self.tolerance)

    def violation_mask(self, witness, indices) -> np.ndarray:
        idx = as_index_array(indices)
        if witness is None or idx.size == 0:
            return np.zeros(idx.size, dtype=bool)
        diffs = self.points[idx] - witness.center
        distances = np.linalg.norm(diffs, axis=1)
        limit = witness.radius + self.tolerance * max(1.0, witness.radius)
        return distances > limit

    def violation_count_matrix(self, witnesses, indices) -> np.ndarray:
        idx = as_index_array(indices)
        balls = [w for w in witnesses if w is not None]
        if not balls or idx.size == 0:
            return np.zeros(idx.size, dtype=np.int64)
        centers = np.stack([ball.center for ball in balls])
        radii = np.asarray([ball.radius for ball in balls], dtype=float)
        # Squared distances point-to-center for all (constraint, ball) pairs
        # via the expansion ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2.
        pts = self.points[idx]
        sq = (
            self._squared_norms[idx][:, None]
            - 2.0 * pts @ centers.T
            + np.einsum("ij,ij->i", centers, centers)[None, :]
        )
        limits = radii + self.tolerance * np.maximum(1.0, radii)
        mask = sq > (limits * limits)[None, :]
        return mask.sum(axis=1).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _solve_qp(self, idx: np.ndarray) -> Ball:
        """Solve the MEB QP over the points with the given indices."""
        d = self.dimension
        pts = self.points[idx]
        norms = self._squared_norms[idx]
        # Variables z = (p, s): minimise ||p||^2 + s subject to
        # 2 <p_j, p> + s >= ||p_j||^2.
        q_matrix = np.zeros((d + 1, d + 1))
        q_matrix[:d, :d] = 2.0 * np.eye(d)
        q_vector = np.zeros(d + 1)
        q_vector[d] = 1.0
        g = np.hstack([2.0 * pts, np.ones((idx.size, 1))])
        start = np.zeros(d + 1)
        start[:d] = pts.mean(axis=0)
        start[d] = float(np.max(np.linalg.norm(pts - start[:d], axis=1)) ** 2) - float(
            start[:d] @ start[:d]
        )
        solution = minimize_convex_qp(
            q_matrix=q_matrix,
            q_vector=q_vector,
            g_matrix=g,
            h_vector=norms,
            x0=start,
        )
        center = solution.x[:d]
        squared_radius = float(solution.x[d] + center @ center)
        radius = float(np.sqrt(max(0.0, squared_radius)))
        return Ball(center=center, radius=radius)

    def _extract_basis(self, idx: np.ndarray, ball: Ball) -> tuple[int, ...]:
        """Points on the boundary of the optimal ball, capped at nu."""
        distances = np.linalg.norm(self.points[idx] - ball.center, axis=1)
        tight = idx[np.abs(distances - ball.radius) <= 1e-4 * max(1.0, ball.radius)]
        if tight.size == 0:
            tight = idx[np.argsort(distances)[-min(idx.size, self.combinatorial_dimension):]]
        return tuple(int(i) for i in tight[: self.combinatorial_dimension])


def badoiu_clarkson_meb(
    points: np.ndarray,
    epsilon: float = 1e-3,
    rng: SeedLike = None,
) -> Ball:
    """Badoiu-Clarkson core-set algorithm for an (1 + eps)-approximate MEB.

    A from-scratch iterative solver: starting from an arbitrary point, the
    center repeatedly moves a ``1/(k+1)`` fraction towards the farthest
    point.  After ``O(1/eps^2)`` iterations the ball centered at the iterate
    with the farthest-point radius is a ``(1 + eps)`` approximation.  Used as
    an independent cross-check of the QP backend.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise InvalidInstanceError("points must be a non-empty 2-d array")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    gen = as_generator(rng)
    center = pts[int(gen.integers(0, pts.shape[0]))].astype(float).copy()
    iterations = int(np.ceil(1.0 / (epsilon * epsilon)))
    for k in range(1, iterations + 1):
        distances = np.linalg.norm(pts - center, axis=1)
        farthest = int(np.argmax(distances))
        center = center + (pts[farthest] - center) / (k + 1.0)
    radius = float(np.max(np.linalg.norm(pts - center, axis=1)))
    return Ball(center=center, radius=radius)


from ..api.registry import register_problem  # noqa: E402  (import-time registration)

register_problem(
    "minimum_enclosing_ball",
    MinimumEnclosingBall,
    description=(
        "Minimum enclosing ball of a point set (Theorem 6; core vector "
        "machines)."
    ),
    tags=("geometry",),
)
