"""Minimum enclosing ball / core vector machine as an LP-type problem (Section 4.3).

The core vector machine of Tsang et al. reformulates kernel SVM training as a
minimum enclosing ball (MEB) computation:

    min  r    subject to   ||p - p_j||_2 <= r   for all j.

After the standard change of variables ``s = r^2 - ||p||^2`` this becomes a
convex QP with linear constraints:

    min  ||p||^2 + s    subject to    2 <p_j, p> + s >= ||p_j||^2,

solved here with the shared small-QP backend.  A from-scratch Badoiu-Clarkson
core-set solver is also provided (:func:`badoiu_clarkson_meb`); it is used as
an independent cross-check in the tests and as an alternative backend in the
solver ablation.

Combinatorial dimension and VC dimension are at most ``d + 1``; the optimal
ball of any subset is unique.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import kernels
from ..core.exceptions import InvalidInstanceError
from ..core.lptype import (
    BasisResult,
    ConstraintPack,
    LPTypeProblem,
    as_index_array,
    working_set_solve,
)
from ..core.rng import SeedLike, as_generator
from .qp import minimize_convex_qp

__all__ = ["Ball", "MEBValue", "MinimumEnclosingBall", "badoiu_clarkson_meb"]

#: Largest working set handed to the exact batched-circumcentre solver; the
#: number of candidate support subsets is ``sum_m C(k, m) < 2^k``, so this
#: keeps one batch comfortably small while covering every basis-sized solve.
_EXACT_SUBSET_LIMIT = 10


@dataclass(frozen=True)
class Ball:
    """A d-dimensional ball given by its center and radius."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "center", np.asarray(self.center, dtype=float))

    def contains(self, point: np.ndarray, tolerance: float = 1e-7) -> bool:
        """Whether ``point`` lies inside the ball (up to ``tolerance``)."""
        distance = float(np.linalg.norm(np.asarray(point, dtype=float) - self.center))
        return distance <= self.radius + tolerance * max(1.0, self.radius)


@functools.total_ordering
@dataclass(frozen=True)
class MEBValue:
    """Totally ordered ``f`` value: the radius of the optimal ball."""

    radius: float
    tolerance: float = 1e-6

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MEBValue):
            return NotImplemented
        return abs(self.radius - other.radius) <= self.tolerance * max(
            1.0, abs(self.radius), abs(other.radius)
        )

    def __lt__(self, other: "MEBValue") -> bool:
        if not isinstance(other, MEBValue):
            return NotImplemented
        if self == other:
            return False
        return self.radius < other.radius

    def __hash__(self) -> int:
        return hash(round(self.radius, 6))


class MinimumEnclosingBall(LPTypeProblem):
    """Minimum enclosing ball over a point set.

    Parameters
    ----------
    points:
        Point matrix of shape ``(n, d)``.
    tolerance:
        Containment tolerance used in violation tests.  Violation tests for
        MEB are sensitive to the accuracy of the radius; the default is
        chosen to play well with the QP backend's accuracy.
    """

    def __init__(
        self,
        points: Sequence[Sequence[float]] | np.ndarray,
        tolerance: float = 1e-5,
    ) -> None:
        self.points = np.asarray(points, dtype=float)
        if self.points.ndim != 2:
            raise InvalidInstanceError("points must be a 2-d array")
        if self.points.shape[0] == 0:
            raise InvalidInstanceError("point set must be non-empty")
        self.tolerance = float(tolerance)
        self._squared_norms = np.einsum("ij,ij->i", self.points, self.points)

    # ------------------------------------------------------------------ #
    # LPTypeProblem interface
    # ------------------------------------------------------------------ #

    @property
    def num_constraints(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def bit_size(self) -> int:
        return self.dimension * 64

    def payload_num_coefficients(self) -> int:
        return self.dimension

    def constraint_payload(self, index: int) -> np.ndarray:
        return self.points[index].copy()

    def solve_subset(self, indices: Sequence[int]) -> BasisResult:
        return working_set_solve(self, as_index_array(indices), self._solve_subset_direct)

    def _solve_subset_direct(self, indices: Sequence[int]) -> BasisResult:
        idx = as_index_array(indices)
        if idx.size == 0:
            ball = Ball(center=np.zeros(self.dimension), radius=0.0)
            return BasisResult(indices=(), value=MEBValue(radius=0.0), witness=ball)
        if idx.size == 1:
            ball = Ball(center=self.points[idx[0]].copy(), radius=0.0)
            return BasisResult(
                indices=(int(idx[0]),), value=MEBValue(radius=0.0), witness=ball,
                subset_size=1,
            )
        ball = None
        if idx.size <= _EXACT_SUBSET_LIMIT:
            ball = self._solve_small_exact(idx)
        if ball is None:
            ball = self._solve_qp(idx)
        basis = self._extract_basis(idx, ball)
        return BasisResult(
            indices=basis,
            value=MEBValue(radius=ball.radius),
            witness=ball,
            subset_size=int(idx.size),
        )

    def violates(self, witness: Optional[Ball], index: int) -> bool:
        if witness is None:
            return False
        return not witness.contains(self.points[index], tolerance=self.tolerance)

    def _build_constraint_pack(self) -> ConstraintPack:
        # Containment in squared form: ||p - c||^2 = ||q||^2 - 2 q.c' + ||c'||^2
        # with q = p - m, c' = c - m for the cloud centroid m (the squared
        # distance is translation-invariant).  Centring keeps ||q||^2 at the
        # scale of the cloud's *spread* rather than its coordinate magnitude,
        # so the expansion does not cancel catastrophically for clouds far
        # from the origin.  With rows = -2q and rhs = -||q||^2 the packed
        # margin ``rows.c' + offset - rhs`` equals ``||p - c||^2 - limit(r)^2``
        # when the witness encodes ``offset = ||c'||^2 - limit(r)^2``.
        self._pack_shift = self.points.mean(axis=0)
        centred = self.points - self._pack_shift
        return ConstraintPack(
            rows=-2.0 * centred,
            rhs=-np.einsum("ij,ij->i", centred, centred),
            limit=0.0,
            sense=1,
        )

    def encode_witness(self, witness: Optional[Ball]) -> tuple[np.ndarray, float] | None:
        if witness is None:
            return None
        self.constraint_pack()  # ensure the centring shift exists
        centre = witness.center - self._pack_shift
        limit = witness.radius + self.tolerance * max(1.0, witness.radius)
        return centre, float(centre @ centre - limit * limit)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _solve_small_exact(self, idx: np.ndarray) -> Optional[Ball]:
        """Exact MEB of a tiny subset via batched circumcentre systems.

        The optimal ball of ``k`` points is determined by a support subset of
        2 to ``d + 1`` points whose circumcentre (the equidistant point in the
        subset's affine hull) is the ball's centre.  All candidate subsets of
        one size are solved in a single batched linear solve through the
        active kernel backend: with ``q_i = p_i - p_0`` the circumcentre is
        ``p_0 + lambda . q`` where ``(q q^T) lambda = ||q_i||^2 / 2``.  Each
        candidate's radius is its centre's maximum distance over *all* subset
        points, so garbage centres from non-support subsets are harmless
        (their radius only over-encloses) and the minimum over candidates is
        the exact optimum.  Returns ``None`` when every system is
        near-singular (fully degenerate clouds fall back to the QP).
        """
        pts = self.points[idx]
        k = int(idx.size)
        backend = kernels.active_backend()
        best_center: Optional[np.ndarray] = None
        best_radius = np.inf
        spread = float(np.abs(pts - pts[0]).max())
        if spread == 0.0:
            # All points coincide: a zero-radius ball, no system to solve.
            return Ball(center=pts[0].copy(), radius=0.0)
        for m in range(2, min(k, self.dimension + 1) + 1):
            combos = np.asarray(
                list(itertools.combinations(range(k), m)), dtype=int
            )
            base = pts[combos[:, 0]]
            q = pts[combos[:, 1:]] - base[:, None, :]
            gram = q @ np.transpose(q, (0, 2, 1))
            rhs = 0.5 * np.einsum("bij,bij->bi", q, q)
            # Scale-relative singularity filter: Gram entries are O(spread^2),
            # so a well-conditioned determinant is O(spread^(2(m-1))).
            ok = np.abs(np.linalg.det(gram)) > 1e-12 * spread ** (2 * (m - 1))
            if not ok.any():
                continue
            lam = backend.solve_many(gram[ok], rhs[ok])
            centers = base[ok] + np.einsum("bi,bij->bj", lam, q[ok])
            radii = np.linalg.norm(
                pts[None, :, :] - centers[:, None, :], axis=2
            ).max(axis=1)
            j = int(np.argmin(radii))
            if float(radii[j]) < best_radius:
                best_radius = float(radii[j])
                best_center = centers[j]
        if best_center is None:
            return None
        return Ball(center=best_center, radius=best_radius)

    def _solve_qp(self, idx: np.ndarray) -> Ball:
        """Solve the MEB QP over the points with the given indices."""
        d = self.dimension
        pts = self.points[idx]
        norms = self._squared_norms[idx]
        # Variables z = (p, s): minimise ||p||^2 + s subject to
        # 2 <p_j, p> + s >= ||p_j||^2.
        q_matrix = np.zeros((d + 1, d + 1))
        q_matrix[:d, :d] = 2.0 * np.eye(d)
        q_vector = np.zeros(d + 1)
        q_vector[d] = 1.0
        g = np.hstack([2.0 * pts, np.ones((idx.size, 1))])
        start = np.zeros(d + 1)
        start[:d] = pts.mean(axis=0)
        start[d] = float(np.max(np.linalg.norm(pts - start[:d], axis=1)) ** 2) - float(
            start[:d] @ start[:d]
        )
        solution = minimize_convex_qp(
            q_matrix=q_matrix,
            q_vector=q_vector,
            g_matrix=g,
            h_vector=norms,
            x0=start,
        )
        center = solution.x[:d]
        squared_radius = float(solution.x[d] + center @ center)
        radius = float(np.sqrt(max(0.0, squared_radius)))
        return Ball(center=center, radius=radius)

    def _extract_basis(self, idx: np.ndarray, ball: Ball) -> tuple[int, ...]:
        """Points on the boundary of the optimal ball, capped at nu."""
        distances = np.linalg.norm(self.points[idx] - ball.center, axis=1)
        tight = idx[np.abs(distances - ball.radius) <= 1e-4 * max(1.0, ball.radius)]
        if tight.size == 0:
            tight = idx[np.argsort(distances)[-min(idx.size, self.combinatorial_dimension):]]
        return tuple(int(i) for i in tight[: self.combinatorial_dimension])


def badoiu_clarkson_meb(
    points: np.ndarray,
    epsilon: float = 1e-3,
    rng: SeedLike = None,
) -> Ball:
    """Badoiu-Clarkson core-set algorithm for an (1 + eps)-approximate MEB.

    A from-scratch iterative solver: starting from an arbitrary point, the
    center repeatedly moves a ``1/(k+1)`` fraction towards the farthest
    point.  After ``O(1/eps^2)`` iterations the ball centered at the iterate
    with the farthest-point radius is a ``(1 + eps)`` approximation.  Used as
    an independent cross-check of the QP backend.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise InvalidInstanceError("points must be a non-empty 2-d array")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    gen = as_generator(rng)
    center = pts[int(gen.integers(0, pts.shape[0]))].astype(float).copy()
    iterations = int(np.ceil(1.0 / (epsilon * epsilon)))
    for k in range(1, iterations + 1):
        distances = np.linalg.norm(pts - center, axis=1)
        farthest = int(np.argmax(distances))
        center = center + (pts[farthest] - center) / (k + 1.0)
    radius = float(np.max(np.linalg.norm(pts - center, axis=1)))
    return Ball(center=center, radius=radius)


from ..api.registry import register_problem  # noqa: E402  (import-time registration)

register_problem(
    "minimum_enclosing_ball",
    MinimumEnclosingBall,
    description=(
        "Minimum enclosing ball of a point set (Theorem 6; core vector "
        "machines)."
    ),
    tags=("geometry",),
)
