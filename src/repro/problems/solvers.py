"""Dense low-dimensional LP solving used as the basis-computation substrate.

Algorithm 1 repeatedly solves small linear programs: the LP restricted to an
eps-net sample (to compute a basis) and to a basis (to recover its witness).
Two interchangeable backends are provided:

* :func:`solve_lp` — a thin wrapper around :func:`scipy.optimize.linprog`
  (HiGHS), the robust default;
* :mod:`repro.problems.seidel` — a from-scratch implementation of Seidel's
  randomised incremental algorithm, exercised by the solver ablation.

On top of the plain solve, :func:`lexicographic_minimum` implements the
procedure of Proposition 4.1: the LP-type formulation of linear programming
requires ``f(A)`` to be the *lexicographically smallest* optimal point, which
is found by fixing the optimal objective value and then minimising the
coordinates one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from ..core.exceptions import InfeasibleProblemError, SolverError, UnboundedProblemError

__all__ = ["LPSolution", "solve_lp", "lexicographic_minimum"]

#: Numerical tolerance used when comparing objective values and constraint slacks.
DEFAULT_TOLERANCE = 1e-7


@dataclass(frozen=True)
class LPSolution:
    """Solution of a single dense LP solve."""

    x: np.ndarray
    objective: float
    #: Gradients of the constraints carrying a strictly non-zero dual
    #: multiplier at the optimum — rows of ``a_ub``/``a_eq`` plus ``-e_i`` /
    #: ``+e_i`` for active lower/upper bounds — or ``None`` when the solver
    #: did not expose duals.  Consumers use this for the uniqueness test of
    #: :func:`lexicographic_minimum`.
    active_gradients: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))


def _as_bounds(bounds: Sequence[tuple[float, float]] | tuple[float, float], d: int):
    """Normalise bounds to a per-variable list scipy accepts."""
    if isinstance(bounds, tuple) and len(bounds) == 2 and np.isscalar(bounds[0]):
        return [(float(bounds[0]), float(bounds[1]))] * d
    bounds = list(bounds)
    if len(bounds) != d:
        raise ValueError(f"expected {d} bound pairs, got {len(bounds)}")
    return [(float(lo), float(hi)) for lo, hi in bounds]


def solve_lp(
    c: np.ndarray,
    a_ub: Optional[np.ndarray] = None,
    b_ub: Optional[np.ndarray] = None,
    a_eq: Optional[np.ndarray] = None,
    b_eq: Optional[np.ndarray] = None,
    bounds: Sequence[tuple[float, float]] | tuple[float, float] = (None, None),
) -> LPSolution:
    """Solve ``min c.x  s.t.  a_ub x <= b_ub, a_eq x = b_eq, bounds``.

    Raises
    ------
    InfeasibleProblemError
        If the feasible region is empty.
    UnboundedProblemError
        If the optimum is unbounded below.
    SolverError
        For any other solver failure.
    """
    c = np.asarray(c, dtype=float)
    d = c.size
    if bounds == (None, None):
        lp_bounds = [(None, None)] * d
    else:
        lp_bounds = _as_bounds(bounds, d)

    res = linprog(
        c,
        A_ub=None if a_ub is None or len(a_ub) == 0 else np.asarray(a_ub, dtype=float),
        b_ub=None if b_ub is None or len(b_ub) == 0 else np.asarray(b_ub, dtype=float),
        A_eq=None if a_eq is None or len(a_eq) == 0 else np.asarray(a_eq, dtype=float),
        b_eq=None if b_eq is None or len(b_eq) == 0 else np.asarray(b_eq, dtype=float),
        bounds=lp_bounds,
        method="highs",
    )
    if res.status == 2:
        raise InfeasibleProblemError("linear program is infeasible")
    if res.status == 3:
        raise UnboundedProblemError("linear program is unbounded")
    if not res.success:
        raise SolverError(f"linprog failed with status {res.status}: {res.message}")
    return LPSolution(
        x=np.asarray(res.x, dtype=float),
        objective=float(res.fun),
        active_gradients=_active_gradients(res, a_ub, a_eq, d),
    )


#: Dual multipliers below this magnitude are treated as zero (weakly active)
#: when collecting the strictly active constraint gradients.
_DUAL_TOLERANCE = 1e-9


def _active_gradients(res, a_ub, a_eq, d: int) -> Optional[np.ndarray]:
    """Gradients of constraints with strictly non-zero duals at the optimum.

    Rows of ``a_ub`` whose inequality multiplier is non-zero, every row of
    ``a_eq`` (an equality always pins its gradient direction), and ``-e_i`` /
    ``+e_i`` for lower/upper bounds with non-zero multipliers.  Returns
    ``None`` when HiGHS did not report duals.
    """
    ineqlin = getattr(res, "ineqlin", None)
    lower = getattr(res, "lower", None)
    upper = getattr(res, "upper", None)
    if ineqlin is None or lower is None or upper is None:
        return None
    grads: list[np.ndarray] = []
    if a_ub is not None and len(a_ub) > 0:
        marginals = getattr(ineqlin, "marginals", None)
        if marginals is None:
            return None
        lam = np.abs(np.asarray(marginals, dtype=float))
        tight = lam > _DUAL_TOLERANCE
        if tight.any():
            grads.append(np.asarray(a_ub, dtype=float)[tight])
    if a_eq is not None and len(a_eq) > 0:
        grads.append(np.asarray(a_eq, dtype=float))
    eye = None
    for attr, sign in ((lower, -1.0), (upper, 1.0)):
        marginals = getattr(attr, "marginals", None)
        if marginals is None:
            continue
        lam = np.abs(np.asarray(marginals, dtype=float))
        tight = lam > _DUAL_TOLERANCE
        if tight.any():
            if eye is None:
                eye = np.eye(d)
            grads.append(sign * eye[tight])
    if not grads:
        return np.empty((0, d))
    return np.vstack(grads)


def lexicographic_minimum(
    c: np.ndarray,
    a_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    bounds: Sequence[tuple[float, float]] | tuple[float, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> LPSolution:
    """Lexicographically smallest optimal point of an LP (Proposition 4.1).

    First the optimal objective value ``c*`` is computed; the objective is
    then pinned via an equality constraint and the coordinates are minimised
    one at a time, pinning each as it is resolved.  This returns the unique
    point the paper's LP-type formulation of linear programming designates as
    ``f(A)``.
    """
    c = np.asarray(c, dtype=float)
    d = c.size
    if a_ub is not None and len(a_ub) > 0:
        base_rows = [np.asarray(a_ub, dtype=float)]
        base_rhs = [np.asarray(b_ub, dtype=float)]
    else:
        base_rows = []
        base_rhs = []
    first = solve_lp(c, a_ub=a_ub, b_ub=b_ub, bounds=bounds)
    objective = first.objective
    x = np.array(first.x, dtype=float)

    # Uniqueness short-circuit: if the constraints carrying strictly positive
    # dual multipliers span R^d, the optimal face is the single point x*.
    # (For any feasible direction dx with c.dx = 0, complementary slackness
    # gives sum_i lam_i (G dx)_i = 0 with lam_i > 0 and (G dx)_i <= 0 at the
    # tight rows, forcing G dx = 0 on that rank-d set, hence dx = 0.)  The d
    # coordinate refinements cannot move a unique optimum, so skip them.
    grads = first.active_gradients
    if (
        grads is not None
        and grads.shape[0] >= d
        and np.linalg.matrix_rank(grads) == d
    ):
        return LPSolution(x=x, objective=objective)

    # Pin the objective (and then each coordinate in turn) with a one-sided
    # inequality at a tiny absolute slack instead of an exact equality: the
    # optimum cannot move below the pinned value anyway, and the slack keeps
    # HiGHS from declaring spurious infeasibility at large magnitudes.
    pins_rows: list[np.ndarray] = [c]
    pins_rhs: list[float] = [objective + tolerance * max(1.0, abs(objective))]

    for coord in range(d):
        unit = np.zeros(d)
        unit[coord] = 1.0
        stacked_rows = base_rows + [np.vstack(pins_rows)]
        stacked_rhs = base_rhs + [np.asarray(pins_rhs)]
        try:
            sub = solve_lp(
                unit,
                a_ub=np.vstack(stacked_rows),
                b_ub=np.concatenate(stacked_rhs),
                bounds=bounds,
            )
        except (InfeasibleProblemError, SolverError):
            # Numerical hiccup in the refinement: keep the best point so far.
            break
        x = sub.x
        pins_rows.append(unit)
        pins_rhs.append(float(sub.x[coord]) + tolerance * max(1.0, abs(float(sub.x[coord]))))

    final_objective = float(c @ x)
    if abs(final_objective - objective) > max(1.0, abs(objective)) * 1e-4:
        raise SolverError(
            "lexicographic refinement drifted from the optimal objective: "
            f"{final_objective} vs {objective}"
        )
    return LPSolution(x=x, objective=final_objective)
