"""Linear programming as an LP-type problem (Section 4.1 of the paper).

A d-dimensional linear program ``min c.x  s.t.  A x <= b`` is cast as an
LP-type problem ``(S, f)``: each constraint is the halfspace of points
satisfying it, and ``f(A)`` is the *lexicographically smallest* optimal point
of the LP restricted to the constraints in ``A`` (Proposition 4.1).  Every
subset is intersected with a bounding box ``[-M, M]^d`` so that ``f`` is
defined (and finite) for all subsets, including the empty one.

Combinatorial dimension and VC dimension are both ``d + 1``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.exceptions import InfeasibleProblemError, InvalidInstanceError
from ..core.lptype import (
    BasisResult,
    ConstraintPack,
    LPTypeProblem,
    as_index_array,
    working_set_solve,
)
from .seidel import seidel_solve
from .solvers import DEFAULT_TOLERANCE, lexicographic_minimum, solve_lp

__all__ = ["LexicographicValue", "LinearProgram", "DEFAULT_BOX_BOUND"]

#: Default half-width of the bounding box added to every instance.
DEFAULT_BOX_BOUND = 1.0e6


@functools.total_ordering
@dataclass(frozen=True)
class LexicographicValue:
    """Totally ordered value of ``f`` for the LP-type formulation of LP.

    Values compare first on feasibility (infeasible is the top element), then
    on the objective, then lexicographically on the coordinates of the
    witness point.  Comparisons use a small absolute tolerance so that
    floating-point noise from different solver backends does not produce
    spurious strict inequalities.
    """

    objective: float
    coordinates: tuple[float, ...]
    infeasible: bool = False
    tolerance: float = 1e-6

    def _key(self) -> tuple:
        if self.infeasible:
            return (1,)
        return (0, self.objective, self.coordinates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LexicographicValue):
            return NotImplemented
        if self.infeasible or other.infeasible:
            return self.infeasible == other.infeasible
        if abs(self.objective - other.objective) > self.tolerance:
            return False
        return all(
            abs(a - b) <= self.tolerance
            for a, b in zip(self.coordinates, other.coordinates)
        )

    def __lt__(self, other: "LexicographicValue") -> bool:
        if not isinstance(other, LexicographicValue):
            return NotImplemented
        if self == other:
            return False
        if self.infeasible:
            return False
        if other.infeasible:
            return True
        if self.objective < other.objective - self.tolerance:
            return True
        if self.objective > other.objective + self.tolerance:
            return False
        for a, b in zip(self.coordinates, other.coordinates):
            if a < b - self.tolerance:
                return True
            if a > b + self.tolerance:
                return False
        return False

    def __hash__(self) -> int:
        return hash((self.infeasible, round(self.objective, 6)))


class LinearProgram(LPTypeProblem):
    """A d-dimensional linear program ``min c.x  s.t.  A x <= b``.

    Parameters
    ----------
    c:
        Objective vector of shape ``(d,)``.
    a:
        Constraint matrix of shape ``(n, d)``.
    b:
        Right-hand sides of shape ``(n,)``.
    box_bound:
        Half-width ``M`` of the bounding box intersected with every subset.
    solver:
        ``"highs"`` (scipy, default) or ``"seidel"`` (the from-scratch
        randomised incremental solver).  Both are exercised by the ablation
        benchmark A2.
    lexicographic:
        Whether ``f`` returns the lexicographically smallest optimum (the
        paper's formulation).  Disabling it skips the d extra LP solves per
        basis computation; the meta-algorithm remains correct whenever the
        optimum is unique, and the option is used by benchmarks that only
        need the objective value.
    tolerance:
        Constraint-satisfaction tolerance used in violation tests.
    """

    def __init__(
        self,
        c: Sequence[float] | np.ndarray,
        a: Sequence[Sequence[float]] | np.ndarray,
        b: Sequence[float] | np.ndarray,
        box_bound: float = DEFAULT_BOX_BOUND,
        solver: str = "highs",
        lexicographic: bool = True,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        self.c = np.asarray(c, dtype=float).reshape(-1)
        self.a = np.asarray(a, dtype=float)
        self.b = np.asarray(b, dtype=float).reshape(-1)
        if self.a.ndim != 2:
            raise InvalidInstanceError(f"constraint matrix must be 2-d, got {self.a.ndim}-d")
        if self.a.shape[1] != self.c.size:
            raise InvalidInstanceError(
                f"constraint matrix has {self.a.shape[1]} columns but the "
                f"objective has {self.c.size} coordinates"
            )
        if self.a.shape[0] != self.b.size:
            raise InvalidInstanceError(
                f"{self.a.shape[0]} constraint rows but {self.b.size} right-hand sides"
            )
        if box_bound <= 0:
            raise InvalidInstanceError(f"box_bound must be positive, got {box_bound}")
        if solver not in ("highs", "seidel"):
            raise InvalidInstanceError(f"unknown solver backend {solver!r}")
        self.box_bound = float(box_bound)
        self.solver = solver
        self.lexicographic = lexicographic
        self.tolerance = float(tolerance)

    # ------------------------------------------------------------------ #
    # LPTypeProblem interface
    # ------------------------------------------------------------------ #

    @property
    def num_constraints(self) -> int:
        return int(self.a.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.c.size)

    def bit_size(self) -> int:
        # Each constraint carries d coefficients plus one right-hand side.
        return (self.dimension + 1) * 64

    def payload_num_coefficients(self) -> int:
        return self.dimension + 1

    def constraint_payload(self, index: int) -> tuple[np.ndarray, float]:
        return self.a[index].copy(), float(self.b[index])

    def solve_subset(self, indices: Sequence[int]) -> BasisResult:
        # Growth rounds of the working-set loop skip the lexicographic
        # refinement (d extra LP solves) — only the final exact solve pays it.
        probe = (
            self._solve_subset_probe
            if self.lexicographic and self.solver == "highs"
            else None
        )
        return working_set_solve(
            self, as_index_array(indices), self._solve_subset_direct, probe_solve=probe
        )

    def _solve_subset_probe(self, indices: Sequence[int]) -> BasisResult:
        return self._solve_subset_direct(indices, lexicographic=False)

    def _solve_subset_direct(
        self, indices: Sequence[int], lexicographic: Optional[bool] = None
    ) -> BasisResult:
        idx = as_index_array(indices)
        a_sub = self.a[idx] if idx.size else np.zeros((0, self.dimension))
        b_sub = self.b[idx] if idx.size else np.zeros(0)
        bounds = (-self.box_bound, self.box_bound)
        try:
            witness = self._optimise(a_sub, b_sub, bounds, lexicographic=lexicographic)
        except InfeasibleProblemError:
            value = LexicographicValue(
                objective=float("inf"), coordinates=(), infeasible=True
            )
            return BasisResult(
                indices=tuple(int(i) for i in idx[: self.combinatorial_dimension]),
                value=value,
                witness=None,
                subset_size=int(idx.size),
            )

        value = LexicographicValue(
            objective=float(self.c @ witness), coordinates=tuple(float(v) for v in witness)
        )
        basis = self._extract_basis(idx, witness)
        return BasisResult(
            indices=basis, value=value, witness=witness, subset_size=int(idx.size)
        )

    def violates(self, witness: Optional[np.ndarray], index: int) -> bool:
        if witness is None:
            # f of the subset is already the top element; nothing can violate it.
            return False
        row = self.a[index]
        slack = float(row @ witness - self.b[index])
        scale = max(1.0, float(np.abs(row).max()), abs(float(self.b[index])))
        return slack > self.tolerance * scale + self.tolerance

    def _build_constraint_pack(self) -> ConstraintPack:
        # Violated iff a_i . x - b_i > tol * scale_i + tol (upper-bound sense).
        if self.a.size:
            scale = np.maximum(1.0, np.maximum(np.abs(self.a).max(axis=1), np.abs(self.b)))
        else:
            scale = np.ones(self.num_constraints)
        return ConstraintPack(
            rows=self.a,
            rhs=self.b,
            limit=self.tolerance * scale + self.tolerance,
            sense=1,
        )

    def encode_witness(self, witness) -> tuple[np.ndarray, float] | None:
        if witness is None:
            return None
        return np.asarray(witness, dtype=float), 0.0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _optimise(
        self,
        a_sub: np.ndarray,
        b_sub: np.ndarray,
        bounds: tuple[float, float],
        lexicographic: Optional[bool] = None,
    ) -> np.ndarray:
        """Optimal (lexicographically smallest, if enabled) point of a sub-LP."""
        if lexicographic is None:
            lexicographic = self.lexicographic
        if self.solver == "seidel":
            # Seidel's algorithm returns an optimal vertex but not the
            # lexicographically smallest one; ties are broken by the random
            # insertion order instead.  This is sufficient whenever the
            # optimum is unique (the common case for the random workloads)
            # and is what the solver ablation measures.
            return seidel_solve(self.c, a_sub, b_sub, box=self.box_bound).x
        if lexicographic:
            return lexicographic_minimum(self.c, a_sub, b_sub, bounds).x
        return solve_lp(self.c, a_ub=a_sub, b_ub=b_sub, bounds=bounds).x

    def _extract_basis(self, idx: np.ndarray, witness: np.ndarray) -> tuple[int, ...]:
        """Select at most ``d + 1`` tight constraints defining ``witness``.

        On non-degenerate instances the tight set already has at most ``d``
        members.  Under degeneracy we keep a maximal linearly independent
        subset of the tight constraint gradients (plus one extra slot), which
        preserves ``f`` and keeps the stored-basis space bound of Theorem 1.
        """
        if idx.size == 0:
            return ()
        rows = self.a[idx]
        rhs = self.b[idx]
        slack = np.abs(rows @ witness - rhs)
        scale = np.maximum(1.0, np.maximum(np.abs(rows).max(axis=1), np.abs(rhs)))
        tight_mask = slack <= 1e-6 * scale + 1e-6
        tight = idx[tight_mask]
        if tight.size <= self.combinatorial_dimension:
            return tuple(int(i) for i in tight)
        # Degenerate optimum: pick linearly independent gradients greedily.
        chosen: list[int] = []
        basis_rows: list[np.ndarray] = []
        for constraint_index in tight:
            row = self.a[constraint_index]
            if not basis_rows:
                chosen.append(int(constraint_index))
                basis_rows.append(row)
                continue
            stack = np.vstack(basis_rows + [row])
            if np.linalg.matrix_rank(stack) > len(basis_rows):
                chosen.append(int(constraint_index))
                basis_rows.append(row)
            if len(chosen) >= self.combinatorial_dimension:
                break
        return tuple(chosen)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def objective_at(self, x: np.ndarray) -> float:
        """Objective value ``c.x`` at a point."""
        return float(self.c @ np.asarray(x, dtype=float))

    def is_feasible(self, x: np.ndarray, indices: Sequence[int] | None = None) -> bool:
        """Check feasibility of ``x`` for the given constraints (default: all)."""
        idx = self.all_indices() if indices is None else np.asarray(list(indices), dtype=int)
        return self.violating_indices(np.asarray(x, dtype=float), idx).size == 0

    def restrict(self, indices: Sequence[int]) -> "LinearProgram":
        """A new :class:`LinearProgram` over only the given constraints."""
        idx = np.asarray(list(indices), dtype=int)
        return LinearProgram(
            c=self.c,
            a=self.a[idx],
            b=self.b[idx],
            box_bound=self.box_bound,
            solver=self.solver,
            lexicographic=self.lexicographic,
            tolerance=self.tolerance,
        )


from ..api.registry import register_problem  # noqa: E402  (import-time registration)

register_problem(
    "linear_program",
    LinearProgram,
    description=(
        "Low-dimensional linear program min c'x s.t. Ax <= b, intersected "
        "with a bounding box (Theorem 4)."
    ),
    tags=("optimization", "lp"),
)
