"""Seidel's randomised incremental linear-programming algorithm.

A from-scratch low-dimensional LP solver: expected ``O(d! * n)`` time, which
is linear in ``n`` for fixed ``d`` — exactly the regime of the paper.  It is
provided as an alternative basis-computation backend (ablation experiment A2)
and as a dependency-free substrate: the library remains usable for LP even
without SciPy's HiGHS.

The solver handles problems of the form::

    min  c . x
    s.t. a_j . x <= b_j   for j in [n]
         -M <= x_i <= M   for i in [d]   (bounding box)

The bounding box guarantees a bounded optimum for every subset of the
constraints, which is what the LP-type formulation needs.  The algorithm is
the classical one: insert constraints in random order; when the new
constraint is violated by the current optimum, recurse on the boundary of the
new constraint (a ``d-1``-dimensional LP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.rng import SeedLike, as_generator

__all__ = ["SeidelResult", "seidel_solve"]

_EPS = 1e-9


@dataclass(frozen=True)
class SeidelResult:
    """Optimal point and value returned by :func:`seidel_solve`."""

    x: np.ndarray
    objective: float


def seidel_solve(
    c: np.ndarray,
    a_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    box: float,
    rng: SeedLike = None,
) -> SeidelResult:
    """Solve a low-dimensional LP with Seidel's randomised incremental method.

    Parameters
    ----------
    c:
        Objective vector of length ``d``.
    a_ub, b_ub:
        Inequality constraints ``a_ub x <= b_ub`` (may be ``None`` / empty).
    box:
        Half-width ``M`` of the bounding box ``[-M, M]^d``.
    rng:
        Randomness for the insertion order.

    Raises
    ------
    InfeasibleProblemError
        If the constraints (within the box) are infeasible.
    """
    c = np.asarray(c, dtype=float)
    d = int(c.size)
    if d < 1:
        raise ValueError("objective must have at least one coordinate")
    if box <= 0:
        raise ValueError(f"box must be positive, got {box}")
    if a_ub is None or len(a_ub) == 0:
        a = np.zeros((0, d))
        b = np.zeros(0)
    else:
        a = np.asarray(a_ub, dtype=float).reshape(-1, d)
        b = np.asarray(b_ub, dtype=float).reshape(-1)
    if a.shape[0] != b.shape[0]:
        raise ValueError("a_ub and b_ub must have matching first dimensions")

    gen = as_generator(rng)
    order = gen.permutation(a.shape[0])
    x = _solve_recursive(c, a[order], b[order], np.full(d, box), np.full(d, -box), gen)
    return SeidelResult(x=x, objective=float(c @ x))


def _box_optimum(c: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Minimiser of ``c.x`` over the axis-aligned box ``[lo, hi]``."""
    x = np.where(c > 0, lo, hi)
    zero = np.isclose(c, 0.0)
    # Deterministic choice for zero-coefficient coordinates (lexicographic-ish).
    x = np.where(zero, lo, x)
    if np.any(lo > hi + _EPS):
        raise InfeasibleProblemError("empty bounding box")
    return x.astype(float)


def _solve_recursive(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    hi: np.ndarray,
    lo: np.ndarray,
    gen: np.random.Generator,
) -> np.ndarray:
    """Seidel recursion over the constraint list ``a x <= b`` within ``[lo, hi]``."""
    d = c.size
    if d == 1:
        return _solve_one_dimensional(c, a, b, lo, hi)

    x = _box_optimum(c, lo, hi)
    for i in range(a.shape[0]):
        if a[i] @ x <= b[i] + _EPS:
            continue
        # The optimum of the first i constraints violates constraint i, so the
        # optimum of the first i+1 constraints lies on its boundary
        # a[i] . x = b[i].  Eliminate one variable and recurse in d-1 dims.
        x = _solve_on_hyperplane(c, a[: i + 1], b[: i + 1], a[i], b[i], lo, hi, gen)
    return x


def _solve_one_dimensional(
    c: np.ndarray, a: np.ndarray, b: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Directly solve a one-variable LP."""
    low, high = float(lo[0]), float(hi[0])
    for coeff, bound in zip(a[:, 0] if a.size else [], b):
        if coeff > _EPS:
            high = min(high, bound / coeff)
        elif coeff < -_EPS:
            low = max(low, bound / coeff)
        elif bound < -_EPS:
            raise InfeasibleProblemError("contradictory constant constraint")
    if low > high + 1e-7:
        raise InfeasibleProblemError("one-dimensional feasible interval is empty")
    value = low if c[0] > 0 else high
    if abs(c[0]) <= _EPS:
        value = low
    return np.array([min(max(value, low), high)], dtype=float)


def _solve_on_hyperplane(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    normal: np.ndarray,
    offset: float,
    lo: np.ndarray,
    hi: np.ndarray,
    gen: np.random.Generator,
) -> np.ndarray:
    """Solve the LP restricted to the hyperplane ``normal . x = offset``.

    One variable (the one with the largest |coefficient| in ``normal``) is
    eliminated; the box bounds of the eliminated variable become two extra
    inequality constraints of the reduced problem.
    """
    d = c.size
    pivot = int(np.argmax(np.abs(normal)))
    if abs(normal[pivot]) <= _EPS:
        # Degenerate constraint 0 . x <= b with b < 0: infeasible.
        raise InfeasibleProblemError("degenerate violated constraint")
    keep = [j for j in range(d) if j != pivot]

    # x_pivot = (offset - sum_{j != pivot} normal_j x_j) / normal_pivot
    ratio = normal[keep] / normal[pivot]
    base = offset / normal[pivot]

    # Reduced objective: c.x = c_keep . y + c_pivot * (base - ratio . y).
    reduced_c = c[keep] - c[pivot] * ratio

    reduced_rows: list[np.ndarray] = []
    reduced_rhs: list[float] = []
    for row, rhs in zip(a, b):
        new_row = row[keep] - row[pivot] * ratio
        new_rhs = rhs - row[pivot] * base
        reduced_rows.append(new_row)
        reduced_rhs.append(new_rhs)
    # Box constraints of the eliminated variable: lo <= base - ratio.y <= hi.
    reduced_rows.append(-ratio)
    reduced_rhs.append(hi[pivot] - base)
    reduced_rows.append(ratio)
    reduced_rhs.append(base - lo[pivot])

    reduced_a = np.asarray(reduced_rows, dtype=float)
    reduced_b = np.asarray(reduced_rhs, dtype=float)

    order = gen.permutation(reduced_a.shape[0])
    y = _solve_recursive(
        reduced_c, reduced_a[order], reduced_b[order], hi[keep], lo[keep], gen
    )

    x = np.empty(d, dtype=float)
    x[keep] = y
    x[pivot] = base - ratio @ y
    if x[pivot] < lo[pivot] - 1e-6 or x[pivot] > hi[pivot] + 1e-6:
        raise SolverError("eliminated variable escaped the bounding box")
    return x
