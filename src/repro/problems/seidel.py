"""Seidel's randomised incremental linear-programming algorithm.

A from-scratch low-dimensional LP solver: expected ``O(d! * n)`` time, which
is linear in ``n`` for fixed ``d`` — exactly the regime of the paper.  It is
provided as an alternative basis-computation backend (ablation experiment A2)
and as a dependency-free substrate: the library remains usable for LP even
without SciPy's HiGHS.

The solver handles problems of the form::

    min  c . x
    s.t. a_j . x <= b_j   for j in [n]
         -M <= x_i <= M   for i in [d]   (bounding box)

The bounding box guarantees a bounded optimum for every subset of the
constraints, which is what the LP-type formulation needs.  The algorithm is
the classical one — insert constraints in random order; when the new
constraint is violated by the current optimum, restrict to the boundary of
the new constraint (a ``d-1``-dimensional LP) — implemented *iteratively*
with an explicit frame stack instead of per-constraint Python recursion:

* the next violated constraint at each insertion level is found with one
  masked matmul over the not-yet-inserted suffix (``a[pos:] @ x - b[pos:]``),
  so feasible constraints are skipped at NumPy speed instead of one
  interpreted dot product at a time;
* dimension reduction onto a violated constraint's boundary pushes a child
  frame; the parent lifts the child's solution back through the stored
  elimination data when the child finishes;
* the reduced constraint systems are built with whole-array operations
  (one outer product) rather than per-row Python loops.

The random insertion orders are drawn exactly as the recursive formulation
drew them (one permutation per reduced subproblem, depth-first), so results
for a fixed seed are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import kernels
from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.rng import SeedLike, as_generator

__all__ = ["SeidelResult", "seidel_solve"]

_EPS = 1e-9


@dataclass(frozen=True)
class SeidelResult:
    """Optimal point and value returned by :func:`seidel_solve`."""

    x: np.ndarray
    objective: float


def seidel_solve(
    c: np.ndarray,
    a_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    box: float,
    rng: SeedLike = None,
) -> SeidelResult:
    """Solve a low-dimensional LP with Seidel's randomised incremental method.

    Parameters
    ----------
    c:
        Objective vector of length ``d``.
    a_ub, b_ub:
        Inequality constraints ``a_ub x <= b_ub`` (may be ``None`` / empty).
    box:
        Half-width ``M`` of the bounding box ``[-M, M]^d``.
    rng:
        Randomness for the insertion order.

    Raises
    ------
    InfeasibleProblemError
        If the constraints (within the box) are infeasible.
    """
    c = np.asarray(c, dtype=float)
    d = int(c.size)
    if d < 1:
        raise ValueError("objective must have at least one coordinate")
    if box <= 0:
        raise ValueError(f"box must be positive, got {box}")
    if a_ub is None or len(a_ub) == 0:
        a = np.zeros((0, d))
        b = np.zeros(0)
    else:
        a = np.asarray(a_ub, dtype=float).reshape(-1, d)
        b = np.asarray(b_ub, dtype=float).reshape(-1)
    if a.shape[0] != b.shape[0]:
        raise ValueError("a_ub and b_ub must have matching first dimensions")

    gen = as_generator(rng)
    order = gen.permutation(a.shape[0])
    x = _solve_iterative(c, a[order], b[order], np.full(d, -box), np.full(d, box), gen)
    return SeidelResult(x=x, objective=float(c @ x))


def _box_optimum(c: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Minimiser of ``c.x`` over the axis-aligned box ``[lo, hi]``."""
    x = np.where(c > 0, lo, hi)
    zero = np.isclose(c, 0.0)
    # Deterministic choice for zero-coefficient coordinates (lexicographic-ish).
    x = np.where(zero, lo, x)
    if np.any(lo > hi + _EPS):
        raise InfeasibleProblemError("empty bounding box")
    return x.astype(float)


def _solve_one_dimensional(
    c: np.ndarray, a: np.ndarray, b: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Directly solve a one-variable LP (vectorised interval clipping)."""
    low, high = float(lo[0]), float(hi[0])
    if a.shape[0]:
        coeff = a[:, 0]
        positive = coeff > _EPS
        negative = coeff < -_EPS
        if positive.any():
            high = min(high, float((b[positive] / coeff[positive]).min()))
        if negative.any():
            low = max(low, float((b[negative] / coeff[negative]).max()))
        if np.any(~positive & ~negative & (b < -_EPS)):
            raise InfeasibleProblemError("contradictory constant constraint")
    if low > high + 1e-7:
        raise InfeasibleProblemError("one-dimensional feasible interval is empty")
    value = low if c[0] > 0 else high
    if abs(c[0]) <= _EPS:
        value = low
    return np.array([min(max(value, low), high)], dtype=float)


class _Frame:
    """One insertion level of the iterative Seidel solve.

    Holds the level's constraint system and current optimum plus, while a
    child (reduced, ``d-1``-dimensional) level is in flight, the elimination
    data needed to lift the child's solution back: ``x[keep] = y`` and
    ``x[pivot] = base - ratio . y``.
    """

    __slots__ = ("c", "a", "b", "lo", "hi", "x", "pos", "keep", "pivot", "ratio", "base")

    def __init__(
        self, c: np.ndarray, a: np.ndarray, b: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> None:
        self.c = c
        self.a = a
        self.b = b
        self.lo = lo
        self.hi = hi
        self.x: np.ndarray | None = None
        self.pos = 0


def _first_violator(frame: _Frame) -> int | None:
    """Index of the first constraint at or after ``pos`` violated at ``x``.

    One kernel sweep over the not-yet-inserted suffix per call — this is the
    vectorised replacement for the per-constraint scan of the recursive
    formulation; the fused backend scans in blocks and exits at the first
    violated block instead of materialising the whole suffix's slack.
    """
    if frame.pos >= frame.a.shape[0]:
        return None
    hit = kernels.active_backend().first_violator(
        frame.a[frame.pos :], frame.b[frame.pos :], frame.x, _EPS
    )
    if hit is None:
        return None
    return frame.pos + int(hit)


def _reduced_child(frame: _Frame, index: int, gen: np.random.Generator) -> _Frame:
    """Build the child frame on the boundary of constraint ``index``.

    One variable (the largest-|coefficient| one of the violated constraint's
    normal) is eliminated; the box bounds of the eliminated variable become
    two extra inequality rows of the reduced system.  Stores the lift data on
    ``frame`` and returns the permuted child.
    """
    a = frame.a[: index + 1]
    b = frame.b[: index + 1]
    normal = frame.a[index]
    offset = float(frame.b[index])
    pivot = int(np.argmax(np.abs(normal)))
    if abs(normal[pivot]) <= _EPS:
        # Degenerate constraint 0 . x <= b with b < 0: infeasible.
        raise InfeasibleProblemError("degenerate violated constraint")
    keep = np.delete(np.arange(frame.c.size), pivot)

    # x_pivot = (offset - sum_{j != pivot} normal_j x_j) / normal_pivot
    ratio = normal[keep] / normal[pivot]
    base = offset / normal[pivot]

    # Reduced objective: c.x = c_keep . y + c_pivot * (base - ratio . y).
    reduced_c = frame.c[keep] - frame.c[pivot] * ratio

    # All constraint rows reduced in one outer product, plus the two box
    # rows of the eliminated variable: lo <= base - ratio.y <= hi.
    reduced_a = np.vstack([a[:, keep] - np.outer(a[:, pivot], ratio), -ratio, ratio])
    reduced_b = np.concatenate(
        [b - a[:, pivot] * base, [frame.hi[pivot] - base, base - frame.lo[pivot]]]
    )

    frame.keep = keep
    frame.pivot = pivot
    frame.ratio = ratio
    frame.base = base

    order = gen.permutation(reduced_a.shape[0])
    return _Frame(reduced_c, reduced_a[order], reduced_b[order], frame.lo[keep], frame.hi[keep])


def _lift(frame: _Frame, y: np.ndarray) -> np.ndarray:
    """Undo the elimination: embed the child solution into the parent space."""
    x = np.empty(frame.c.size, dtype=float)
    x[frame.keep] = y
    x[frame.pivot] = frame.base - frame.ratio @ y
    if (
        x[frame.pivot] < frame.lo[frame.pivot] - 1e-6
        or x[frame.pivot] > frame.hi[frame.pivot] + 1e-6
    ):
        raise SolverError("eliminated variable escaped the bounding box")
    return x


def _solve_iterative(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    gen: np.random.Generator,
) -> np.ndarray:
    """Iterative Seidel over the constraint list ``a x <= b`` within ``[lo, hi]``.

    Depth-first over an explicit frame stack: the control flow (and the
    random permutation draws) match the classical recursion exactly, without
    Python-level recursion or per-constraint loops.
    """
    stack = [_Frame(c, a, b, lo, hi)]
    solution: np.ndarray | None = None

    while stack:
        frame = stack[-1]
        if solution is not None:
            # A child level just finished: lift its optimum into this level.
            frame.x = _lift(frame, solution)
            solution = None
        if frame.x is None:
            if frame.c.size == 1:
                solution = _solve_one_dimensional(
                    frame.c, frame.a, frame.b, frame.lo, frame.hi
                )
                stack.pop()
                continue
            frame.x = _box_optimum(frame.c, frame.lo, frame.hi)
        violated = _first_violator(frame)
        if violated is None:
            solution = frame.x
            stack.pop()
            continue
        # The optimum of the first ``violated`` constraints breaks constraint
        # ``violated``, so the optimum of the first ``violated + 1`` lies on
        # its boundary: descend one dimension.
        frame.pos = violated + 1
        stack.append(_reduced_child(frame, violated, gen))

    assert solution is not None
    return solution
