"""Concrete LP-type problems: LP, linear SVM, MEB, and generic convex QP."""

from .linear_program import DEFAULT_BOX_BOUND, LexicographicValue, LinearProgram
from .meb import Ball, MEBValue, MinimumEnclosingBall, badoiu_clarkson_meb
from .qp import ConvexQuadraticProgram, QPSolution, QPValue, minimize_convex_qp
from .seidel import SeidelResult, seidel_solve
from .solvers import LPSolution, lexicographic_minimum, solve_lp
from .svm import LinearSVM, SVMValue

__all__ = [
    "DEFAULT_BOX_BOUND",
    "LexicographicValue",
    "LinearProgram",
    "Ball",
    "MEBValue",
    "MinimumEnclosingBall",
    "badoiu_clarkson_meb",
    "ConvexQuadraticProgram",
    "QPSolution",
    "QPValue",
    "minimize_convex_qp",
    "SeidelResult",
    "seidel_solve",
    "LPSolution",
    "lexicographic_minimum",
    "solve_lp",
    "LinearSVM",
    "SVMValue",
]
