"""Small convex quadratic programming used by the SVM and MEB problems.

Both the hard-margin linear SVM (Eq. 6) and the minimum enclosing ball
(Eq. 7, after the standard change of variables) are convex quadratic programs
with only ``d`` or ``d + 1`` variables and one linear inequality constraint
per data point:

* SVM:  ``min ||u||^2          s.t.  y_j <u, x_j> >= 1``
* MEB:  ``min ||c||^2 + s      s.t.  2 <p_j, c> + s >= ||p_j||^2``
  (the optimal radius is ``sqrt(s + ||c||^2)``)

This module provides a generic solver for problems of the form::

    min  (1/2) x' Q x + q' x     s.t.   G x >= h

with ``Q`` positive semidefinite, built on SciPy's SLSQP.  The problem sizes
the meta-algorithm produces (a handful of variables, at most a few thousand
constraints from an eps-net sample) are comfortably within SLSQP's range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import minimize

from ..core.exceptions import InfeasibleProblemError, SolverError

__all__ = ["QPSolution", "minimize_convex_qp"]


@dataclass(frozen=True)
class QPSolution:
    """Solution of a convex QP: the optimal point and objective value."""

    x: np.ndarray
    objective: float


def minimize_convex_qp(
    q_matrix: np.ndarray,
    q_vector: np.ndarray,
    g_matrix: Optional[np.ndarray] = None,
    h_vector: Optional[np.ndarray] = None,
    x0: Optional[np.ndarray] = None,
    max_iterations: int = 200,
    feasibility_tolerance: float = 1e-7,
) -> QPSolution:
    """Minimise ``(1/2) x' Q x + q' x`` subject to ``G x >= h``.

    Parameters
    ----------
    q_matrix:
        Positive semidefinite matrix ``Q`` of shape ``(d, d)``.
    q_vector:
        Linear term ``q`` of shape ``(d,)``.
    g_matrix, h_vector:
        Inequality constraints ``G x >= h`` (may be omitted / empty).
    x0:
        Optional warm start.
    max_iterations:
        SLSQP iteration budget.
    feasibility_tolerance:
        Maximum allowed constraint violation of the returned point; a larger
        violation raises :class:`InfeasibleProblemError`.

    Raises
    ------
    InfeasibleProblemError
        If no feasible point is found (SLSQP converges to an infeasible
        stationary point, the standard signature of an empty feasible set
        for these problems).
    SolverError
        On any other optimiser failure.
    """
    q_matrix = np.asarray(q_matrix, dtype=float)
    q_vector = np.asarray(q_vector, dtype=float).reshape(-1)
    d = q_vector.size
    if q_matrix.shape != (d, d):
        raise ValueError(f"Q must have shape ({d}, {d}), got {q_matrix.shape}")

    if g_matrix is None or len(g_matrix) == 0:
        g = np.zeros((0, d))
        h = np.zeros(0)
    else:
        g = np.asarray(g_matrix, dtype=float).reshape(-1, d)
        h = np.asarray(h_vector, dtype=float).reshape(-1)
    if g.shape[0] != h.shape[0]:
        raise ValueError("G and h must have matching first dimensions")

    def objective(x: np.ndarray) -> float:
        return float(0.5 * x @ q_matrix @ x + q_vector @ x)

    def gradient(x: np.ndarray) -> np.ndarray:
        return q_matrix @ x + q_vector

    constraints = []
    if g.shape[0] > 0:
        constraints.append(
            {
                "type": "ineq",
                "fun": lambda x: g @ x - h,
                "jac": lambda x: g,
            }
        )

    start = np.zeros(d) if x0 is None else np.asarray(x0, dtype=float).reshape(d)
    result = minimize(
        objective,
        start,
        jac=gradient,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": 1e-12},
    )

    x = np.asarray(result.x, dtype=float)
    if g.shape[0] > 0:
        violation = float(np.max(h - g @ x, initial=0.0))
    else:
        violation = 0.0
    if violation > max(feasibility_tolerance, 1e-6 * max(1.0, float(np.abs(h).max(initial=0.0)))):
        raise InfeasibleProblemError(
            f"QP appears infeasible (max constraint violation {violation:.3g})"
        )
    if not result.success and violation > feasibility_tolerance:
        raise SolverError(f"SLSQP failed: {result.message}")
    return QPSolution(x=x, objective=objective(x))
