"""Small convex quadratic programming used by the SVM and MEB problems.

Both the hard-margin linear SVM (Eq. 6) and the minimum enclosing ball
(Eq. 7, after the standard change of variables) are convex quadratic programs
with only ``d`` or ``d + 1`` variables and one linear inequality constraint
per data point:

* SVM:  ``min ||u||^2          s.t.  y_j <u, x_j> >= 1``
* MEB:  ``min ||c||^2 + s      s.t.  2 <p_j, c> + s >= ||p_j||^2``
  (the optimal radius is ``sqrt(s + ||c||^2)``)

This module provides a generic solver for problems of the form::

    min  (1/2) x' Q x + q' x     s.t.   G x >= h

with ``Q`` positive semidefinite, built on SciPy's SLSQP.  The problem sizes
the meta-algorithm produces (a handful of variables, at most a few thousand
constraints from an eps-net sample) are comfortably within SLSQP's range.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import minimize

from ..core.exceptions import InfeasibleProblemError, InvalidInstanceError, SolverError
from ..core.lptype import (
    BasisResult,
    ConstraintPack,
    LPTypeProblem,
    as_index_array,
    working_set_solve,
)

__all__ = ["QPSolution", "QPValue", "ConvexQuadraticProgram", "minimize_convex_qp"]


@dataclass(frozen=True)
class QPSolution:
    """Solution of a convex QP: the optimal point and objective value."""

    x: np.ndarray
    objective: float


def minimize_convex_qp(
    q_matrix: np.ndarray,
    q_vector: np.ndarray,
    g_matrix: Optional[np.ndarray] = None,
    h_vector: Optional[np.ndarray] = None,
    x0: Optional[np.ndarray] = None,
    max_iterations: int = 200,
    feasibility_tolerance: float = 1e-7,
) -> QPSolution:
    """Minimise ``(1/2) x' Q x + q' x`` subject to ``G x >= h``.

    Parameters
    ----------
    q_matrix:
        Positive semidefinite matrix ``Q`` of shape ``(d, d)``.
    q_vector:
        Linear term ``q`` of shape ``(d,)``.
    g_matrix, h_vector:
        Inequality constraints ``G x >= h`` (may be omitted / empty).
    x0:
        Optional warm start.
    max_iterations:
        SLSQP iteration budget.
    feasibility_tolerance:
        Maximum allowed constraint violation of the returned point; a larger
        violation raises :class:`InfeasibleProblemError`.

    Raises
    ------
    InfeasibleProblemError
        If no feasible point is found (SLSQP converges to an infeasible
        stationary point, the standard signature of an empty feasible set
        for these problems).
    SolverError
        On any other optimiser failure.
    """
    q_matrix = np.asarray(q_matrix, dtype=float)
    q_vector = np.asarray(q_vector, dtype=float).reshape(-1)
    d = q_vector.size
    if q_matrix.shape != (d, d):
        raise ValueError(f"Q must have shape ({d}, {d}), got {q_matrix.shape}")

    if g_matrix is None or len(g_matrix) == 0:
        g = np.zeros((0, d))
        h = np.zeros(0)
    else:
        g = np.asarray(g_matrix, dtype=float).reshape(-1, d)
        h = np.asarray(h_vector, dtype=float).reshape(-1)
    if g.shape[0] != h.shape[0]:
        raise ValueError("G and h must have matching first dimensions")

    def objective(x: np.ndarray) -> float:
        return float(0.5 * x @ q_matrix @ x + q_vector @ x)

    def gradient(x: np.ndarray) -> np.ndarray:
        return q_matrix @ x + q_vector

    constraints = []
    if g.shape[0] > 0:
        constraints.append(
            {
                "type": "ineq",
                "fun": lambda x: g @ x - h,
                "jac": lambda x: g,
            }
        )

    start = np.zeros(d) if x0 is None else np.asarray(x0, dtype=float).reshape(d)
    result = minimize(
        objective,
        start,
        jac=gradient,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": 1e-12},
    )

    x = np.asarray(result.x, dtype=float)
    if g.shape[0] > 0:
        violation = float(np.max(h - g @ x, initial=0.0))
    else:
        violation = 0.0
    if violation > max(feasibility_tolerance, 1e-6 * max(1.0, float(np.abs(h).max(initial=0.0)))):
        raise InfeasibleProblemError(
            f"QP appears infeasible (max constraint violation {violation:.3g})"
        )
    if not result.success and violation > feasibility_tolerance:
        raise SolverError(f"SLSQP failed: {result.message}")
    return QPSolution(x=x, objective=objective(x))


@functools.total_ordering
@dataclass(frozen=True)
class QPValue:
    """Totally ordered ``f`` value of the QP problem: the objective.

    Strict convexity of the objective (``Q`` positive definite) makes the
    optimum of every subset unique, so comparing objectives suffices; an
    infeasible subset is the top element.
    """

    objective: float
    infeasible: bool = False
    tolerance: float = 1e-6

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QPValue):
            return NotImplemented
        if self.infeasible or other.infeasible:
            return self.infeasible == other.infeasible
        return abs(self.objective - other.objective) <= self.tolerance * max(
            1.0, abs(self.objective), abs(other.objective)
        )

    def __lt__(self, other: "QPValue") -> bool:
        if not isinstance(other, QPValue):
            return NotImplemented
        if self == other:
            return False
        if self.infeasible:
            return False
        if other.infeasible:
            return True
        return self.objective < other.objective

    def __hash__(self) -> int:
        return hash((self.infeasible, round(self.objective, 6)))


class ConvexQuadraticProgram(LPTypeProblem):
    """A strictly convex QP ``min (1/2) x' Q x + q' x  s.t.  G x >= h`` as an
    LP-type problem.

    Every row of ``G`` (with its entry of ``h``) is one constraint; the SVM
    and MEB formulations (Eqs. 6 and 7) are the special cases the paper
    names, and this class exposes the general form so that new quadratic
    workloads plug straight into all four drivers.  Strict convexity of the
    objective makes the subset optimum unique, so the combinatorial
    dimension is at most ``d + 1`` and no lexicographic tie-breaking is
    needed.
    """

    def __init__(
        self,
        q_matrix: Sequence[Sequence[float]] | np.ndarray,
        q_vector: Sequence[float] | np.ndarray,
        g_matrix: Sequence[Sequence[float]] | np.ndarray,
        h_vector: Sequence[float] | np.ndarray,
        tolerance: float = 1e-6,
    ) -> None:
        self.q_matrix = np.asarray(q_matrix, dtype=float)
        self.q_vector = np.asarray(q_vector, dtype=float).reshape(-1)
        self.g_matrix = np.asarray(g_matrix, dtype=float)
        self.h_vector = np.asarray(h_vector, dtype=float).reshape(-1)
        d = self.q_vector.size
        if self.q_matrix.shape != (d, d):
            raise InvalidInstanceError(
                f"Q must have shape ({d}, {d}), got {self.q_matrix.shape}"
            )
        if self.g_matrix.ndim != 2 or self.g_matrix.shape[1] != d:
            raise InvalidInstanceError(
                f"G must have shape (n, {d}), got {self.g_matrix.shape}"
            )
        if self.g_matrix.shape[0] != self.h_vector.size:
            raise InvalidInstanceError(
                f"{self.g_matrix.shape[0]} constraint rows but "
                f"{self.h_vector.size} right-hand sides"
            )
        eigenvalues = np.linalg.eigvalsh(0.5 * (self.q_matrix + self.q_matrix.T))
        if eigenvalues.min() <= 0:
            raise InvalidInstanceError(
                "Q must be positive definite for the LP-type formulation "
                "(unique subset optima)"
            )
        self.tolerance = float(tolerance)

    # ------------------------------------------------------------------ #
    # LPTypeProblem interface
    # ------------------------------------------------------------------ #

    @property
    def num_constraints(self) -> int:
        return int(self.g_matrix.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.q_vector.size)

    def bit_size(self) -> int:
        # d coefficients of the constraint row plus the right-hand side.
        return (self.dimension + 1) * 64

    def payload_num_coefficients(self) -> int:
        return self.dimension + 1

    def constraint_payload(self, index: int) -> tuple[np.ndarray, float]:
        return self.g_matrix[index].copy(), float(self.h_vector[index])

    def solve_subset(self, indices: Sequence[int]) -> BasisResult:
        return working_set_solve(self, as_index_array(indices), self._solve_subset_direct)

    def _solve_subset_direct(self, indices: Sequence[int]) -> BasisResult:
        idx = as_index_array(indices)
        g = self.g_matrix[idx] if idx.size else np.zeros((0, self.dimension))
        h = self.h_vector[idx] if idx.size else np.zeros(0)
        try:
            solution = minimize_convex_qp(
                q_matrix=self.q_matrix, q_vector=self.q_vector, g_matrix=g, h_vector=h
            )
        except InfeasibleProblemError:
            return BasisResult(
                indices=tuple(int(i) for i in idx[: self.combinatorial_dimension]),
                value=QPValue(objective=float("inf"), infeasible=True),
                witness=None,
                subset_size=int(idx.size),
            )
        return BasisResult(
            indices=self._extract_basis(idx, solution.x),
            value=QPValue(objective=solution.objective),
            witness=solution.x,
            subset_size=int(idx.size),
        )

    def violates(self, witness: Optional[np.ndarray], index: int) -> bool:
        if witness is None:
            return False
        row = self.g_matrix[index]
        slack = float(row @ witness - self.h_vector[index])
        scale = max(1.0, float(np.abs(row).max()), abs(float(self.h_vector[index])))
        return slack < -(self.tolerance * scale + self.tolerance)

    def _build_constraint_pack(self) -> ConstraintPack:
        # Violated iff g_i . x - h_i < -(tol * scale_i + tol) (lower-bound sense).
        scale = np.maximum(
            1.0, np.maximum(np.abs(self.g_matrix).max(axis=1), np.abs(self.h_vector))
        )
        return ConstraintPack(
            rows=self.g_matrix,
            rhs=self.h_vector,
            limit=self.tolerance * scale + self.tolerance,
            sense=-1,
        )

    def encode_witness(self, witness) -> tuple[np.ndarray, float] | None:
        if witness is None:
            return None
        return np.asarray(witness, dtype=float), 0.0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _extract_basis(self, idx: np.ndarray, x: np.ndarray) -> tuple[int, ...]:
        """Tight constraints at the optimum, capped at ``nu``."""
        if idx.size == 0:
            return ()
        rows = self.g_matrix[idx]
        rhs = self.h_vector[idx]
        slack = np.abs(rows @ x - rhs)
        scale = np.maximum(1.0, np.maximum(np.abs(rows).max(axis=1), np.abs(rhs)))
        tight = idx[slack <= 1e-4 * scale + 1e-4]
        return tuple(int(i) for i in tight[: self.combinatorial_dimension])


from ..api.registry import register_problem  # noqa: E402  (import-time registration)

register_problem(
    "quadratic_program",
    ConvexQuadraticProgram,
    description=(
        "Convex quadratic program min (1/2) x'Qx + q'x s.t. Gx >= h (the "
        "generic form behind the SVM and MEB reductions)."
    ),
    tags=("optimization", "qp"),
)
