"""The node agent: one remote process executing fabric node tasks.

``python -m repro node --connect host:port`` dials the coordinator's
:class:`~repro.cluster.registry.ClusterRegistry`; ``--listen host:port``
binds instead and waits for the registry to dial in (useful when only the
coordinator can open outbound connections).  Either way the agent speaks
first: it sends ``hello``, the registry answers ``welcome`` (assigning the
agent id and the heartbeat interval) or ``reject``.

After registration the agent runs the *same* command loop as the process
pool's :func:`~repro.fabric.transport._worker_main` — ``share`` / ``init`` /
``run`` / ``ping`` / ``release`` / ``stop`` with identical state semantics
(states keyed by ``(session, node_id)``, RNGs resident in the state, task
functions cached per pickle, args/results through the pickle-free
:mod:`~repro.fabric.wirecodec`) — so a solve lands bit-identically whether
its nodes live in a local worker or across the network.  A daemon heartbeat
thread pushes ``("hb", seq)`` frames on the same socket at the negotiated
interval; the send lock in :class:`~repro.cluster.protocol.FrameConnection`
keeps heartbeat and reply frames from tearing each other.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import traceback
from typing import Any, Dict, Optional, Tuple

from .protocol import FrameConnection, HandshakeError, hello_message
from ..fabric import wirecodec
from ..fabric.transport import _resolve_shared

__all__ = ["NodeAgent"]


class NodeAgent:
    """Registers with a coordinator and executes node tasks until stopped."""

    def __init__(
        self,
        *,
        name: Optional[str] = None,
        heartbeat_interval_s: Optional[float] = None,
    ) -> None:
        self.name = name or f"node-{os.getpid()}"
        self._interval_override = (
            None if heartbeat_interval_s is None else float(heartbeat_interval_s)
        )
        self.agent_id: Optional[str] = None
        self._stop = threading.Event()

    # -- entry points ------------------------------------------------------

    def run_connect(self, address: Tuple[str, int]) -> int:
        """Dial the registry at ``address`` and serve until stopped."""
        sock = socket.create_connection(address, timeout=10.0)
        sock.settimeout(None)
        return self._serve(FrameConnection(sock))

    def run_listen(self, address: Tuple[str, int]) -> int:
        """Bind ``address``, announce it, and serve the registry that dials in."""
        listener = socket.create_server(address, backlog=1)
        host, port = listener.getsockname()[:2]
        # The announcement is the contract for scripts that bind port 0.
        print(f"listening on {host}:{port}", flush=True)
        try:
            sock, _addr = listener.accept()
        finally:
            listener.close()
        return self._serve(FrameConnection(sock))

    # -- registration ------------------------------------------------------

    def _register(self, conn: FrameConnection) -> float:
        conn.send(hello_message(self.name, os.getpid()))
        reply = conn.recv(timeout=10.0)
        if isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "welcome":
            details = dict(reply[1])
            self.agent_id = str(details.get("agent_id", self.name))
            negotiated = float(details.get("heartbeat_interval_s", 0.5))
            return self._interval_override or negotiated
        if isinstance(reply, tuple) and reply and reply[0] == "reject":
            raise HandshakeError(f"registration rejected: {reply[1]}")
        raise HandshakeError(f"unexpected handshake reply {reply!r}")

    def _heartbeat_loop(self, conn: FrameConnection, interval: float) -> None:
        seq = 0
        while not self._stop.wait(interval):
            seq += 1
            try:
                conn.send(("hb", seq))
            except OSError:
                return

    # -- the command loop --------------------------------------------------

    def _serve(self, conn: FrameConnection) -> int:
        interval = self._register(conn)
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(conn, interval),
            name="agent-heartbeat",
            daemon=True,
        )
        beater.start()

        states: Dict[Tuple[str, int], Any] = {}
        shared: Dict[Tuple[str, str], Any] = {}
        fn_cache: Dict[bytes, Any] = {}
        try:
            while True:
                try:
                    message = conn.recv(timeout=None)
                except (EOFError, wirecodec.TruncatedFrameError, OSError):
                    return 0  # coordinator went away: nothing left to serve
                command = message[0]
                if command == "stop":
                    try:
                        conn.send(("ok", None))
                    except OSError:
                        pass
                    return 0
                try:
                    if command == "share":
                        _, session, key, value_bytes = message
                        shared[(session, key)] = pickle.loads(value_bytes)
                        conn.send(("ok", None))
                    elif command == "init":
                        _, session, node_id, state_bytes = message
                        states[(session, node_id)] = _resolve_shared(
                            wirecodec.loads(state_bytes), shared, session
                        )
                        conn.send(("ok", None))
                    elif command == "run":
                        _, session, tasks = message
                        results = []
                        for node_id, fn_bytes, args_bytes in tasks:
                            fn = fn_cache.get(fn_bytes)
                            if fn is None:
                                fn = fn_cache[fn_bytes] = pickle.loads(fn_bytes)
                            args = wirecodec.loads(args_bytes)
                            state_key = (session, node_id)
                            state, result = fn(states[state_key], *args)
                            states[state_key] = state
                            results.append(wirecodec.dumps(result))
                        conn.send(("ok", results))
                    elif command == "ping":
                        conn.send(("ok", "pong"))
                    elif command == "release":
                        _, session = message
                        for state_key in [k for k in states if k[0] == session]:
                            del states[state_key]
                        for shared_key in [k for k in shared if k[0] == session]:
                            del shared[shared_key]
                        conn.send(("ok", None))
                    else:
                        conn.send(("error", f"unknown command {command!r}"))
                except BaseException:
                    try:
                        conn.send(("error", traceback.format_exc()))
                    except OSError:
                        return 0
        finally:
            self._stop.set()
            conn.close()
            beater.join(timeout=1.0)
