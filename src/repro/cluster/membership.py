"""Membership liveness: a clock-injectable heartbeat monitor.

Liveness is a pure function of timestamps, so — like
:class:`repro.resilience.circuit.CircuitBreaker` — the monitor takes an
injectable ``clock`` and never sleeps or spawns threads itself.  The
registry owns the single thread that calls :meth:`HeartbeatMonitor.evaluate`
periodically; tests drive a fake clock through every transition
deterministically.

States and transitions (per member)::

    joining --ready()--> ready --timeout--> suspect --2x timeout--> dead
       |                   ^                   |
       +--registration     +---late beat-------+        (dead is sticky)
          timeout-> dead

``joining`` covers the registration handshake: a member that never turns
ready within ``registration_timeout_s`` goes straight to ``dead``.  A late
heartbeat rescues a ``suspect`` member back to ``ready``; nothing rescues a
``dead`` one — its journal has already been replayed elsewhere, and a
resurrected twin executing the same nodes would fork the deterministic
history.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["LIVENESS_STATES", "MemberClock", "HeartbeatMonitor"]

#: Every liveness state a member can be in, in lifecycle order.
LIVENESS_STATES = ("joining", "ready", "suspect", "dead")


class MemberClock:
    """Per-member liveness bookkeeping: state + last-heartbeat timestamp."""

    __slots__ = ("state", "joined_at", "last_beat", "beats", "reason")

    def __init__(self, now: float) -> None:
        self.state = "joining"
        self.joined_at = now
        self.last_beat = now
        self.beats = 0
        self.reason: Optional[str] = None


class HeartbeatMonitor:
    """Tracks member liveness from heartbeat timestamps.

    Thread-safe; every mutation happens under one lock.  ``evaluate()``
    returns the members that *newly* died during that call so the caller
    (the registry) can trigger recovery exactly once per death.
    """

    def __init__(
        self,
        *,
        heartbeat_timeout_s: float = 2.0,
        registration_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if registration_timeout_s <= 0:
            raise ValueError("registration_timeout_s must be positive")
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.registration_timeout_s = float(registration_timeout_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._members: Dict[str, MemberClock] = {}

    # -- lifecycle ---------------------------------------------------------

    def register(self, member_id: str) -> None:
        with self._lock:
            if member_id in self._members:
                raise ValueError(f"member {member_id!r} already registered")
            self._members[member_id] = MemberClock(self._clock())

    def ready(self, member_id: str) -> None:
        """Handshake completed; the member now participates in liveness."""
        with self._lock:
            member = self._members[member_id]
            if member.state == "dead":
                return
            member.state = "ready"
            member.last_beat = self._clock()

    def beat(self, member_id: str) -> None:
        """Record one heartbeat.  Rescues ``suspect``, never ``dead``."""
        with self._lock:
            member = self._members.get(member_id)
            if member is None or member.state == "dead":
                return
            member.last_beat = self._clock()
            member.beats += 1
            if member.state == "suspect":
                member.state = "ready"

    def mark_dead(self, member_id: str, reason: str = "connection lost") -> bool:
        """Force a member dead (socket EOF, kill).  True if it newly died."""
        with self._lock:
            member = self._members.get(member_id)
            if member is None or member.state == "dead":
                return False
            member.state = "dead"
            member.reason = reason
            return True

    def forget(self, member_id: str) -> None:
        """Drop a member entirely (clean drain — not a failure)."""
        with self._lock:
            self._members.pop(member_id, None)

    # -- queries -----------------------------------------------------------

    def state(self, member_id: str) -> str:
        with self._lock:
            return self._members[member_id].state

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            now = self._clock()
            return {
                member_id: {
                    "state": member.state,
                    "beats": member.beats,
                    "age_s": round(now - member.joined_at, 3),
                    "since_last_beat_s": round(now - member.last_beat, 3),
                    **({"reason": member.reason} if member.reason else {}),
                }
                for member_id, member in self._members.items()
            }

    # -- the periodic sweep ------------------------------------------------

    def evaluate(self) -> List[Tuple[str, str]]:
        """Advance timeouts; return ``[(member_id, reason), ...]`` newly dead."""
        died: List[Tuple[str, str]] = []
        with self._lock:
            now = self._clock()
            for member_id, member in self._members.items():
                if member.state == "dead":
                    continue
                silent = now - member.last_beat
                if member.state == "joining":
                    if now - member.joined_at > self.registration_timeout_s:
                        member.state = "dead"
                        member.reason = "registration timeout"
                        died.append((member_id, member.reason))
                elif silent > 2.0 * self.heartbeat_timeout_s:
                    member.state = "dead"
                    member.reason = (
                        f"heartbeat expired ({silent:.3f}s > "
                        f"{2.0 * self.heartbeat_timeout_s:.3f}s)"
                    )
                    died.append((member_id, member.reason))
                elif silent > self.heartbeat_timeout_s and member.state == "ready":
                    member.state = "suspect"
        return died
