"""The cluster wire protocol: framed messages and the registration handshake.

Every cluster message is one length-prefixed frame
(:func:`repro.fabric.wirecodec.frame`: 4-byte big-endian length + a
``wirecodec`` payload), so the codec vocabulary — and its bit-exact array
transcription — is shared verbatim with the process transports' pipe wire.
Messages are tuples whose first element is the verb:

==================  =============================================  =========
direction           message                                        reply
==================  =============================================  =========
agent -> registry   ``("hello", {protocol, versions, name, pid})``  ``welcome`` / ``reject``
registry -> agent   ``("welcome", {version, agent_id,
                    heartbeat_interval_s})``                        —
registry -> agent   ``("reject", reason)``                          —
agent -> registry   ``("hb", seq)`` (async, every interval)         —
registry -> agent   ``("share", session, key, value_bytes)``        ``("ok", None)``
registry -> agent   ``("init", session, node_id, state_bytes)``     ``("ok", None)``
registry -> agent   ``("run", session, [(node_id, fn_bytes,
                    args_bytes), ...])``                            ``("ok", [result_bytes, ...])``
registry -> agent   ``("release", session)``                        ``("ok", None)``
registry -> agent   ``("ping",)``                                   ``("ok", "pong")``
registry -> agent   ``("stop",)``                                   ``("ok", None)``, then the agent exits
==================  =============================================  =========

A task error inside the agent answers ``("error", traceback)`` instead of
``("ok", ...)`` — user code raising is *not* an infrastructure fault, exactly
as on the process pool.  Heartbeats are pushed by the agent on the same
socket and demultiplexed by the registry's per-member reader thread, so a
long-running task never starves liveness.

Handshake and version negotiation: the agent always speaks first, sending
``hello`` with the protocol name and every version it implements; the
registry picks the highest common version and answers ``welcome`` (carrying
the negotiated version, the assigned agent id, and the heartbeat interval)
or ``reject`` with a reason, then closes.  Either side treats an unknown
protocol name, an empty version intersection, or a non-``hello`` first frame
as a :class:`HandshakeError`.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Optional

from ..fabric import wirecodec

__all__ = [
    "PROTOCOL_NAME",
    "SUPPORTED_VERSIONS",
    "HandshakeError",
    "FrameConnection",
    "parse_address",
    "hello_message",
    "negotiate_version",
]

#: Protocol identity sent in every ``hello``.
PROTOCOL_NAME = "repro-cluster"

#: Protocol versions this build implements (descending preference).
SUPPORTED_VERSIONS = (1,)


class HandshakeError(ConnectionError):
    """Registration failed: bad protocol, no common version, or a reject."""


def parse_address(text: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``, with a clear error on junk."""
    host, sep, port = str(text).rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"expected HOST:PORT with an integer port, got {text!r}")


def hello_message(name: str, pid: int) -> tuple:
    return (
        "hello",
        {
            "protocol": PROTOCOL_NAME,
            "versions": list(SUPPORTED_VERSIONS),
            "name": str(name),
            "pid": int(pid),
        },
    )


def negotiate_version(offered: Any) -> int:
    """The highest version both sides implement, or :class:`HandshakeError`."""
    try:
        versions = {int(v) for v in offered}
    except (TypeError, ValueError):
        raise HandshakeError(f"malformed version offer {offered!r}")
    common = versions & set(SUPPORTED_VERSIONS)
    if not common:
        raise HandshakeError(
            f"no common protocol version: peer offers {sorted(versions)}, "
            f"this side implements {list(SUPPORTED_VERSIONS)}"
        )
    return max(common)


class FrameConnection:
    """One socket speaking length-prefixed :mod:`wirecodec` frames.

    ``send`` is internally locked — the agent's heartbeat thread and its
    reply path (and nothing else) interleave writes on one socket, and a
    frame must never be torn.  ``recv`` is single-consumer by design: only
    the owning reader (the registry's per-member reader thread, the agent's
    command loop) calls it.
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False

    @property
    def peer(self) -> str:
        try:
            host, port = self._sock.getpeername()[:2]
            return f"{host}:{port}"
        except OSError:
            return "<closed>"

    def send(self, message: Any) -> None:
        data = wirecodec.frame(wirecodec.dumps(message))
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self, timeout: Optional[float] = None) -> Any:
        """One decoded frame; ``EOFError`` on clean close,
        :class:`~repro.fabric.wirecodec.TruncatedFrameError` mid-frame."""
        self._sock.settimeout(timeout)
        return wirecodec.loads(wirecodec.read_frame(self._sock.recv))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass
