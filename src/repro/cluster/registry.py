"""Coordinator-side cluster membership.

The :class:`ClusterRegistry` owns every socket the coordinator holds open to
node agents.  Structure:

* one **listener** socket + accept thread performs the registration
  handshake (``hello`` -> version negotiation -> ``welcome``/``reject``)
  for agents dialing in with ``--connect``; :meth:`connect` dials agents
  running with ``--listen`` and performs the same handshake client-side
  (the agent still speaks first);
* one **reader thread per member** demultiplexes the member's socket:
  ``("hb", seq)`` frames feed the :class:`HeartbeatMonitor`, everything
  else is an RPC reply pushed onto the member's FIFO reply queue.  Replies
  arrive in request order because the agent's command loop is
  single-threaded and :meth:`request` serializes requests per member;
* one **monitor thread** sweeps :meth:`HeartbeatMonitor.evaluate`; a member
  that newly dies (heartbeat expiry, registration timeout, or socket loss)
  has its socket closed, which unblocks its reader and pushes a dead
  sentinel so any pending RPC fails immediately with :class:`MemberDead`
  instead of hanging.

The registry is transport-agnostic infrastructure: it raises its own
:class:`MemberDead`; :class:`repro.cluster.transport.TcpTransport` converts
that into the resilience layer's typed ``TransportFailure(retryable=True)``
and drives journal-replay recovery.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .membership import HeartbeatMonitor
from .protocol import (
    FrameConnection,
    HandshakeError,
    PROTOCOL_NAME,
    SUPPORTED_VERSIONS,
    negotiate_version,
)
from ..fabric.wirecodec import TruncatedFrameError

__all__ = ["ClusterRegistry", "Member", "MemberDead"]

_DEAD = object()  # reply-queue sentinel: the member died mid-RPC

#: How long the handshake may take before the connector is rejected.
_HANDSHAKE_TIMEOUT_S = 10.0


class MemberDead(ConnectionError):
    """An RPC's target member died (socket loss or heartbeat expiry)."""

    def __init__(self, member_id: str, reason: str) -> None:
        super().__init__(f"cluster member {member_id} is dead: {reason}")
        self.member_id = member_id
        self.reason = reason


class Member:
    """One registered agent: its connection, reply queue, and identity."""

    def __init__(self, member_id: str, conn: FrameConnection, info: Dict[str, Any]) -> None:
        self.member_id = member_id
        self.conn = conn
        self.name = str(info.get("name", member_id))
        self.pid = int(info.get("pid", 0))
        self.replies: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self.rpc_lock = threading.RLock()
        self.failed = False
        self.fail_reason = ""
        self.reader: Optional[threading.Thread] = None


class ClusterRegistry:
    """Membership, liveness, and per-member RPC for a set of node agents."""

    def __init__(
        self,
        listen: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        heartbeat_interval_s: float = 0.5,
        heartbeat_timeout_s: float = 2.0,
        registration_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_death: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.monitor = HeartbeatMonitor(
            heartbeat_timeout_s=heartbeat_timeout_s,
            registration_timeout_s=registration_timeout_s,
            clock=clock,
        )
        self._on_death = on_death
        self._lock = threading.Lock()
        self._members: Dict[str, Member] = {}
        self._ids = itertools.count(1)
        self._ready = threading.Condition(self._lock)
        self._closing = threading.Event()

        self._listener = socket.create_server(listen, backlog=16)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor_thread.start()

    # -- registration ------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed during drain
            threading.Thread(
                target=self._handshake_guarded,
                args=(sock,),
                name="cluster-handshake",
                daemon=True,
            ).start()

    def _handshake_guarded(self, sock: socket.socket) -> None:
        try:
            self._handshake(FrameConnection(sock))
        except (HandshakeError, EOFError, TruncatedFrameError, OSError, ValueError):
            try:
                sock.close()
            except OSError:
                pass

    def _handshake(self, conn: FrameConnection) -> Member:
        """Server side of the handshake; the peer (agent) speaks first."""
        message = conn.recv(timeout=_HANDSHAKE_TIMEOUT_S)
        if not (isinstance(message, tuple) and len(message) == 2 and message[0] == "hello"):
            conn.send(("reject", "expected hello"))
            conn.close()
            raise HandshakeError(f"expected hello, got {message!r}")
        info = dict(message[1])
        if info.get("protocol") != PROTOCOL_NAME:
            conn.send(("reject", f"unknown protocol {info.get('protocol')!r}"))
            conn.close()
            raise HandshakeError(f"unknown protocol {info.get('protocol')!r}")
        try:
            version = negotiate_version(info.get("versions", ()))
        except HandshakeError as exc:
            conn.send(("reject", str(exc)))
            conn.close()
            raise

        member_id = f"agent-{next(self._ids)}"
        member = Member(member_id, conn, info)
        self.monitor.register(member_id)
        conn.send(
            (
                "welcome",
                {
                    "version": version,
                    "agent_id": member_id,
                    "heartbeat_interval_s": self.heartbeat_interval_s,
                },
            )
        )
        self.monitor.ready(member_id)
        member.reader = threading.Thread(
            target=self._reader_loop,
            args=(member,),
            name=f"cluster-reader-{member_id}",
            daemon=True,
        )
        with self._ready:
            self._members[member_id] = member
            self._ready.notify_all()
        member.reader.start()
        return member

    def connect(self, address: Tuple[str, int], *, timeout: float = 10.0) -> str:
        """Dial an agent running in ``--listen`` mode; returns its member id."""
        sock = socket.create_connection(address, timeout=timeout)
        sock.settimeout(None)
        member = self._handshake(FrameConnection(sock))
        return member.member_id

    def wait_for(self, count: int, timeout: float = 30.0) -> List[str]:
        """Block until ``count`` members are alive; returns their ids."""
        deadline = time.monotonic() + timeout
        with self._ready:
            while True:
                alive = [m for m in self._members if not self._members[m].failed]
                if len(alive) >= count:
                    return sorted(alive)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"cluster has {len(alive)}/{count} members after {timeout}s"
                    )
                self._ready.wait(remaining)

    # -- socket demultiplexing ---------------------------------------------

    def _reader_loop(self, member: Member) -> None:
        conn = member.conn
        while True:
            try:
                message = conn.recv(timeout=None)
            except (EOFError, TruncatedFrameError, OSError, ValueError):
                self._member_lost(member, "connection lost")
                return
            if isinstance(message, tuple) and message and message[0] == "hb":
                self.monitor.beat(member.member_id)
            else:
                member.replies.put(message)

    def _member_lost(self, member: Member, reason: str) -> None:
        newly = self.monitor.mark_dead(member.member_id, reason)
        member.failed = True
        member.fail_reason = member.fail_reason or reason
        member.replies.put(_DEAD)
        member.conn.close()
        if newly and self._on_death is not None:
            try:
                self._on_death(member.member_id, reason)
            except Exception:  # pragma: no cover - observer must not kill reader
                pass

    def _monitor_loop(self) -> None:
        interval = max(0.05, self.heartbeat_interval_s / 2.0)
        while not self._closing.wait(interval):
            for member_id, reason in self.monitor.evaluate():
                member = self._members.get(member_id)
                if member is not None:
                    # Closing the socket unblocks the reader, which pushes the
                    # dead sentinel and fails any pending RPC.
                    self._member_lost(member, reason)

    # -- RPC ---------------------------------------------------------------

    def _member(self, member_id: str) -> Member:
        member = self._members.get(member_id)
        if member is None:
            raise MemberDead(member_id, "unknown member")
        return member

    def lock(self, member_id: str) -> threading.RLock:
        """The member's RPC lock — hold it across a ``post``/``take`` pair.

        Reentrant on purpose: the transport pins several node slots to one
        member and acquires per-slot, so one thread may take the same
        member's lock more than once.
        """
        return self._member(member_id).rpc_lock

    def post(self, member_id: str, message: tuple) -> None:
        """Ship one command frame without waiting for its reply."""
        member = self._member(member_id)
        if member.failed:
            raise MemberDead(member_id, member.fail_reason or "dead")
        try:
            member.conn.send(message)
        except OSError as exc:
            self._member_lost(member, f"send failed: {exc}")
            raise MemberDead(member_id, member.fail_reason) from exc

    def take(self, member_id: str, *, timeout: Optional[float] = None) -> Any:
        """The member's next reply (FIFO: replies arrive in request order)."""
        member = self._member(member_id)
        try:
            reply = member.replies.get(timeout=timeout)
        except queue.Empty as exc:
            self._member_lost(member, f"reply timeout after {timeout}s")
            raise MemberDead(member_id, member.fail_reason) from exc
        if reply is _DEAD:
            # Re-arm the sentinel: every pending/later take must fail too.
            member.replies.put(_DEAD)
            raise MemberDead(member_id, member.fail_reason or "dead")
        return reply

    def request(self, member_id: str, message: tuple, *, timeout: Optional[float] = None) -> Any:
        """Send one command frame and return its reply, in request order."""
        member = self._member(member_id)
        with member.rpc_lock:
            self.post(member_id, message)
            return self.take(member_id, timeout=timeout)

    # -- introspection -----------------------------------------------------

    def alive_members(self) -> List[str]:
        with self._lock:
            return sorted(m for m, member in self._members.items() if not member.failed)

    def member_pid(self, member_id: str) -> int:
        return self._members[member_id].pid

    def health(self) -> Dict[str, Any]:
        liveness = self.monitor.snapshot()
        return {
            "address": f"{self.address[0]}:{self.address[1]}",
            "members": len(liveness),
            "ready": sum(1 for s in liveness.values() if s["state"] == "ready"),
            "liveness": {
                member_id: dict(state) for member_id, state in sorted(liveness.items())
            },
        }

    # -- drain -------------------------------------------------------------

    def forget(self, member_id: str) -> None:
        """Drop a (dead) member so it no longer counts toward membership."""
        with self._ready:
            member = self._members.pop(member_id, None)
        self.monitor.forget(member_id)
        if member is not None:
            member.conn.close()

    def drain(self) -> None:
        """Politely stop every live agent, then tear the registry down."""
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            members = list(self._members.values())
        for member in members:
            if not member.failed:
                try:
                    self.request(member.member_id, ("stop",), timeout=5.0)
                except MemberDead:
                    pass
            member.conn.close()
            self.monitor.forget(member.member_id)
        with self._ready:
            self._members.clear()
        self._monitor_thread.join(timeout=2.0)
