"""The cluster subsystem: real multi-host execution for the fabric.

Three layers turn the fabric's in-process/`multiprocessing` node abstraction
into a network-real one:

* :mod:`repro.cluster.protocol` — length-prefixed
  :mod:`~repro.fabric.wirecodec` frames over TCP sockets, plus the
  registration handshake (protocol/version negotiation);
* :mod:`repro.cluster.agent` — the node agent process
  (``python -m repro node --connect host:port``): registers with a
  coordinator, holds node states, executes the same pure
  ``fn(state, *args) -> (state, result)`` tasks the process pool runs, and
  streams heartbeats;
* :mod:`repro.cluster.registry` — coordinator-side membership: accepted /
  dialed agents, per-node liveness (``joining``/``ready``/``suspect``/
  ``dead``) driven by a clock-injectable :class:`HeartbeatMonitor`, and
  draining on shutdown;
* :mod:`repro.cluster.transport` — :class:`TcpTransport`, the third fabric
  backend: dispatches node tasks over the registry's sockets with the same
  bit-identity contract as the in-process and process-pool transports, and
  the resilience layer's journal-replay recovery when an agent dies.

Enable it with ``TransportConfig(kind="tcp")`` — by default the transport
spawns ``max_workers`` loopback agents, so single-host callers need no
manual agent management; point ``addresses=`` / external ``--connect``
agents at it for true multi-host runs.  See ``docs/fabric.md``.
"""

from .membership import HeartbeatMonitor, LIVENESS_STATES, MemberClock
from .protocol import (
    FrameConnection,
    HandshakeError,
    PROTOCOL_NAME,
    SUPPORTED_VERSIONS,
    parse_address,
)
from .registry import ClusterRegistry
from .agent import NodeAgent
from .transport import TcpTransport, resolve_tcp_transport, shared_tcp_transport

__all__ = [
    "ClusterRegistry",
    "FrameConnection",
    "HandshakeError",
    "HeartbeatMonitor",
    "LIVENESS_STATES",
    "MemberClock",
    "NodeAgent",
    "PROTOCOL_NAME",
    "SUPPORTED_VERSIONS",
    "TcpTransport",
    "parse_address",
    "resolve_tcp_transport",
    "shared_tcp_transport",
]
