"""``TcpTransport`` — the third fabric backend: node tasks over real sockets.

Same contract as the in-process and process-pool transports (states keyed by
``(session, node_id)``, pure ``fn(state, *args) -> (state, result)`` tasks
with state-resident RNGs, payload delivery through canonical wire bytes), so
a solve is bit-identical whichever backend runs it — the cross-transport
grid in ``tests/test_cluster.py`` pins TCP against both.

Topology-side structure: ``max_workers`` node *slots*, nodes pinned
``node_id % max_workers``, each slot mapped to a cluster member (a
:class:`~repro.cluster.agent.NodeAgent` process).  By default the transport
spawns its own loopback agents (``python -m repro node --connect``) so
single-host callers need no agent management; pass ``addresses=`` to attach
``--listen`` agents on other hosts instead (one slot per address, nothing
spawned).

Failure handling reuses the resilience layer wholesale.  Socket loss and
heartbeat expiry surface as retryable
:class:`~repro.core.exceptions.TransportFailure`; every state-changing
message is journaled per session with the supervisor's
:class:`~repro.resilience.supervisor._SessionJournal`, and when a member
dies its slots recover in order of preference:

1. **reassign** to a surviving member — shares were broadcast to every
   member, so only the dead slots' node inits + completed task batches
   replay;
2. **respawn** a loopback agent (when this transport spawned its agents and
   the restart budget allows) and replay shares + the dead slots' journal;
3. **degrade** to a local process pool
   (:class:`~repro.fabric.transport.ProcessPoolTransport`,
   ``shared_memory=False``) rebuilt from *all* journals —
   ``metadata[transport_degraded]`` is set via the ambient recovery notes —
   or raise a terminal ``TransportFailure(retryable=False)`` when
   ``degrade=False``.

Replay re-runs completed batches on the pure task functions, so the
recovered states — RNG streams included — match the pre-failure states
bit for bit; re-running the in-flight batch then yields exactly the results
the dead member would have produced.

No shared-memory shipping over TCP: a ``ShippedObject`` handle references
local pages a remote host cannot map, so ``init_shared`` ships plain
pickles.  Lock ordering: slot locks in ascending slot order, member RPC
locks in ascending member number — a replacement member always numbers
after every existing one, so recovery never acquires a lock that sorts
before locks already held.
"""

from __future__ import annotations

import atexit
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .registry import ClusterRegistry, MemberDead
from ..core.exceptions import CommunicationError, TransportFailure
from ..fabric import wirecodec
from ..fabric.payload import Payload, decode_payload
from ..fabric.transport import ProcessPoolTransport, Transport
from ..resilience.faults import active_recovery_notes, faulted_delivery
from ..resilience.supervisor import _SessionJournal

__all__ = ["TcpTransport", "resolve_tcp_transport", "shared_tcp_transport"]


def _member_number(member_id: str) -> int:
    """``"agent-12"`` -> 12 (lock/sort order; robust to odd ids)."""
    try:
        return int(member_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0


class TcpTransport(Transport):
    """Real multi-host workers behind the fabric's transport contract."""

    name = "tcp"

    def __init__(
        self,
        max_workers: int = 2,
        *,
        listen: Tuple[str, int] = ("127.0.0.1", 0),
        addresses: Sequence[Tuple[str, int]] = (),
        spawn_agents: Optional[bool] = None,
        heartbeat_interval_s: float = 0.5,
        heartbeat_timeout_s: float = 2.0,
        registration_timeout_s: float = 30.0,
        max_restarts: int = 3,
        degrade: bool = True,
    ) -> None:
        self.addresses = tuple(tuple(a) for a in addresses)
        if self.addresses:
            max_workers = len(self.addresses)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        # Spawning defaults to "yes unless explicit agents were given".
        self._spawn = bool(spawn_agents) if spawn_agents is not None else not self.addresses
        self._listen = tuple(listen)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.registration_timeout_s = float(registration_timeout_s)
        self.max_restarts = int(max_restarts)
        self.degrade_enabled = bool(degrade)

        self.registry: Optional[ClusterRegistry] = None
        self._slots: List[str] = []  # slot index -> member id
        self._slot_locks: List[threading.RLock] = []
        self._agents: Dict[str, subprocess.Popen] = {}  # member id -> spawned proc
        self._agent_counter = 0
        self._spawn_lock = threading.Lock()
        self._started = False
        self._start_lock = threading.Lock()
        self._closed = False

        self.total_restarts = 0
        self.degraded = False
        self._fallback: Optional[ProcessPoolTransport] = None

        self._journal: Dict[str, _SessionJournal] = {}
        self._journal_lock = threading.Lock()
        self._fn_cache: Dict[Tuple[str, Any], bytes] = {}
        self._fn_cache_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Cluster lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_started(self) -> None:
        if self._started:
            return
        with self._start_lock:
            if self._started:
                return
            if self._closed:
                raise CommunicationError("transport is closed")
            self.registry = ClusterRegistry(
                self._listen,
                heartbeat_interval_s=self.heartbeat_interval_s,
                heartbeat_timeout_s=self.heartbeat_timeout_s,
                registration_timeout_s=self.registration_timeout_s,
            )
            if self.addresses:
                self._slots = [self.registry.connect(addr) for addr in self.addresses]
            else:
                if self._spawn:
                    procs = [self._launch_agent() for _ in range(self.max_workers)]
                else:
                    procs = []
                members = self.registry.wait_for(
                    self.max_workers, timeout=self.registration_timeout_s
                )
                self._slots = sorted(members, key=_member_number)[: self.max_workers]
                by_pid = {proc.pid: proc for proc in procs}
                for member_id in self._slots:
                    proc = by_pid.get(self.registry.member_pid(member_id))
                    if proc is not None:
                        self._agents[member_id] = proc
            self._slot_locks = [threading.RLock() for _ in range(self.max_workers)]
            self._started = True

    def warm_up(self) -> None:
        """Bring the cluster up now (sessions pay agent start-up up front)."""
        self._ensure_started()

    def _launch_agent(self) -> subprocess.Popen:
        """Start one loopback agent process dialing this registry."""
        assert self.registry is not None
        self._agent_counter += 1
        host, port = self.registry.address
        env = dict(os.environ)
        # Loopback agents mirror multiprocessing spawn: they inherit the
        # coordinator's import paths so task functions pickled by reference
        # (including ones from the driving script's directory) resolve.
        src_root = str(Path(__file__).resolve().parents[2])
        paths = [src_root] + [p for p in sys.path if p]
        if env.get("PYTHONPATH"):
            paths.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(paths))
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "node",
                "--connect",
                f"{host}:{port}",
                "--name",
                f"loopback-{self._agent_counter}",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _spawn_replacement(self) -> Optional[str]:
        """Spawn a fresh loopback agent; its member id, or ``None`` on failure."""
        assert self.registry is not None
        with self._spawn_lock:
            before = set(self.registry.alive_members())
            proc = self._launch_agent()
            deadline = time.monotonic() + self.registration_timeout_s
            while time.monotonic() < deadline:
                fresh = set(self.registry.alive_members()) - before
                if fresh:
                    member_id = sorted(fresh, key=_member_number)[-1]
                    self._agents[member_id] = proc
                    return member_id
                if proc.poll() is not None:
                    return None
                time.sleep(0.02)
            proc.kill()
            return None

    # ------------------------------------------------------------------ #
    # Chaos / introspection hooks
    # ------------------------------------------------------------------ #

    def agent_pids(self) -> List[int]:
        """Pid per slot (benchmark memory probes, chaos tests)."""
        self._ensure_started()
        assert self.registry is not None
        return [self.registry.member_pid(member) for member in self._slots]

    def kill_agent(self, slot: int) -> None:
        """SIGKILL the agent behind one slot (deterministic fault injection)."""
        self._ensure_started()
        assert self.registry is not None
        member_id = self._slots[slot]
        proc = self._agents.get(member_id)
        if proc is not None:
            proc.kill()
            proc.wait(timeout=5)
        else:
            os.kill(self.registry.member_pid(member_id), signal.SIGKILL)

    def ping(self) -> List[bool]:
        """Round-trip probe per slot (readiness; heals a dead slot in passing)."""
        if self._fallback is not None:
            return [False] * self.max_workers
        self._ensure_started()
        alive = []
        for slot in range(self.max_workers):
            try:
                reply = self._slot_request(slot, ("ping",))
            except (CommunicationError, TransportFailure):
                alive.append(False)
                continue
            alive.append(reply == "pong" or (reply is None and self._fallback is None))
        return alive

    def health(self) -> dict:
        report = {
            "kind": self.name,
            "supervised": True,
            "degraded": self.degraded,
            "total_restarts": self.total_restarts,
        }
        if self.registry is not None:
            cluster = self.registry.health()
            cluster["slots"] = {
                str(slot): member for slot, member in enumerate(self._slots)
            }
            report["cluster"] = cluster
        return report

    # ------------------------------------------------------------------ #
    # Recovery (caller holds the failing slot's lock)
    # ------------------------------------------------------------------ #

    def _slot_for(self, node_id: int) -> int:
        return int(node_id) % self.max_workers

    def _reap(self, member_id: str) -> None:
        proc = self._agents.pop(member_id, None)
        if proc is not None:
            try:
                proc.kill()
                proc.wait(timeout=5)
            except OSError:  # pragma: no cover - already reaped
                pass

    def _recover_member_locked(self, dead_member: str) -> bool:
        """Replace ``dead_member`` in every slot it held.  True on success,
        False after degrading; raises terminal failure if degrade is off."""
        assert self.registry is not None
        if self._fallback is not None:
            return False
        slots = [s for s, member in enumerate(self._slots) if member == dead_member]
        self.registry.forget(dead_member)
        self._reap(dead_member)
        if not slots:
            return True  # another thread already re-mapped these slots

        survivors = [m for m in self.registry.alive_members() if m in self._slots]
        replacement: Optional[str] = None
        fresh = False
        if survivors:
            replacement = sorted(survivors, key=_member_number)[0]
        elif self._spawn and self.total_restarts < self.max_restarts:
            replacement = self._spawn_replacement()
            fresh = replacement is not None
        if replacement is None:
            if self.degrade_enabled:
                self._degrade()
                return False
            raise TransportFailure(
                f"cluster member {dead_member} died with no surviving member, "
                "no respawn budget, and degradation disabled",
                retryable=False,
                attempts=self.total_restarts,
            )

        for slot in slots:
            self._slots[slot] = replacement
        try:
            self._replay_slots(replacement, slots, include_shares=fresh)
        except (MemberDead, TransportFailure):
            # The replacement died during replay; recurse on *it*.
            return self._recover_member_locked(replacement)
        self.total_restarts += 1
        notes = active_recovery_notes()
        if notes is not None:
            notes.restarts += 1
            what = "respawned agent" if fresh else "surviving member"
            notes.note(
                f"member {dead_member} died; slots {slots} reassigned to "
                f"{what} {replacement}"
            )
        return True

    def _replay_slots(self, member_id: str, slots: List[int], *, include_shares: bool) -> None:
        """Re-establish ``slots``' node states on ``member_id`` from journals.

        Shares are broadcast to every member at install time, so reassignment
        to a survivor skips them; a freshly spawned agent needs them all.
        """
        assert self.registry is not None
        slot_set = set(slots)
        with self._journal_lock:
            snapshot = []
            for session, journal in self._journal.items():
                ops = [
                    op
                    for op in journal.ops
                    if (op[0] == "share" and include_shares)
                    or (op[0] == "init" and self._slot_for(op[1]) in slot_set)
                ]
                task_lists = [
                    list(triples)
                    for node_id, triples in journal.tasks.items()
                    if self._slot_for(node_id) in slot_set and triples
                ]
                snapshot.append((session, ops, task_lists))
        for session, ops, task_lists in snapshot:
            for op in ops:
                if op[0] == "share":
                    reply = self.registry.request(member_id, ("share", session, op[1], op[2]))
                else:
                    reply = self.registry.request(member_id, ("init", session, op[1], op[2]))
                self._check_reply(reply)
            for triples in task_lists:
                # Completed tasks re-run to advance the node state to the
                # pre-failure point; results are discarded (already returned).
                self._check_reply(self.registry.request(member_id, ("run", session, triples)))

    def _degrade(self) -> None:
        """Rebuild every session on a local process pool and switch over."""
        fallback = ProcessPoolTransport(max_workers=self.max_workers, shared_memory=False)
        fallback.private = True
        fallback.warm_up()
        with self._journal_lock:
            for session, journal in self._journal.items():
                for op in journal.ops:
                    if op[0] == "share":
                        fallback.init_shared(session, op[1], pickle.loads(op[2]))
                    else:
                        fallback.init_node(session, op[1], wirecodec.loads(op[2]))
                for node_id, triples in journal.tasks.items():
                    for _nid, fn_bytes, args_bytes in triples:
                        fallback.run_nodes(
                            session,
                            [node_id],
                            pickle.loads(fn_bytes),
                            [wirecodec.loads(args_bytes)],
                        )
            self._fallback = fallback
            self.degraded = True
        notes = active_recovery_notes()
        if notes is not None:
            notes.degraded = True
            notes.note("cluster unrecoverable: degraded to local process pool")

    # ------------------------------------------------------------------ #
    # RPC helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_reply(reply: Any) -> Any:
        """Unwrap a worker reply; a task-level error is *not* a transport fault."""
        status, body = reply
        if status == "error":
            raise CommunicationError(f"node agent failed:\n{body}")
        return body

    def _slot_request(self, slot: int, message: tuple) -> Any:
        """One journal-covered request with recover-on-failure.

        Only for idempotent-after-replay messages (share / init / release /
        ping): the message is journaled before it is sent, so a successful
        recovery has already re-applied it (``None`` returned then).
        """
        assert self.registry is not None
        with self._slot_locks[slot]:
            member_id = self._slots[slot]
            try:
                return self._check_reply(self.registry.request(member_id, message))
            except MemberDead:
                # Recovery replays the journal, which already holds this
                # (pre-journaled) message — no re-send needed on success.
                self._recover_member_locked(member_id)
                return None

    # ------------------------------------------------------------------ #
    # Transport API
    # ------------------------------------------------------------------ #

    def init_shared(self, session: str, key: str, value: Any) -> None:
        if self._fallback is not None:
            self._fallback.init_shared(session, key, value)
            return
        self._ensure_started()
        # Plain pickle: shm handles reference pages a remote host cannot map.
        value_bytes = pickle.dumps(value)
        with self._journal_lock:
            journal = self._journal.setdefault(session, _SessionJournal())
            journal.ops.append(("share", key, value_bytes))
        # Broadcast to every slot (hence every distinct member) so any later
        # slot reassignment finds the session's shares already resident.  On
        # mid-loop degrade the fallback was rebuilt from the journal, which
        # already holds this share.
        for slot in range(self.max_workers):
            if self._fallback is not None:
                return
            self._slot_request(slot, ("share", session, key, value_bytes))

    def init_node(self, session: str, node_id: int, state: Any) -> None:
        if self._fallback is not None:
            self._fallback.init_node(session, node_id, state)
            return
        self._ensure_started()
        state_bytes = wirecodec.dumps(state)
        with self._journal_lock:
            journal = self._journal.setdefault(session, _SessionJournal())
            journal.ops.append(("init", node_id, state_bytes))
            journal.tasks[node_id] = []  # a re-init resets the task log
        # On failure-and-degrade the fallback was rebuilt from the journal,
        # which already holds this (pre-journaled) init.
        self._slot_request(self._slot_for(node_id), ("init", session, node_id, state_bytes))

    def _fn_bytes(self, session: str, fn) -> bytes:
        cache_key = (session, fn)
        cached = self._fn_cache.get(cache_key)
        if cached is None:
            cached = pickle.dumps(fn)  # by reference: fn must be top-level
            with self._fn_cache_lock:
                self._fn_cache[cache_key] = cached
        return cached

    def run_nodes(self, session, node_ids, fn, args_list):
        if self._fallback is not None:
            return self._fallback.run_nodes(session, node_ids, fn, args_list)
        self._ensure_started()
        assert self.registry is not None
        plan = self._active_plan()
        fn_bytes = self._fn_bytes(session, fn)
        per_slot: Dict[int, List[Tuple[int, bytes, bytes]]] = {}
        order: List[Tuple[int, int]] = []  # (slot, position in its batch)
        for node_id, args in zip(node_ids, args_list):
            slot = self._slot_for(node_id)
            batch = per_slot.setdefault(slot, [])
            order.append((slot, len(batch)))
            batch.append((node_id, fn_bytes, wirecodec.dumps(tuple(args))))
        slots = sorted(per_slot)
        for slot in slots:
            self._slot_locks[slot].acquire()
        try:
            if plan is not None:
                for slot in slots:
                    spec = plan.take("dispatch", node=slot)
                    if spec is not None and spec.kind == "worker_crash":
                        self.kill_agent(slot)
            # Ship every member its batches before collecting any reply so
            # the agents genuinely run in parallel.  Member RPC locks are
            # taken in member-number order; replacement members always
            # number above existing ones, so recovery keeps the order.
            members = sorted({self._slots[s] for s in slots}, key=_member_number)
            for member_id in members:
                self.registry.lock(member_id).acquire()
            acquired = list(members)
            try:
                raw: Dict[int, list] = {}
                failed_slots: List[int] = []
                task_errors: List[CommunicationError] = []
                sent: List[int] = []
                for slot in slots:
                    try:
                        self.registry.post(
                            self._slots[slot], ("run", session, per_slot[slot])
                        )
                        sent.append(slot)
                    except MemberDead:
                        failed_slots.append(slot)
                for slot in sent:
                    try:
                        raw[slot] = self._check_reply(
                            self.registry.take(self._slots[slot])
                        )
                    except MemberDead:
                        failed_slots.append(slot)
                    except CommunicationError as exc:
                        task_errors.append(exc)
                for slot in failed_slots:
                    if self._fallback is not None:
                        break
                    self._rerun_failed_locked(slot, session, per_slot[slot], raw)
                if task_errors:
                    # User code raised inside a live agent: surface it exactly
                    # like the process pool would — no recovery can fix it.
                    raise task_errors[0]
            finally:
                for member_id in acquired:
                    lock = None
                    try:
                        lock = self.registry.lock(member_id)
                    except MemberDead:
                        pass  # forgotten during recovery; nothing to release
                    if lock is not None:
                        lock.release()
            if self._fallback is not None:
                # Unrecoverable mid-batch: the fallback was rebuilt from the
                # journal, which excludes this batch — re-running it all
                # there yields the same results the cluster would have.
                return self._fallback.run_nodes(session, node_ids, fn, args_list)
            self._commit_batch(session, per_slot)
            return [wirecodec.loads(raw[slot][position]) for slot, position in order]
        finally:
            for slot in slots:
                self._slot_locks[slot].release()

    def _rerun_failed_locked(
        self,
        slot: int,
        session: str,
        batch: Sequence[tuple],
        raw: Dict[int, list],
    ) -> None:
        """Recover the slot's dead member, then re-run its (unjournaled) batch.

        The recover step is conditional on the *current* slot member actually
        being dead: when several slots shared the dead member, the first
        slot's recovery already re-mapped the others, and their re-run must
        go straight to the (healthy) replacement.
        """
        assert self.registry is not None
        attempts = 0
        while self._fallback is None:
            member_id = self._slots[slot]
            try:
                raw[slot] = self._check_reply(
                    self.registry.request(member_id, ("run", session, list(batch)))
                )
                return
            except MemberDead as exc:
                attempts += 1
                if attempts > max(1, self.max_restarts):
                    if self.degrade_enabled:
                        self._degrade()
                        return
                    raise TransportFailure(
                        f"slot {slot} kept losing members across {attempts} "
                        "recovered re-runs",
                        retryable=False,
                        worker=slot,
                        attempts=attempts,
                    ) from exc
                if not self._recover_member_locked(member_id):
                    return  # degraded; caller re-runs the whole batch there

    def _commit_batch(self, session: str, per_slot: Dict[int, list]) -> None:
        """Journal a fully-successful batch (the recovery baseline)."""
        with self._journal_lock:
            if self._fallback is not None:
                # Degraded concurrently after this batch completed on the
                # cluster: advance the fallback with the same pure tasks so
                # its states match the results already collected.
                for batch in per_slot.values():
                    for node_id, fn_bytes, args_bytes in batch:
                        self._fallback.run_nodes(
                            session,
                            [node_id],
                            pickle.loads(fn_bytes),
                            [wirecodec.loads(args_bytes)],
                        )
                return
            journal = self._journal.setdefault(session, _SessionJournal())
            for batch in per_slot.values():
                for triple in batch:
                    journal.tasks.setdefault(triple[0], []).append(triple)

    def deliver(self, payload: Payload) -> Payload:
        plan = self._active_plan()
        if plan is not None:
            return faulted_delivery(plan, payload, lambda p: decode_payload(p.to_bytes()))
        return decode_payload(payload.to_bytes())

    def release(self, session: str) -> None:
        with self._journal_lock:
            self._journal.pop(session, None)
        with self._fn_cache_lock:
            for cache_key in [k for k in self._fn_cache if k[0] == session]:
                del self._fn_cache[cache_key]
        if self._fallback is not None:
            self._fallback.release(session)
            return
        if not self._started:
            return
        for slot in range(self.max_workers):
            if self._fallback is not None:
                self._fallback.release(session)
                return
            try:
                self._slot_request(slot, ("release", session))
            except (CommunicationError, TransportFailure):
                pass  # a dead member holds no state worth releasing

    def close(self) -> None:
        self._closed = True
        with self._journal_lock:
            self._journal.clear()
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None
        if not self._started:
            return
        if self.registry is not None:
            self.registry.drain()
        for member_id in list(self._agents):
            proc = self._agents.pop(member_id)
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                proc.kill()
                proc.wait(timeout=5)
        self._slots = []
        self._slot_locks = []
        self._started = False


# ---------------------------------------------------------------------- #
# Shared cluster + config resolution
# ---------------------------------------------------------------------- #

_SHARED_CLUSTERS: Dict[tuple, TcpTransport] = {}
_SHARED_CLUSTERS_LOCK = threading.Lock()


def shared_tcp_transport(
    max_workers: int = 2,
    *,
    heartbeat_interval_s: float = 0.5,
    heartbeat_timeout_s: float = 2.0,
) -> TcpTransport:
    """A process-wide loopback cluster shared by every solve that asks for
    these knobs — agent start-up (a fresh interpreter per agent) is paid once
    per ``(max_workers, heartbeat)`` tuple, and sessions namespace node
    states, so sharing is invisible to callers.  Closed atexit."""
    key = (int(max_workers), float(heartbeat_interval_s), float(heartbeat_timeout_s))
    with _SHARED_CLUSTERS_LOCK:
        cluster = _SHARED_CLUSTERS.get(key)
        if cluster is None or cluster._closed:
            cluster = TcpTransport(
                max_workers=max_workers,
                heartbeat_interval_s=heartbeat_interval_s,
                heartbeat_timeout_s=heartbeat_timeout_s,
            )
            _SHARED_CLUSTERS[key] = cluster
    return cluster


@atexit.register
def _close_shared_clusters() -> None:  # pragma: no cover - interpreter shutdown
    with _SHARED_CLUSTERS_LOCK:
        for cluster in _SHARED_CLUSTERS.values():
            cluster.close()
        _SHARED_CLUSTERS.clear()


def resolve_tcp_transport(config) -> TcpTransport:
    """The TCP transport for one solve, from its ``TransportConfig``.

    Explicit ``addresses`` always yield a dedicated (``private``) transport —
    external agents are the caller's own.  Otherwise ``reuse_pool=True`` (the
    default) returns the shared loopback cluster and ``reuse_pool=False`` a
    dedicated one, mirroring the process-pool rules.
    """
    addresses = tuple(getattr(config, "addresses", ()) or ())
    knobs = dict(
        heartbeat_interval_s=getattr(config, "heartbeat_interval_s", 0.5),
        heartbeat_timeout_s=getattr(config, "heartbeat_timeout_s", 2.0),
    )
    listen = _coerce_address(getattr(config, "listen", "127.0.0.1:0"))
    if addresses:
        transport = TcpTransport(
            listen=listen,
            addresses=[_coerce_address(a) for a in addresses],
            spawn_agents=getattr(config, "spawn_agents", None),
            registration_timeout_s=getattr(config, "registration_timeout_s", 30.0),
            max_restarts=getattr(config, "max_restarts", 3),
            **knobs,
        )
        transport.private = True
        return transport
    if getattr(config, "reuse_pool", True):
        return shared_tcp_transport(config.max_workers, **knobs)
    transport = TcpTransport(
        max_workers=config.max_workers,
        listen=listen,
        registration_timeout_s=getattr(config, "registration_timeout_s", 30.0),
        max_restarts=getattr(config, "max_restarts", 3),
        **knobs,
    )
    transport.private = True
    return transport


def _coerce_address(value) -> Tuple[str, int]:
    if isinstance(value, str):
        from .protocol import parse_address

        return parse_address(value)
    host, port = value
    return str(host), int(port)
